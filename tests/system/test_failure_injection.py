"""Failure injection: tampering, stale state, and threat-model checks.

The server in the paper's model is honest-but-curious, but a *defensive*
implementation should fail loudly if the server (or the channel)
misbehaves anyway. These tests corrupt stored records, replay stale
keys, and verify the server's code path never handles key material.
"""

import dataclasses

import pytest

from repro.crypto.symmetric import SymmetricCiphertext
from repro.ec.params import TOY80
from repro.errors import IntegrityError, SchemeError
from repro.system.records import StoredComponent
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=616)
    deployment.add_authority("hospital", ["doctor"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "hospital", ["doctor"], "alice")
    deployment.upload(
        "alice", "rec", {"note": (b"confidential", "hospital:doctor")}
    )
    return deployment


def _tamper_component(system, mutate):
    record = system.server.record("rec")
    component = record.component("note")
    tampered = mutate(component)
    system.server._records["rec"] = record.with_component(tampered)


class TestTampering:
    def test_flipped_symmetric_body_detected(self, system):
        def mutate(component):
            body = bytearray(component.data_ciphertext.body)
            body[0] ^= 0xFF
            return StoredComponent(
                name=component.name,
                abe_ciphertext=component.abe_ciphertext,
                data_ciphertext=SymmetricCiphertext(
                    nonce=component.data_ciphertext.nonce,
                    body=bytes(body),
                    tag=component.data_ciphertext.tag,
                ),
            )

        _tamper_component(system, mutate)
        with pytest.raises(IntegrityError):
            system.read("bob", "rec", "note")

    def test_swapped_abe_ciphertext_detected(self, system):
        """Serving the wrong ABE ciphertext yields the wrong content key,
        which the MAC of the symmetric layer rejects."""
        system.upload(
            "alice", "other", {"note": (b"different", "hospital:doctor")}
        )

        def mutate(component):
            other = system.server.record("other").component("note")
            return StoredComponent(
                name=component.name,
                abe_ciphertext=other.abe_ciphertext,
                data_ciphertext=component.data_ciphertext,
            )

        _tamper_component(system, mutate)
        with pytest.raises(IntegrityError):
            system.read("bob", "rec", "note")

    def test_truncated_tag_detected(self, system):
        def mutate(component):
            ct = component.data_ciphertext
            return StoredComponent(
                name=component.name,
                abe_ciphertext=component.abe_ciphertext,
                data_ciphertext=SymmetricCiphertext(
                    nonce=ct.nonce, body=ct.body, tag=b"\x00" * 32
                ),
            )

        _tamper_component(system, mutate)
        with pytest.raises(IntegrityError):
            system.read("bob", "rec", "note")


class TestStaleState:
    def test_replayed_old_ciphertext_unreadable_after_revocation(self, system):
        """A server that serves the PRE-re-encryption ciphertext to an
        updated user fails version validation (no silent wrong plaintext)."""
        old_component = system.server.record("rec").component("note")
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        system.revoke("hospital", "carol", ["doctor"])
        # Put the stale ciphertext back (malicious rollback).
        system.server._records["rec"] = system.server.record(
            "rec"
        ).with_component(old_component)
        with pytest.raises(SchemeError, match="version"):
            system.read("bob", "rec", "note")

    def test_stale_update_info_rejected_by_server_path(self, system):
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        result = system.revoke("hospital", "carol", ["doctor"])
        # Replaying the same (now stale) update against the re-encrypted
        # ciphertext must fail version checks.
        owner = system.owners["alice"].core
        with pytest.raises(SchemeError):
            owner.update_info_for_record("rec/note", result.update_key)


class TestThreatModel:
    def test_server_holds_no_key_material(self, system):
        """The server's entire state is records + the index: no owner
        secrets, user keys or version keys ever reach it."""
        server = system.server
        state_attrs = {
            name for name in vars(server) if not name.startswith("__")
        }
        assert state_attrs == {"name", "network", "_records",
                               "_ciphertext_index"}

    def test_network_log_never_carries_owner_master_key(self, system):
        """MK_o = {β, r} must never travel; SK_o = {g^{1/β}, r/β} does
        (over the modeled secure channel) but the master key object is
        local-only."""
        from repro.core.keys import OwnerMasterKey

        for entry in system.network.log:
            assert entry.kind != "owner-master-key"
        # And the size model refuses to measure one if it ever did:
        from repro.system.sizes import UnmeasurablePayload, measure

        master = system.owners["alice"].core.master_key
        assert isinstance(master, OwnerMasterKey)
        with pytest.raises(UnmeasurablePayload):
            measure(master, system.group)

    def test_replayed_update_key_with_wrong_version_rejected(self, system):
        """Update keys are delivered over authenticated channels (the
        paper's assumption), so forgery is out of scope — but *replay*
        and version confusion are caught by the version discipline."""
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        result = system.revoke("hospital", "carol", ["doctor"])
        stale = dataclasses.replace(
            result.update_key, from_version=5, to_version=6
        )
        owner = system.owners["alice"].core
        with pytest.raises(SchemeError):
            owner.update_info_for_record("rec/note", stale)
        user_key = system.users["bob"].secret_keys_for("alice")["hospital"]
        from repro.core.authority import apply_update_key

        with pytest.raises(SchemeError):
            apply_update_key(user_key, stale)

"""Encryption/decryption/keygen session engine (online/offline split).

``repro.fastpath`` amortizes the per-attribute exponentiation cost that
dominates the paper's Figs. 3–4 across the many calls a cloud-storage
deployment actually makes:

* :class:`EncryptionSession` — one per (policy, authority-key-version)
  pair; caches the parsed AST/LSSS matrix and all fixed-base material,
  precomputes message-independent ciphertext skeletons offline, and
  reduces the online Encrypt to one GT multiplication;
* :class:`DecryptionSession` — one per (user key bundle, policy shape)
  pair; caches the LSSS reconstruction coefficients, the combined key
  products, and the Miller-loop line coefficients of every fixed
  pairing argument, then batch-decrypts N ciphertexts behind one
  shared final exponentiation — byte-identical to cold decryption;
* :class:`KeyGenSession` — one per (owner, attribute-set, key-version)
  triple at an AA; shared-NAF-chain batch exponentiation makes bulk
  user onboarding ~2.5× cheaper while issuing byte-identical keys.

All are version-snapshotted: the instant revocation rolls a key version
forward, a stale session refuses to operate (typed errors, never wrong
plaintext), and the caching entry points
(:meth:`repro.core.owner.DataOwner.session_for`,
:meth:`repro.core.authority.AttributeAuthority.keygen_session`,
:meth:`repro.service.client.UserClient.decryption_session_for`)
transparently rebuild against the new version.
"""

from repro.fastpath.decrypt import DecryptionSession
from repro.fastpath.keygen import KeyGenSession, issue_joint
from repro.fastpath.session import DEFAULT_POOL_TARGET, EncryptionSession, OfflineBundle

__all__ = [
    "DEFAULT_POOL_TARGET",
    "DecryptionSession",
    "EncryptionSession",
    "KeyGenSession",
    "OfflineBundle",
    "issue_joint",
]

"""The full ``repro cluster smoke`` acceptance cycle, in-process."""

import io

from repro.cluster import run_cluster_smoke
from repro.ec.params import TOY80

from .conftest import run


def test_cluster_smoke_cycle_end_to_end():
    out = io.StringIO()
    rc = run(run_cluster_smoke(TOY80, nodes=3, replication=2, records=4,
                               out=out, seed=1))
    transcript = out.getvalue()
    assert rc == 0, transcript
    assert "cluster smoke passed" in transcript
    assert "digest-detected" in transcript
    assert "byte-identical to an identically seeded single-node sweep" \
        in transcript

"""Model-based testing with TWO authorities.

Extends the single-authority machine with the scheme's structural
subtlety: decryption needs a key from *every* authority involved in the
ciphertext — even when the satisfied OR-branch doesn't use that
authority's attributes. The model tracks per-authority key possession
separately from attribute satisfaction, and the real system must agree
with both conditions under arbitrary issue/upload/read/revoke
interleavings.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.core.attributes import involved_authorities
from repro.ec.params import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.policy.lsss import lsss_from_policy
from repro.policy.parser import parse
from repro.system.workflow import CloudStorageSystem

AUTHORITIES = {"aa": ["a", "b"], "bb": ["c"]}
POLICIES = [
    "aa:a",
    "bb:c",
    "aa:a AND bb:c",
    "aa:a OR bb:c",          # OR across authorities: the tricky case
    "(aa:a AND aa:b) OR bb:c",
]
USER_IDS = ["u0", "u1"]
DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)

_INVOLVED = {
    policy: involved_authorities(
        lsss_from_policy(policy).row_labels
    )
    for policy in POLICIES
}


class MultiAuthorityMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = CloudStorageSystem(TOY80, seed=0xCAFE)
        for aid, attrs in AUTHORITIES.items():
            self.system.add_authority(aid, attrs)
        self.system.add_owner("alice")
        self.users = {}
        for uid in USER_IDS:
            self.system.add_user(uid)
            self.users[uid] = {aid: None for aid in AUTHORITIES}
        self.records = {}
        self.counter = 0

    @rule(
        uid=st.sampled_from(USER_IDS),
        aid=st.sampled_from(sorted(AUTHORITIES)),
        data=st.data(),
    )
    def issue_keys(self, uid, aid, data):
        subset = data.draw(
            st.sets(st.sampled_from(AUTHORITIES[aid]), min_size=1),
            label="attributes",
        )
        self.system.issue_keys(uid, aid, sorted(subset), "alice")
        self.users[uid][aid] = set(subset)

    @rule(policy=st.sampled_from(POLICIES))
    def upload(self, policy):
        self.counter += 1
        record_id = f"rec{self.counter}"
        payload = f"payload-{self.counter}".encode("utf-8")
        self.system.upload("alice", record_id, {"body": (payload, policy)})
        self.records[record_id] = (policy, payload)

    def _expected(self, uid, policy):
        held = self.users[uid]
        for aid in _INVOLVED[policy]:
            if held[aid] is None:
                return False  # structural: need a key from every AA
        qualified = {
            f"{aid}:{name}"
            for aid, names in held.items()
            if names
            for name in names
        }
        return parse(policy).evaluate(qualified)

    def _do_read(self, uid, data):
        record_id = data.draw(
            st.sampled_from(sorted(self.records)), label="record"
        )
        policy, payload = self.records[record_id]
        expected = self._expected(uid, policy)
        try:
            result = self.system.read(uid, record_id, "body")
            assert expected, (
                f"unauthorized read SUCCEEDED: {uid} {policy} "
                f"{self.users[uid]}"
            )
            assert result == payload
        except DENIED as exc:
            assert not expected, (
                f"authorized read DENIED ({type(exc).__name__}): "
                f"{uid} {policy} {self.users[uid]}"
            )

    @precondition(lambda self: bool(self.records))
    @rule(uid=st.sampled_from(USER_IDS), data=st.data())
    def read(self, uid, data):
        self._do_read(uid, data)

    @precondition(lambda self: bool(self.records))
    @rule(uid=st.sampled_from(USER_IDS), data=st.data())
    def read_again(self, uid, data):
        self._do_read(uid, data)

    @precondition(
        lambda self: any(
            names for held in self.users.values() for names in held.values()
        )
    )
    @rule(data=st.data())
    def revoke(self, data):
        candidates = [
            (uid, aid)
            for uid, held in self.users.items()
            for aid, names in held.items()
            if names
        ]
        uid, aid = data.draw(st.sampled_from(sorted(candidates)),
                             label="revocation target")
        attribute = data.draw(
            st.sampled_from(sorted(self.users[uid][aid])),
            label="revoked attribute",
        )
        self.system.revoke(aid, uid, [attribute])
        self.users[uid][aid].discard(attribute)
        if not self.users[uid][aid]:
            self.users[uid][aid] = None


MultiAuthorityMachine.TestCase.settings = settings(
    max_examples=6, stateful_step_count=18, deadline=None
)
TestMultiAuthorityModel = MultiAuthorityMachine.TestCase

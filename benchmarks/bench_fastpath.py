"""Before/after benchmark for the precomputation & multi-exponentiation
fast path, over the paper's Figure 4(a)/4(b) workload shapes.

The "naive" side is a seed-equivalent :class:`PairingGroup` subclass
defined right here: affine Miller loops with per-step inversions, plain
square-and-multiply GT exponentiation, double-and-add scalar
multiplication, no fixed-base tables beyond the generator's, no prepared
pairings, no hash memoization — the cost profile the repository had
before the fast path landed. (Where the two diverge slightly, the naive
side gets the benefit of the doubt: it keeps the new generator table,
which is *faster* than the seed's affine one, so reported speedups are
conservative.)

Both sides are driven from identically-seeded workloads, so the
ciphertexts they produce must be bit-identical — the script asserts this
before reporting any timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py            # SS512, full shapes
    REPRO_BENCH_PRESET=TOY80 PYTHONPATH=src \
        python benchmarks/bench_fastpath.py --out /tmp/smoke.json # CI smoke

Writes ``BENCH_fastpath.json`` (or ``--out``) with per-shape timings and
speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.analysis import timing as timing_mod
from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import PRESETS
from repro.math.field_ext import QuadraticExtension
from repro.pairing.group import PairingGroup
from repro.pairing.miller import miller_loop_affine

from bench_common import arith_metadata, counter_summary

FIXED_AUTHORITIES = 5
ATTRIBUTE_SWEEP = [2, 5, 10, 15, 20]


class _NaiveCurve(SupersingularCurve):
    """Seed-style scalar multiplication: affine double-and-add, one
    modular inversion per point addition."""

    def mul(self, point, k):
        if point is INFINITY:
            return INFINITY
        if k < 0:
            return self.mul(self.neg(point), -k)
        result = INFINITY
        addend = point
        while k:
            if k & 1:
                result = self.add(result, addend)
            if k > 1:
                addend = self.double(addend)
            k >>= 1
        return result


class _NaiveExtension(QuadraticExtension):
    """Seed-style F_p² exponentiation: plain square-and-multiply."""

    def pow(self, x, e):
        if e < 0:
            return self.pow(self.inv(x), -e)
        result = self.one
        base = x
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.square(base)
            e >>= 1
        return result


class NaivePairingGroup(PairingGroup):
    """The pre-fast-path cost profile behind the same API."""

    def __init__(self, params, seed=None):
        super().__init__(params, seed=seed)
        self.curve = _NaiveCurve(self.field)
        self.ext = _NaiveExtension(self.field)

    def register_g1_base(self, element, window=4):
        return None

    def register_gt_base(self, element, window=4):
        return None

    def prepare_pairing(self, element):
        return None

    def _gt_table_for(self, value):
        return None

    def _miller_raw(self, point_p, point_q):
        if point_p is INFINITY or point_q is INFINITY:
            return None
        return miller_loop_affine(
            self.curve, self.ext, point_p, point_q, self.order
        )

    def multiexp_g1(self, elements, scalars):
        result = self.identity_g1()
        for element, scalar in zip(elements, scalars):
            result = result * (element ** scalar)
        return result

    def hash_to_g1(self, *parts, domain=b"repro.H2G"):
        self._h2g_cache.clear()
        return super().hash_to_g1(*parts, domain=domain)


def _build(group_cls, preset, attrs):
    """An identically-seeded Fig-4 workload on the given group class."""
    original = timing_mod.PairingGroup
    timing_mod.PairingGroup = group_cls
    try:
        return timing_mod.build_ours(preset, FIXED_AUTHORITIES, attrs, seed=42)
    finally:
        timing_mod.PairingGroup = original


def _time_best(fn, *args, rounds=3):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _assert_bit_identical(group, naive_ct, fast_ct):
    if naive_ct.c != fast_ct.c or naive_ct.c_prime != fast_ct.c_prime:
        raise AssertionError("fast-path ciphertext differs from naive")
    for naive_row, fast_row in zip(naive_ct.c_rows, fast_ct.c_rows):
        if naive_row != fast_row:
            raise AssertionError("fast-path ciphertext row differs from naive")
    if group.encode_gt(naive_ct.c) != group.encode_gt(fast_ct.c):
        raise AssertionError("GT component encodings differ")


def run(preset_name: str, out_path: str) -> dict:
    preset = PRESETS[preset_name]
    shapes = []
    for attrs in ATTRIBUTE_SWEEP:
        naive = _build(NaivePairingGroup, preset, attrs)
        fast = _build(PairingGroup, preset, attrs)
        # The first Encrypt on each side consumes the same seeded
        # randomness, so the two ciphertexts must be bit-identical; it
        # doubles as the fast side's warm-up (tables, prepared pairings
        # and caches are one-time costs amortized over a workload's
        # lifetime, so timed rounds below run warm).
        naive_ct = naive.encrypt()
        fast_ct = fast.encrypt()
        _assert_bit_identical(fast.group, naive_ct, fast_ct)
        assert fast.decrypt(fast_ct) == fast.message

        naive_rounds = 1 if preset_name == "SS512" else 3
        naive_enc_s, _ = _time_best(naive.encrypt, rounds=naive_rounds)
        fast_enc_s, _ = _time_best(fast.encrypt, rounds=3)

        naive_dec_s, naive_pt = _time_best(
            naive.decrypt, naive_ct, rounds=naive_rounds
        )
        fast_dec_s, fast_pt = _time_best(fast.decrypt, fast_ct, rounds=3)
        assert naive_pt == naive.message and fast_pt == fast.message
        assert fast.group.encode_gt(fast_pt) == naive.group.encode_gt(naive_pt)

        shape = {
            "attrs_per_authority": attrs,
            "rows": FIXED_AUTHORITIES * attrs,
            "encrypt": {
                "naive_s": round(naive_enc_s, 6),
                "fast_s": round(fast_enc_s, 6),
                "speedup": round(naive_enc_s / fast_enc_s, 2),
            },
            "decrypt": {
                "naive_s": round(naive_dec_s, 6),
                "fast_s": round(fast_dec_s, 6),
                "speedup": round(naive_dec_s / fast_dec_s, 2),
            },
        }
        shapes.append(shape)
        print(
            f"[fastpath] attrs/AA={attrs:2d} rows={shape['rows']:3d}  "
            f"encrypt {naive_enc_s:.3f}s -> {fast_enc_s:.3f}s "
            f"({shape['encrypt']['speedup']}x)  "
            f"decrypt {naive_dec_s:.3f}s -> {fast_dec_s:.3f}s "
            f"({shape['decrypt']['speedup']}x)"
        )

    at_5x5 = next(s for s in shapes if s["attrs_per_authority"] == 5)
    report = {
        "benchmark": "precomputation & multi-exponentiation fast path",
        "generated_by": "benchmarks/bench_fastpath.py",
        "preset": preset_name,
        "arithmetic": arith_metadata(fast.group),
        "fixed_authorities": FIXED_AUTHORITIES,
        "workload": "Fig 4(a)/4(b): all-AND policy, 5 authorities, "
                    "attrs/AA sweep; warm caches; best of N rounds",
        "outputs_bit_identical": True,
        "shapes": shapes,
        "summary": {
            "encrypt_speedup_at_5x5": at_5x5["encrypt"]["speedup"],
            "decrypt_speedup_at_5x5": at_5x5["decrypt"]["speedup"],
        },
        "op_counts": counter_summary(fast.group),
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[fastpath] wrote {out_path}")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_fastpath.json"
        ),
    )
    args = parser.parse_args()
    preset_name = os.environ.get("REPRO_BENCH_PRESET", "SS512")
    report = run(preset_name, args.out)
    floor = 2.0 if preset_name == "SS512" else 1.0
    summary = report["summary"]
    if min(summary.values()) < floor:
        print(f"[fastpath] FAIL: speedup below {floor}x: {summary}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

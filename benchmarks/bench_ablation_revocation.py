"""Ablation A: attribute-revocation costs.

Not a paper figure, but the paper's Section V-C claims "our method only
need to re-encrypt part of the ciphertext [which] can greatly improve
the computation efficiency of the attribute revocation". This harness
quantifies that and the related design choices:

* ReEncrypt (partial, 1 pairing + touched rows) vs a full re-encryption
  (what a scheme without update tokens would pay: one fresh Encrypt);
* ReKey standard (O(1) update key) vs hardened (per-user re-issue);
* the faithful per-row Decrypt vs the multi-pairing decrypt_fast;
* Hur-Noh revocation header size (KEK-tree min cover) for context.
"""

import pytest

from benchmarks.conftest import PRESET, run_once
from repro.baselines.bsw import BswScheme
from repro.baselines.hur import HurSystem
from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.decrypt import decrypt, decrypt_fast
from repro.core.owner import DataOwner
from repro.core.reencrypt import reencrypt, rows_touched
from repro.core.revocation import rekey_hardened, rekey_standard
from repro.pairing.group import PairingGroup

N_ATTRS = 10
N_USERS = 8


class _World:
    """A deployment with one authority, many users, one big ciphertext."""

    def __init__(self):
        self.group = PairingGroup(PRESET, seed=21)
        ca = CertificateAuthority(self.group)
        names = [f"a{i}" for i in range(N_ATTRS)]
        ca.register_authority("aa")
        self.authority = AttributeAuthority(self.group, "aa", names)
        self.owner = DataOwner(self.group, "owner")
        self.authority.register_owner(self.owner.secret_key)
        self.owner.learn_authority(
            self.authority.authority_public_key(),
            self.authority.public_attribute_keys(),
        )
        self.users = {}
        for i in range(N_USERS):
            uid = f"u{i}"
            public = ca.register_user(uid)
            self.users[uid] = (
                public, self.authority.keygen(public, names, "owner")
            )
        self.policy = " AND ".join(f"aa:a{i}" for i in range(N_ATTRS))
        self.message = self.group.random_gt()
        self.ciphertext = self.owner.encrypt(self.message, self.policy)


@pytest.fixture(scope="module")
def world():
    return _World()


def test_rekey_standard(benchmark, world):
    benchmark.group = "ablation rekey"
    snapshot = world.authority.issued_registry()
    result = run_once(
        benchmark, rekey_standard, world.authority, "u0", ["a0"]
    )
    assert result.update_key.to_version == world.authority.version
    # restore u0 and re-sync the owner's key cache for later benches
    public, _ = world.users["u0"]
    world.authority.keygen(public, [f"a{i}" for i in range(N_ATTRS)], "owner")
    world.owner.learn_authority(
        world.authority.authority_public_key(),
        world.authority.public_attribute_keys(),
    )
    assert set(world.authority.issued_registry()) == set(snapshot)


def test_rekey_hardened(benchmark, world):
    benchmark.group = "ablation rekey"
    result = run_once(
        benchmark, rekey_hardened, world.authority, "u1", ["a0"]
    )
    # O(users) work instead of O(1): every other holder re-issued.
    assert len(result.reissued_keys) == N_USERS - 1
    public, _ = world.users["u1"]
    world.authority.keygen(public, [f"a{i}" for i in range(N_ATTRS)], "owner")
    world.owner.learn_authority(
        world.authority.authority_public_key(),
        world.authority.public_attribute_keys(),
    )


def test_partial_reencrypt_vs_full(benchmark, world):
    """The paper's claim: partial re-encryption beats re-encrypting all."""
    benchmark.group = "ablation reencrypt"
    result = rekey_standard(world.authority, "u2", ["a0"])
    update_key = result.update_key
    ciphertext = world.owner.encrypt(world.message, world.policy)
    update_info = world.owner.update_info(ciphertext, update_key)
    world.owner.apply_update_key(update_key)

    updated = run_once(
        benchmark, reencrypt, world.group, ciphertext, update_key,
        update_info,
    )
    assert updated.version_of("aa") == update_key.to_version
    assert rows_touched(ciphertext, "aa") == N_ATTRS


def test_full_reencrypt_baseline(benchmark, world):
    """What a naive design pays: a complete fresh encryption."""
    benchmark.group = "ablation reencrypt"
    ciphertext = run_once(
        benchmark, world.owner.encrypt, world.message, world.policy
    )
    assert ciphertext.n_rows == N_ATTRS


def _fresh_decryption_setup(world):
    """Key and ciphertext at the authority's *current* version (earlier
    benches in this module have run ReKey several times)."""
    public, _ = world.users["u7"]
    keys = world.authority.keygen(
        public, [f"a{i}" for i in range(N_ATTRS)], "owner"
    )
    ciphertext = world.owner.encrypt(world.message, world.policy)
    return public, keys, ciphertext


def test_decrypt_faithful(benchmark, world):
    benchmark.group = "ablation decrypt"
    public, keys, ciphertext = _fresh_decryption_setup(world)
    message = run_once(
        benchmark, decrypt, world.group, ciphertext, public, {"aa": keys}
    )
    assert message == world.message


def test_decrypt_fast_variant(benchmark, world):
    benchmark.group = "ablation decrypt"
    public, keys, ciphertext = _fresh_decryption_setup(world)
    message = run_once(
        benchmark, decrypt_fast, world.group, ciphertext, public,
        {"aa": keys},
    )
    assert message == world.message


def test_hur_header_cost(benchmark, world):
    """Context: Hur-Noh pays an O(log n) header per revocation (and
    trusts the server with every group key)."""
    benchmark.group = "ablation hur"
    bsw = BswScheme(world.group)
    hur = HurSystem(bsw, capacity=64, seed=3)
    for i in range(48):
        hur.register_user(f"h{i}")
        hur.grant(f"h{i}", "attr")
    stored = [hur.reencrypt(bsw.encrypt(world.group.random_gt(), "attr"))]

    header = run_once(benchmark, hur.revoke, "h0", "attr", stored)
    print(f"\n[ablation] Hur header cover size after revocation: "
          f"{header.cover_size} wrapped keys "
          f"(vs our update key: 1 G element/owner + 1 scalar)")
    assert header.cover_size >= 1

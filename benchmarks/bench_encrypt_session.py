"""Gate benchmark for the encryption/keygen session engine.

Workload (the ISSUE-5 acceptance shape): one owner encrypting 64
messages under ONE 10-attribute policy spanning two authorities, and
one AA bulk-onboarding 32 users over a 10-attribute set.

* **Encrypt** — the cold path (:meth:`DataOwner.encrypt`, warm tables)
  versus the session engine's split: the *offline* phase precomputes 64
  message-independent bundles, the *online* phase consumes them with
  one GT multiplication per message. Two gated metrics: the **online
  (request-path) speedup** — the figure that matters when refills run
  in the background on the crypto pool and overlap I/O — and the
  **fully-amortized speedup** (setup + offline + online against the
  cold loop), the ROADMAP's total-throughput target. Each leg is
  timed best-of-``ENCRYPT_RUNS`` with a fresh session (setup
  included) per offline rep.
* **KeyGen** — a cold ``keygen`` loop versus joint session issuance
  (:func:`repro.fastpath.issue_joint`, setup included): both
  authorities onboard every user sharing one doubling chain per
  ``PK_UID``.

Correctness is asserted before any gate: every session ciphertext must
decrypt to its message through BOTH the direct and the outsourced
(:mod:`repro.core.outsourcing`) paths, serialize to the same byte
length and header layout as a cold ciphertext, survive a
serialization round-trip, and every session-issued key must equal its
cold-issued twin exactly.

Usage::

    PYTHONPATH=src python benchmarks/bench_encrypt_session.py             # SS512, 3x/2x gates
    REPRO_BENCH_PRESET=TOY80 PYTHONPATH=src \
        python benchmarks/bench_encrypt_session.py --smoke \
        --out /tmp/smoke.json                                             # CI, 1.5x/1.2x gates

Writes ``BENCH_encrypt_session.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.decrypt import decrypt
from repro.core.outsourcing import (
    make_transform_key,
    server_transform,
    user_finalize,
)
from repro.core.owner import DataOwner
from repro.ec.params import PRESETS
from repro.fastpath import EncryptionSession, issue_joint
from repro.pairing.group import PairingGroup

from bench_common import arith_metadata, counter_summary

N_MESSAGES = 64
ENCRYPT_RUNS = 3                 # best-of-N noise estimator per leg
N_USERS = 32
ATTRS_PER_AUTHORITY = 5          # x 2 authorities = the 10-attribute policy
SEED = 1234


def _build_fabric(preset):
    group = PairingGroup(preset, seed=SEED)
    ca = CertificateAuthority(group)
    names = [f"a{i}" for i in range(ATTRS_PER_AUTHORITY)]
    authorities = [
        AttributeAuthority(group, aid, names) for aid in ("hosp", "trial")
    ]
    for authority in authorities:
        ca.register_authority(authority.aid)
    owner = DataOwner(group, "alice")
    ca.register_owner("alice")
    for authority in authorities:
        authority.register_owner(owner.secret_key)
        owner.learn_authority(
            authority.authority_public_key(),
            authority.public_attribute_keys(),
        )
    policy = " AND ".join(
        f"{authority.aid}:{name}"
        for authority in authorities for name in names
    )
    return group, ca, authorities, owner, policy


def _check_layout(cold_ct, session_ct, group):
    """Session ciphertexts must serialize exactly like cold ones."""
    cold_raw = cold_ct.to_bytes()
    session_raw = session_ct.to_bytes()
    # Ids are chosen with equal lengths, so total sizes must match.
    if len(session_raw) != len(cold_raw):
        raise AssertionError(
            f"serialized size differs: session {len(session_raw)} vs "
            f"cold {len(cold_raw)} bytes"
        )
    cold_header_len = int.from_bytes(cold_raw[:4], "big")
    session_header_len = int.from_bytes(session_raw[:4], "big")
    if session_header_len != cold_header_len:
        raise AssertionError("header lengths differ")
    cold_header = json.loads(cold_raw[4:4 + cold_header_len])
    session_header = json.loads(session_raw[4:4 + session_header_len])
    cold_header.pop("id")
    session_header.pop("id")
    if session_header != cold_header:
        raise AssertionError(
            f"header layout differs: {session_header} vs {cold_header}"
        )
    # Round-trip: decode must reproduce the ciphertext bit-for-bit.
    restored = type(session_ct).from_bytes(group, session_raw)
    if (restored.c != session_ct.c
            or restored.c_prime != session_ct.c_prime
            or restored.c_rows != session_ct.c_rows):
        raise AssertionError("session ciphertext failed its round-trip")


def run(preset_name: str, out_path: str, smoke: bool) -> dict:
    preset = PRESETS[preset_name]
    group, ca, authorities, owner, policy = _build_fabric(preset)
    hosp, trial = authorities
    attr_names = [f"a{i}" for i in range(ATTRS_PER_AUTHORITY)]
    n_attrs = 2 * ATTRS_PER_AUTHORITY

    # -- KeyGen: cold loop vs one session batch (setup included) -----------
    user_pks = [ca.register_user(f"user-{i:03d}") for i in range(N_USERS)]

    start = time.perf_counter()
    cold_keys = [
        (hosp.keygen(pk, attr_names, "alice"),
         trial.keygen(pk, attr_names, "alice"))
        for pk in user_pks
    ]
    keygen_cold_s = time.perf_counter() - start

    start = time.perf_counter()
    hosp_session = hosp.keygen_session("alice", attr_names)
    trial_session = trial.keygen_session("alice", attr_names)
    session_keys = [
        (issued["hosp"], issued["trial"])
        for issued in issue_joint([hosp_session, trial_session], user_pks)
    ]
    keygen_session_s = time.perf_counter() - start

    for (cold_h, cold_t), (fast_h, fast_t) in zip(cold_keys, session_keys):
        if (fast_h.k != cold_h.k or fast_t.k != cold_t.k
                or fast_h.attribute_keys != cold_h.attribute_keys
                or fast_t.attribute_keys != cold_t.attribute_keys
                or fast_h.version != cold_h.version):
            raise AssertionError("session-issued key differs from cold twin")
    keygen_speedup = keygen_cold_s / keygen_session_s
    print(f"[encrypt-session] keygen: {2 * N_USERS} cold keys "
          f"{keygen_cold_s:.3f}s -> session {keygen_session_s:.3f}s "
          f"({keygen_speedup:.2f}x), all keys identical")

    # -- Encrypt: cold loop vs offline/online split -------------------------
    # Each leg runs ENCRYPT_RUNS times and the gate compares the best
    # run of each — the min is the standard noise estimator (cf.
    # ``timeit``; same scheme as bench_parallel_sweep): scheduler
    # hiccups only ever make a run slower. Every offline rep builds a
    # FRESH session, so setup (LSSS resolution, the session's wide
    # generator table) is inside every offline sample, not amortized
    # away across reps.
    messages = [group.random_gt() for _ in range(N_MESSAGES)]
    owner.encrypt(group.random_gt(), policy,
                  ciphertext_id="bench/warmup-00")  # warm tables, both sides

    cold_samples, offline_samples, online_samples = [], [], []
    cold_cts = session_cts = None
    for rep in range(ENCRYPT_RUNS):
        start = time.perf_counter()
        cold_cts = [
            owner.encrypt(message, policy,
                          ciphertext_id=f"bench/cold-{rep}-{i:03d}")
            for i, message in enumerate(messages)
        ]
        cold_samples.append(time.perf_counter() - start)

        start = time.perf_counter()
        session = EncryptionSession(owner, policy)
        session.refill(N_MESSAGES)
        offline_samples.append(time.perf_counter() - start)

        start = time.perf_counter()
        session_cts = [
            session.encrypt(message, ciphertext_id=f"bench/sess-{rep}-{i:03d}")
            for i, message in enumerate(messages)
        ]
        online_samples.append(time.perf_counter() - start)
        if session.stats["pool_misses"]:
            raise AssertionError("online phase fell back to inline bundles")

    encrypt_cold_s = min(cold_samples)
    offline_s = min(offline_samples)
    online_s = min(online_samples)
    online_speedup = encrypt_cold_s / online_s
    amortized_speedup = encrypt_cold_s / (offline_s + online_s)
    print(f"[encrypt-session] encrypt: {N_MESSAGES} msgs x{ENCRYPT_RUNS}, "
          f"{n_attrs}-attribute policy: cold {encrypt_cold_s:.3f}s, "
          f"offline {offline_s:.3f}s + online {online_s:.3f}s "
          f"(online {online_speedup:.1f}x, amortized "
          f"{amortized_speedup:.2f}x)")

    # -- Correctness: round-trip every session ciphertext -------------------
    reader_pk = user_pks[0]
    reader_keys = {"hosp": session_keys[0][0], "trial": session_keys[0][1]}
    transform_key, retrieval_key = make_transform_key(
        group, reader_pk, reader_keys
    )
    for index, (message, ct) in enumerate(zip(messages, session_cts)):
        if decrypt(group, ct, reader_pk, reader_keys) != message:
            raise AssertionError(f"direct decrypt failed for ct {index}")
        partial = server_transform(group, ct, transform_key)
        if user_finalize(ct, partial, retrieval_key) != message:
            raise AssertionError(f"outsourced decrypt failed for ct {index}")
        _check_layout(cold_cts[index], ct, group)
    print(f"[encrypt-session] all {N_MESSAGES} session ciphertexts decrypt "
          f"(direct + outsourced) and serialize identically to cold")

    encrypt_gate = 1.5 if smoke else 3.0
    amortized_gate = 1.2 if smoke else 2.0
    keygen_gate = 1.2 if smoke else 2.0
    report = {
        "benchmark": "encryption session engine (online/offline split)",
        "generated_by": "benchmarks/bench_encrypt_session.py",
        "preset": preset_name,
        "smoke": smoke,
        "arithmetic": arith_metadata(group),
        "workload": {
            "messages": N_MESSAGES,
            "encrypt_runs": ENCRYPT_RUNS,
            "policy_attributes": n_attrs,
            "policy": policy,
            "keygen_users": N_USERS,
            "keygen_authorities": 2,
        },
        "encrypt": {
            "cold_s": round(encrypt_cold_s, 6),
            "offline_s": round(offline_s, 6),
            "online_s": round(online_s, 6),
            "cold_samples_s": [round(v, 6) for v in cold_samples],
            "offline_samples_s": [round(v, 6) for v in offline_samples],
            "online_samples_s": [round(v, 6) for v in online_samples],
            "online_speedup": round(online_speedup, 2),
            "amortized_speedup": round(amortized_speedup, 2),
        },
        "keygen": {
            "cold_s": round(keygen_cold_s, 6),
            "session_s": round(keygen_session_s, 6),
            "speedup": round(keygen_speedup, 2),
        },
        "checks": {
            "direct_decrypts": N_MESSAGES,
            "outsourced_decrypts": N_MESSAGES,
            "layout_identical": True,
            "keys_identical": 2 * N_USERS,
        },
        "gates": {
            "encrypt_online_floor": encrypt_gate,
            "encrypt_amortized_floor": amortized_gate,
            "keygen_floor": keygen_gate,
        },
        "op_counts": counter_summary(group),
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[encrypt-session] wrote {out_path}")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_encrypt_session.json"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="relax the 3x/2x gates to 1.5x/1.2x for CI hardware",
    )
    args = parser.parse_args()
    preset_name = os.environ.get("REPRO_BENCH_PRESET", "SS512")
    report = run(preset_name, args.out, args.smoke)
    failures = []
    if report["encrypt"]["online_speedup"] < report["gates"]["encrypt_online_floor"]:
        failures.append(
            f"encrypt online speedup {report['encrypt']['online_speedup']}x "
            f"< {report['gates']['encrypt_online_floor']}x"
        )
    if (report["encrypt"]["amortized_speedup"]
            < report["gates"]["encrypt_amortized_floor"]):
        failures.append(
            f"encrypt amortized speedup "
            f"{report['encrypt']['amortized_speedup']}x "
            f"< {report['gates']['encrypt_amortized_floor']}x"
        )
    if report["keygen"]["speedup"] < report["gates"]["keygen_floor"]:
        failures.append(
            f"keygen speedup {report['keygen']['speedup']}x "
            f"< {report['gates']['keygen_floor']}x"
        )
    if failures:
        print(f"[encrypt-session] FAIL: {'; '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

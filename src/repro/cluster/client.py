"""The cluster-aware client: replicated writes, failover reads, repair.

:class:`ClusterClient` is the fleet counterpart of one
:class:`repro.service.client.ServiceConnection`: it holds a lazily
connected, retrying connection per node (each with its *own*
independently seeded decorrelated-jitter
:class:`~repro.service.retry.RetryPolicy`, so a fleet of clients
failing over from a dead node never thunders back in phase), places
every record through the :class:`~repro.cluster.topology.ClusterMap`,
and implements the three cluster primitives:

* **replicated writes** — a mutation is fanned to all R replicas
  through :func:`repro.parallel.gather_bounded`; each per-node request
  rides the existing idempotency envelope (one key per node, stable
  across that node's retries), so a node is mutated exactly once no
  matter how many reconnects its chaos costs. The write succeeds when
  W (the map's write quorum) replicas ack, and reports who missed.
* **failover reads with read-repair** — reads walk the preference list;
  a replica that answers :class:`~repro.errors.StorageError` (corrupt
  or missing copy — the server verifies blob digests on every fetch) is
  remembered, and once a healthy replica serves the bytes, the damaged
  ones are repaired from them via ``REPAIR_RECORD`` (byte-preserving,
  so all replicas stay digest-identical). A replica that is simply
  *down* is skipped and left for :meth:`ClusterClient.scrub`.
* **scrub** — a full-fleet digest audit: every record's replicas are
  probed with verified digests; corrupt/missing copies are repaired
  from the first healthy replica in preference order, and
  divergent-but-intact copies converge primary-wins.

Per-node shard and replication telemetry lands in the shared
:class:`repro.system.meter.Meter` as ``cluster.<event>.<node>``
counters (``counter_summary("cluster.")`` is the fleet story), and
:meth:`ClusterClient.health_all` folds them into one aggregate health
view.

The role wrappers (:class:`ClusterOwner`, :class:`ClusterUser`,
:class:`ClusterAuthority`) mirror the single-node role clients by
*holding* one per node — every node-side client shares the same core
state (the owner's ledger, the user's key wallet), so crypto behaves
identically no matter which replica serves.
"""

from __future__ import annotations

import random
from collections import OrderedDict

from repro.cluster.topology import ClusterMap
from repro.core.owner import DataOwner
from repro.crypto.hybrid import encrypt_with_session
from repro.errors import (
    ProtocolError,
    SchemeError,
    StorageError,
    UnavailableError,
)
from repro.pairing.group import PairingGroup
from repro.parallel import gather_bounded
from repro.service import protocol
from repro.service.client import (
    AuthorityClient,
    BaseClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)
from repro.service.protocol import MessageType
from repro.service.retry import RetryLog, RetryPolicy, is_retryable
from repro.system.meter import Meter
from repro.system.records import StoredComponent, StoredRecord


class ClusterClient:
    """Placement, replication, failover and repair over one ClusterMap."""

    def __init__(self, group: PairingGroup, cluster_map: ClusterMap, *,
                 role: str, name: str, meter: Meter = None,
                 timeout: float = 30.0, retry_seed=0, max_attempts: int = 3,
                 fanout_limit: int = 8, max_inflight: int = 8):
        self.group = group
        self.map = cluster_map
        self.role = role
        self.name = name
        self.meter = meter if meter is not None else Meter(group)
        self.timeout = timeout
        self.retry_seed = retry_seed
        self.max_attempts = max_attempts
        self.fanout_limit = fanout_limit
        #: In-flight window per node connection: quorum fan-out sends a
        #: record's replica writes concurrently, and with pipelining the
        #: repair/scrub traffic to one node rides the same connection
        #: instead of serializing behind it.
        self.max_inflight = max_inflight
        self.retry_log = RetryLog()  # one shared trail for the whole fleet
        self._connections = {}  # node name -> ServiceConnection

    # -- connections -------------------------------------------------------

    def _policy(self, node_name: str) -> RetryPolicy:
        """One decorrelated-jitter policy per node, independently seeded
        so concurrent failovers from the same dead node de-phase."""
        return RetryPolicy(
            max_attempts=self.max_attempts, decorrelated=True,
            rng=random.Random(f"{self.retry_seed}:{node_name}"),
        )

    async def connection(self, node_name: str) -> ServiceConnection:
        """The live connection to one node (dialing it if needed).

        Re-dials when the map's address for the node changed — a node
        that restarted elsewhere keeps its name, so placement holds
        while the transport follows the new address.
        """
        node = self.map.node(node_name)
        conn = self._connections.get(node_name)
        if conn is not None and (conn.host, conn.port) != (node.host,
                                                           node.port):
            await conn.close()
            conn = None
        if conn is None:
            conn = ServiceConnection(
                self.group, node.host, node.port, role=self.role,
                name=self.name, meter=self.meter, timeout=self.timeout,
                retry=self._policy(node_name), retry_log=self.retry_log,
                max_inflight=self.max_inflight,
            )
            self._connections[node_name] = conn
        if not conn.connected:
            await conn.connect()
        return conn

    async def close(self) -> None:
        for conn in self._connections.values():
            await conn.close()

    def _bump(self, event: str, node_name: str) -> None:
        self.meter.bump(f"cluster.{event}.{node_name}")

    # -- replicated writes -------------------------------------------------

    async def _replicate(self, record_id: str, msg_type: MessageType,
                         body: bytes, *, event: str, kind: str = None,
                         payload=None) -> dict:
        """Fan one mutation to every replica; succeed at write quorum.

        Each node's request carries its own idempotency key (stable
        across that node's retries), so replay after a reconnect is
        deduplicated per node — the mutation applies exactly once
        everywhere it applies at all.
        """
        replicas = self.map.replicas_for(record_id)

        async def send(node):
            conn = await self.connection(node.name)
            if kind is not None:
                conn.meter_send(kind, payload)
            await conn.request(msg_type, body, expect=MessageType.OK)
            return node.name

        outcomes = await gather_bounded(
            [lambda node=node: send(node) for node in replicas],
            limit=self.fanout_limit,
        )
        acks, failed = [], {}
        for node, outcome in zip(replicas, outcomes):
            if isinstance(outcome, Exception):
                failed[node.name] = repr(outcome)
                self._bump(f"{event}-miss", node.name)
            else:
                acks.append(node.name)
                self._bump(f"{event}-ack", node.name)
        if len(acks) < self.map.write_quorum:
            raise UnavailableError(
                f"{event} of {record_id!r} reached {len(acks)} of "
                f"{self.map.write_quorum} required replicas "
                f"(failures: {failed})"
            )
        return {"acks": acks, "failed": failed}

    async def store_record(self, record: StoredRecord) -> dict:
        """Write one record to its full replica set (quorum-acked)."""
        return await self._replicate(
            record.record_id, MessageType.STORE_RECORD, record.to_bytes(),
            event="store", kind="store-record", payload=record,
        )

    async def delete_record(self, record_id: str) -> dict:
        return await self._replicate(
            record_id, MessageType.DELETE_RECORD,
            protocol.encode_json({"record": record_id}),
            event="delete", kind="delete-record", payload=record_id,
        )

    # -- failover reads & repair -------------------------------------------

    async def read_with_failover(self, record_id: str, op):
        """Run ``await op(node_name)`` against replicas in preference
        order until one serves.

        A replica whose copy is damaged (:class:`StorageError` — the
        server digest-verifies every blob read) is recorded and, once a
        healthy replica answers, repaired from the healthy bytes; a
        replica that is down (transport failure after its own retries)
        is skipped. Application errors other than storage — wrong keys,
        protocol violations — propagate immediately: failing over
        cannot fix those.
        """
        damaged, last_error = [], None
        for node in self.map.replicas_for(record_id):
            try:
                result = await op(node.name)
            except StorageError as exc:
                damaged.append(node.name)
                last_error = exc
                self._bump("damaged", node.name)
            except ProtocolError:
                raise
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                last_error = exc
                self._bump("failover", node.name)
            else:
                self._bump("read", node.name)
                if damaged:
                    await self.repair_from(record_id, node.name, damaged)
                return result
        raise last_error

    async def repair_from(self, record_id: str, source_node: str,
                          targets) -> list:
        """Copy one record's bytes from a healthy node onto damaged ones.

        The raw served bytes travel verbatim (no decode/re-encode
        round-trip), so the repaired replicas land digest-identical to
        the source. A target that is unreachable stays damaged — the
        next read or scrub retries. Returns the nodes actually repaired.
        """
        conn = await self.connection(source_node)
        conn.meter_send("read-request", record_id)
        _, blob = await conn.request(
            MessageType.FETCH_RECORD,
            protocol.encode_json({"record": record_id}),
            expect=MessageType.RECORD,
        )
        repaired = []
        for name in targets:
            try:
                target = await self.connection(name)
                await target.request(MessageType.REPAIR_RECORD, blob,
                                     expect=MessageType.OK)
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                self._bump("repair-miss", name)
            else:
                repaired.append(name)
                self._bump("repair", name)
        return repaired

    async def replica_digests(self, record_id: str, *,
                              verify: bool = False) -> dict:
        """Each assigned replica's digest report for one record.

        ``node name -> {"digest": ..., "ok": ...}`` (or ``{"error":
        repr}`` for an unreachable/empty replica). The adversarial
        scenarios use this as their convergence invariant: after a
        healed partition plus a resumed sweep, every replica of every
        record must be byte-identical — one digest across the set.
        """
        replicas = self.map.replicas_for(record_id)

        async def probe(node):
            conn = await self.connection(node.name)
            return await BaseClient(conn).record_digest(record_id,
                                                        verify=verify)

        outcomes = await gather_bounded(
            [lambda node=node: probe(node) for node in replicas],
            limit=self.fanout_limit,
        )
        return {
            node.name: (outcome if not isinstance(outcome, Exception)
                        else {"error": repr(outcome)})
            for node, outcome in zip(replicas, outcomes)
        }

    async def fetch_record(self, record_id: str) -> StoredRecord:
        """Download one whole record, failing over and repairing."""
        async def op(node_name):
            conn = await self.connection(node_name)
            return await BaseClient(conn).fetch_record(record_id)

        return await self.read_with_failover(record_id, op)

    async def fetch_component(self, record_id: str,
                              component_name: str) -> StoredComponent:
        async def op(node_name):
            conn = await self.connection(node_name)
            return await BaseClient(conn)._fetch_component(
                record_id, component_name
            )

        return await self.read_with_failover(record_id, op)

    # -- fleet-wide views --------------------------------------------------

    async def _each_node(self, op) -> dict:
        """``await op(name)`` on every node; name -> result or exception."""
        names = self.map.node_names
        outcomes = await gather_bounded(
            [lambda name=name: op(name) for name in names],
            limit=self.fanout_limit,
        )
        return dict(zip(names, outcomes))

    async def list_records(self) -> list:
        """The union of record ids across every reachable node."""
        async def op(name):
            conn = await self.connection(name)
            return await BaseClient(conn).list_records()

        union, reachable = set(), 0
        last_error = None
        for outcome in (await self._each_node(op)).values():
            if isinstance(outcome, Exception):
                last_error = outcome
                continue
            reachable += 1
            union.update(outcome)
        if not reachable:
            raise UnavailableError(
                f"no cluster node answered a record listing "
                f"(last error: {last_error!r})"
            )
        return sorted(union)

    async def health_all(self) -> dict:
        """Every node's heartbeat plus one fleet aggregate.

        ``status`` is ``ok`` (every node healthy), ``degraded`` (some
        node down or read-only), or ``down`` (no node healthy); the
        ``counters`` block carries the per-node shard/replication
        tallies accumulated in this client's meter.
        """
        async def op(name):
            conn = await self.connection(name)
            return await BaseClient(conn).health()

        nodes = {}
        healthy = 0
        for name, outcome in (await self._each_node(op)).items():
            if isinstance(outcome, Exception):
                nodes[name] = {"status": "down", "error": repr(outcome)}
            else:
                nodes[name] = outcome
                healthy += outcome.get("status") == "ok"
        status = ("ok" if healthy == len(nodes)
                  else "down" if healthy == 0 else "degraded")
        return {
            "status": status,
            "nodes": nodes,
            "replication": self.map.replication,
            "write_quorum": self.map.write_quorum,
            "counters": self.meter.counter_summary("cluster."),
        }

    async def stats_all(self) -> dict:
        """Per-node server stats plus this client's placement view."""
        async def op(name):
            conn = await self.connection(name)
            return await BaseClient(conn).stats()

        nodes = {
            name: (outcome if not isinstance(outcome, Exception)
                   else {"error": repr(outcome)})
            for name, outcome in (await self._each_node(op)).items()
        }
        return {
            "nodes": nodes,
            "shards": {name: stats.get("records")
                       for name, stats in nodes.items()},
            "counters": self.meter.counter_summary("cluster."),
        }

    # -- scrub -------------------------------------------------------------

    async def scrub(self) -> dict:
        """Digest-audit every record's replica set and repair the fleet.

        For each record, every assigned replica is probed with a
        *verified* digest (the node re-reads its blob bytes and checks
        them). The first replica in preference order that verifies is
        authoritative — primary-wins, so divergent-but-intact copies
        converge on the primary's version — and every copy that is
        corrupt, missing, or divergent is repaired from it.
        """
        summary = {"checked": 0, "repaired": {}, "diverged": {},
                   "unreachable": {}, "lost": []}
        for record_id in await self.list_records():
            summary["checked"] += 1
            replicas = self.map.replicas_for(record_id)

            async def probe(node, record_id=record_id):
                conn = await self.connection(node.name)
                return await BaseClient(conn).record_digest(
                    record_id, verify=True
                )

            outcomes = await gather_bounded(
                [lambda node=node: probe(node) for node in replicas],
                limit=self.fanout_limit,
            )
            source = None
            damaged, down = [], []
            for node, outcome in zip(replicas, outcomes):
                if isinstance(outcome, StorageError):
                    damaged.append(node.name)  # missing copy: repairable
                elif isinstance(outcome, Exception):
                    down.append(node.name)
                elif not outcome.get("ok"):
                    damaged.append(node.name)  # corrupt copy: repairable
                elif source is None:
                    source = (node.name, outcome.get("digest"))
                elif outcome.get("digest") != source[1]:
                    # Intact but divergent: the preference-order winner
                    # (the primary, when healthy) dictates the bytes.
                    damaged.append(node.name)
                    summary["diverged"].setdefault(record_id, []).append(
                        node.name
                    )
                    self._bump("scrub-diverged", node.name)
            if down:
                summary["unreachable"][record_id] = down
            if source is None:
                summary["lost"].append(record_id)
                continue
            if damaged:
                repaired = await self.repair_from(record_id, source[0],
                                                  damaged)
                if repaired:
                    summary["repaired"][record_id] = repaired
        return summary


class _ClusterRole:
    """Shared scaffolding: one single-node role client per node, all
    sharing the same core state so any replica serves identically."""

    def __init__(self, cluster: ClusterClient):
        self.cluster = cluster
        self.group = cluster.group
        self._clients = {}  # node name -> single-node role client

    def _make(self, connection: ServiceConnection):
        raise NotImplementedError

    async def _client(self, node_name: str):
        conn = await self.cluster.connection(node_name)
        client = self._clients.get(node_name)
        if client is None or client.connection is not conn:
            client = self._make(conn)
            self._clients[node_name] = client
        return client

    async def close(self) -> None:
        await self.cluster.close()

    async def health(self) -> dict:
        return await self.cluster.health_all()


class ClusterOwner(_ClusterRole):
    """The data-owner role against the fleet (cf. ``OwnerClient``)."""

    def __init__(self, cluster: ClusterClient, core: DataOwner):
        super().__init__(cluster)
        self.core = core

    def _make(self, connection):
        return OwnerClient(connection, self.core)

    @property
    def owner_id(self) -> str:
        return self.core.owner_id

    async def learn_authorities(self, aid: str) -> None:
        """Fetch an authority's keys from any node's directory."""
        last_error = None
        for name in self.cluster.map.node_names:
            try:
                client = await self._client(name)
                return await client.learn_authorities(aid)
            except StorageError as exc:  # this node missed the publish
                last_error = exc
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                last_error = exc
        raise last_error

    async def upload(self, record_id: str, components: dict) -> StoredRecord:
        """Encrypt once, store on every replica (quorum-acked).

        Same session-backed encryption as the single-node
        :meth:`OwnerClient.upload` — the ciphertext is built exactly
        once, so every replica holds byte-identical copies.
        """
        stored = {}
        for component_name, (plaintext, policy) in components.items():
            ciphertext_id = f"{record_id}/{component_name}"
            abe_ciphertext, body = encrypt_with_session(
                self.core.session_for(policy), ciphertext_id, plaintext
            )
            stored[component_name] = StoredComponent(
                name=component_name,
                abe_ciphertext=abe_ciphertext,
                data_ciphertext=body,
            )
        record = StoredRecord(
            record_id=record_id, owner_id=self.owner_id, components=stored
        )
        await self.cluster.store_record(record)
        return record

    async def read_own(self, record_id: str, component_name: str) -> bytes:
        async def op(node_name):
            client = await self._client(node_name)
            return await client.read_own(record_id, component_name)

        return await self.cluster.read_with_failover(record_id, op)

    async def delete_record(self, record_id: str) -> dict:
        result = await self.cluster.delete_record(record_id)
        prefix = f"{record_id}/"
        for ciphertext_id in self.core.ciphertext_ids:
            if ciphertext_id.startswith(prefix) \
                    and not self.core.is_retired(ciphertext_id):
                self.core.retire_record(ciphertext_id)
        return result

    async def sweep_revocation(self, update_key, *, include_uk2: bool = True,
                               on_progress=None) -> dict:
        """Fleet-wide Section V-C sweep; see :func:`repro.cluster.sweep.
        sweep_cluster`."""
        from repro.cluster.sweep import sweep_cluster

        return await sweep_cluster(self.cluster, self.core, update_key,
                                   include_uk2=include_uk2,
                                   on_progress=on_progress)


class ClusterUser(_ClusterRole):
    """The data-consumer role against the fleet (cf. ``UserClient``).

    One key wallet, shared by reference with every per-node
    :class:`UserClient`, so a key update applied here is instantly
    visible no matter which replica the next read lands on.
    """

    def __init__(self, cluster: ClusterClient, uid: str):
        super().__init__(cluster)
        self.uid = uid
        self.public_key = None
        self._secret_keys = {}  # owner id -> {aid -> UserSecretKey}
        # Shared with every per-node client (like the wallet): a
        # decryption session built reading from one replica keeps
        # serving after a failover to another, and one retrieval key
        # finalizes transforms no matter which node computed them.
        self._decrypt_sessions = OrderedDict()
        self._retrieval_keys = {}  # owner id -> RetrievalKey

    def _make(self, connection):
        client = UserClient(connection, self.uid)
        client.public_key = self.public_key
        client._secret_keys = self._secret_keys  # shared, never copied
        client._decrypt_sessions = self._decrypt_sessions
        client._retrieval_keys = self._retrieval_keys
        return client

    def receive_public_key(self, public_key) -> None:
        if public_key.uid != self.uid:
            raise SchemeError("received a public key for a different UID")
        self.public_key = public_key
        for client in self._clients.values():
            client.public_key = public_key

    def receive_secret_key(self, secret_key) -> None:
        if secret_key.uid != self.uid:
            raise SchemeError("received a secret key for a different UID")
        self._secret_keys.setdefault(secret_key.owner_id, {})[
            secret_key.aid
        ] = secret_key

    def apply_update_key(self, update_key) -> None:
        from repro.core.authority import apply_update_key as roll

        for owner_id, keys in self._secret_keys.items():
            key = keys.get(update_key.aid)
            if key is not None and key.version == update_key.from_version:
                if owner_id in update_key.uk1:
                    keys[update_key.aid] = roll(key, update_key)

    def drop_keys(self, aid: str, owner_id: str) -> None:
        self._secret_keys.get(owner_id, {}).pop(aid, None)

    async def read(self, record_id: str, component_name: str) -> bytes:
        async def op(node_name):
            client = await self._client(node_name)
            return await client.read(record_id, component_name)

        return await self.cluster.read_with_failover(record_id, op)

    async def read_many(self, items) -> list:
        """Batch read across shards: per-primary batches, per-item
        failover.

        Items are grouped by their record's primary replica so each
        group rides one pipelined :meth:`UserClient.read_many` (batched
        session decrypts); any group whose primary cannot serve falls
        back to per-item :meth:`read`, which walks the full preference
        list and read-repairs as usual.
        """
        items = list(items)
        groups = {}  # primary node name -> [item indices]
        for index, (record_id, _) in enumerate(items):
            primary = self.cluster.map.replicas_for(record_id)[0].name
            groups.setdefault(primary, []).append(index)
        plaintexts = [None] * len(items)
        for node_name, indices in groups.items():
            try:
                client = await self._client(node_name)
                values = await client.read_many(
                    [items[index] for index in indices]
                )
            except ProtocolError:
                raise
            except Exception as exc:
                if not (is_retryable(exc) or isinstance(exc, StorageError)):
                    raise
                values = []
                for index in indices:
                    values.append(await self.read(*items[index]))
            for index, value in zip(indices, values):
                plaintexts[index] = value
        return plaintexts

    async def register_transform_key(self, owner_id: str) -> dict:
        """Mint ONE blinded bundle and register it fleet-wide.

        One ``z`` for the whole fleet: every node holds the same
        transform key, so the single retained retrieval key finalizes a
        transform served by any replica. Succeeds if at least one node
        took the key (an outsourced read fails over past the others).
        """
        keys = self._secret_keys.get(owner_id)
        if not keys:
            raise SchemeError(
                f"user {self.uid!r} holds no keys scoped to owner "
                f"{owner_id!r}"
            )
        from repro.core.outsourcing import make_transform_key

        transform_key, retrieval_key = make_transform_key(
            self.group, self.public_key, dict(keys)
        )

        async def op(name):
            client = await self._client(name)
            await client.put_transform_key(transform_key)
            return name

        outcomes = await self.cluster._each_node(op)
        acks = [name for name, outcome in outcomes.items()
                if not isinstance(outcome, Exception)]
        failed = {name: repr(outcome)
                  for name, outcome in outcomes.items()
                  if isinstance(outcome, Exception)}
        if not acks:
            raise UnavailableError(
                f"no cluster node accepted the transform key for "
                f"{self.uid!r} (failures: {failed})"
            )
        self._retrieval_keys[owner_id] = retrieval_key
        return {"acks": acks, "failed": failed}

    async def read_outsourced(self, record_id: str,
                              component_name: str) -> bytes:
        """Server-transformed read with replica failover.

        Zero pairings on this client regardless of which replica
        serves; a node missing the registration answers a typed
        authorization error, which propagates (failing over cannot
        mint keys)."""
        async def op(node_name):
            client = await self._client(node_name)
            return await client.read_outsourced(record_id, component_name)

        return await self.cluster.read_with_failover(record_id, op)


class ClusterAuthority(_ClusterRole):
    """An attribute authority publishing into *every* node's directory."""

    def __init__(self, cluster: ClusterClient, core):
        super().__init__(cluster)
        self.core = core

    def _make(self, connection):
        return AuthorityClient(connection, self.core)

    @property
    def aid(self) -> str:
        return self.core.aid

    async def publish_keys(self) -> dict:
        """Push this AA's public keys to all nodes; all must take them
        (a node that missed the publish could not serve its shard)."""
        async def op(name):
            client = await self._client(name)
            await client.publish_keys()
            return name

        failed = {
            name: repr(outcome)
            for name, outcome in (await self.cluster._each_node(op)).items()
            if isinstance(outcome, Exception)
        }
        if failed:
            raise UnavailableError(
                f"authority {self.aid!r} failed to publish on: {failed}"
            )
        return {"acks": self.cluster.map.node_names}

"""Corrupted- and truncated-input behaviour of every key decoder.

The contract (hardened in this change): a hostile or damaged encoding
fed to any ``decode_*`` or to ``Ciphertext.from_bytes`` raises
:class:`SchemeError` — never ``json.JSONDecodeError``, ``KeyError``,
``IndexError`` or any other stdlib leak.
"""

import json

import pytest

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.ciphertext import Ciphertext
from repro.core.owner import DataOwner
from repro.core.revocation import rekey_standard
from repro.core.serialize import (
    decode_authority_public_key,
    decode_owner_secret_key,
    decode_public_attribute_keys,
    decode_update_info,
    decode_update_key,
    decode_user_public_key,
    decode_user_secret_key,
    encode_authority_public_key,
    encode_owner_secret_key,
    encode_public_attribute_keys,
    encode_update_info,
    encode_update_key,
    encode_user_public_key,
    encode_user_secret_key,
)
from repro.errors import ReproError, SchemeError


@pytest.fixture(scope="module")
def material(group):
    """One valid encoding of every wire format, plus its decoder."""
    ca = CertificateAuthority(group)
    aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
    ca.register_authority("hospital")
    owner = DataOwner(group, "alice")
    ca.register_owner("alice")
    aa.register_owner(owner.secret_key)
    owner.learn_authority(
        aa.authority_public_key(), aa.public_attribute_keys()
    )
    upk = ca.register_user("bob")
    usk = aa.keygen(upk, ["doctor", "nurse"], "alice")
    ciphertext = owner.encrypt(
        group.random_gt(), "hospital:doctor AND hospital:nurse",
        ciphertext_id="ct-1",
    )
    update_key = rekey_standard(aa, "bob", ["doctor"]).update_key
    update_info = owner.update_info_for_record("ct-1", update_key)
    return {
        "upk": (encode_user_public_key(upk), decode_user_public_key),
        "osk": (encode_owner_secret_key(group, owner.secret_key),
                decode_owner_secret_key),
        "apk": (encode_authority_public_key(aa.authority_public_key()),
                decode_authority_public_key),
        "pak": (encode_public_attribute_keys(aa.public_attribute_keys()),
                decode_public_attribute_keys),
        "usk": (encode_user_secret_key(usk), decode_user_secret_key),
        "uk": (encode_update_key(group, update_key), decode_update_key),
        "ui": (encode_update_info(update_info), decode_update_info),
        "ct": (ciphertext.to_bytes(),
               lambda g, data: Ciphertext.from_bytes(g, data)),
    }


KINDS = ["upk", "osk", "apk", "pak", "usk", "uk", "ui", "ct"]


def rewrite_header(data: bytes, mutate) -> bytes:
    """Decode the JSON header, apply ``mutate``, re-pack unchanged body."""
    header_len = int.from_bytes(data[:4], "big")
    header = json.loads(data[4:4 + header_len])
    body = data[4 + header_len:]
    mutate(header)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return len(raw).to_bytes(4, "big") + raw + body


@pytest.mark.parametrize("kind", KINDS)
def test_roundtrips_before_corruption(group, material, kind):
    encoded, decode = material[kind]
    decoded = decode(group, encoded)
    assert decoded is not None


@pytest.mark.parametrize("kind", KINDS)
def test_truncated_prefix(group, material, kind):
    _, decode = material[kind]
    for n in range(4):
        with pytest.raises(SchemeError):
            decode(group, b"\x00" * n)


@pytest.mark.parametrize("kind", KINDS)
def test_truncation_at_every_boundary(group, material, kind):
    encoded, decode = material[kind]
    header_len = int.from_bytes(encoded[:4], "big")
    # Cut inside the length prefix, inside the header, at the header
    # boundary, and inside the element body.
    for cut in (2, 4 + header_len // 2, 4 + header_len, len(encoded) - 1):
        with pytest.raises(SchemeError):
            decode(group, encoded[:cut])


@pytest.mark.parametrize("kind", KINDS)
def test_oversized_declared_header_length(group, material, kind):
    encoded, decode = material[kind]
    huge = (0xFFFFFFFF).to_bytes(4, "big") + encoded[4:]
    with pytest.raises(SchemeError):
        decode(group, huge)


@pytest.mark.parametrize("kind", KINDS)
def test_header_is_not_json(group, material, kind):
    encoded, decode = material[kind]
    header_len = int.from_bytes(encoded[:4], "big")
    garbled = encoded[:4] + b"\xff" * header_len + encoded[4 + header_len:]
    with pytest.raises(SchemeError):
        decode(group, garbled)


@pytest.mark.parametrize("kind", KINDS)
def test_header_is_json_but_not_an_object(group, material, kind):
    _, decode = material[kind]
    raw = b"[1,2,3]"
    with pytest.raises(SchemeError):
        decode(group, len(raw).to_bytes(4, "big") + raw)


@pytest.mark.parametrize("kind", KINDS)
def test_trailing_garbage_after_body(group, material, kind):
    encoded, decode = material[kind]
    with pytest.raises(SchemeError):
        decode(group, encoded + b"\x00")


@pytest.mark.parametrize("kind", [k for k in KINDS if k != "ct"])
def test_non_bytes_input(group, material, kind):
    _, decode = material[kind]
    for bogus in (None, "string", 7, ["bytes"]):
        with pytest.raises(SchemeError):
            decode(group, bogus)


@pytest.mark.parametrize("kind", [k for k in KINDS if k != "ct"])
def test_wrong_kind_tag_is_rejected(group, material, kind):
    """Every decoder refuses the other decoders' encodings."""
    for other, (encoded, _) in material.items():
        if other in (kind, "ct"):
            continue
        _, decode = material[kind]
        with pytest.raises(SchemeError):
            decode(group, encoded)


# -- header field typing ------------------------------------------------------

def expect_rejected(group, decode, corrupted):
    with pytest.raises(SchemeError):
        decode(group, corrupted)


def test_upk_uid_must_be_a_string(group, material):
    encoded, decode = material["upk"]
    expect_rejected(group, decode, rewrite_header(
        encoded, lambda h: h.__setitem__("uid", 42)
    ))
    expect_rejected(group, decode, rewrite_header(
        encoded, lambda h: h.pop("uid")
    ))


def test_apk_version_must_be_an_integer(group, material):
    encoded, decode = material["apk"]
    for bad in ("1", True, None, 1.5):
        expect_rejected(group, decode, rewrite_header(
            encoded, lambda h: h.__setitem__("version", bad)
        ))


def test_pak_attrs_must_be_a_clean_string_list(group, material):
    encoded, decode = material["pak"]
    for bad in ("doctor", {"doctor": 1}, [1, 2], ["doctor", "doctor"]):
        expect_rejected(group, decode, rewrite_header(
            encoded, lambda h: h.__setitem__("attrs", bad)
        ))


def test_usk_versions_and_ids(group, material):
    encoded, decode = material["usk"]
    for field, bad in (("uid", 1), ("aid", None), ("owner", []),
                       ("version", "2"), ("attrs", "doctor")):
        expect_rejected(group, decode, rewrite_header(
            encoded, lambda h: h.__setitem__(field, bad)
        ))


def test_uk_owner_list_and_versions(group, material):
    encoded, decode = material["uk"]
    for field, bad in (("owners", "alice"), ("owners", ["a", "a"]),
                       ("from", "0"), ("to", False), ("aid", 9)):
        expect_rejected(group, decode, rewrite_header(
            encoded, lambda h: h.__setitem__(field, bad)
        ))


def test_ui_fields(group, material):
    encoded, decode = material["ui"]
    for field, bad in (("ct", 3), ("aid", []), ("attrs", ["x", "x"]),
                       ("from", None), ("to", "1")):
        expect_rejected(group, decode, rewrite_header(
            encoded, lambda h: h.__setitem__(field, bad)
        ))


def test_body_with_wrong_element_count(group, material):
    encoded, decode = material["pak"]
    with pytest.raises(SchemeError, match="body"):
        decode(group, encoded[:-group.g1_bytes])


# -- Ciphertext.from_bytes ----------------------------------------------------

def test_ciphertext_header_field_typing(group, material):
    encoded, _ = material["ct"]

    def corrupt(field, value):
        return rewrite_header(
            encoded, lambda h: h.__setitem__(field, value)
        )

    for field, bad in (("id", 7), ("owner", None), ("policy", ["or"]),
                       ("versions", "hospital"), ("versions", {"a": "1"}),
                       ("versions", {"a": True}), ("lsss", 3)):
        with pytest.raises(SchemeError, match="malformed ciphertext"):
            Ciphertext.from_bytes(group, corrupt(field, bad))


def test_ciphertext_missing_header_field(group, material):
    encoded, _ = material["ct"]
    for field in ("id", "owner", "policy", "versions"):
        corrupted = rewrite_header(encoded, lambda h: h.pop(field))
        with pytest.raises(SchemeError, match="malformed ciphertext"):
            Ciphertext.from_bytes(group, corrupted)


def test_ciphertext_body_length_mismatch(group, material):
    encoded, _ = material["ct"]
    with pytest.raises(SchemeError, match="wrong length"):
        Ciphertext.from_bytes(group, encoded[:-1])
    with pytest.raises(SchemeError, match="wrong length"):
        Ciphertext.from_bytes(group, encoded + b"\x01")


def test_ciphertext_garbage_policy_stays_a_library_error(group, material):
    """An unparseable policy surfaces as PolicyError — still inside the
    library's hierarchy, never a stdlib leak."""
    encoded, _ = material["ct"]
    corrupted = rewrite_header(
        encoded, lambda h: h.__setitem__("policy", "((((")
    )
    with pytest.raises(ReproError):
        Ciphertext.from_bytes(group, corrupted)

"""Deterministic consistent hashing over record UIDs.

The cluster mode places every record on R of N storage nodes by
client-side consistent hashing: no coordinator, no placement table —
any client holding the same :class:`HashRing` parameters (node names,
virtual-node count, seed) computes the same placement for every record
id, forever. Placement therefore never crosses the wire, exactly like
the paper's server never holds key material: the topology *is* the
routing.

Mechanics: each node contributes ``vnodes`` points on a 64-bit ring,
each point the SHA-256 of ``"{seed}|{name}#{index}"``; a record id
hashes to its own point, and its preference list is the next ``count``
*distinct* nodes clockwise. SHA-256 keeps the ring seed-stable across
Python versions and processes (``hash()`` randomization never leaks
in), and virtual nodes keep per-node load within a few percent of even.

Adding a node moves only the keys that now fall in the new node's
arcs — ~1/N of them — and removing a node only re-homes the keys it
owned; every other key's preference list is untouched. That stability
is load-bearing (a topology change must not reshuffle the fleet) and
pinned by regression tests.
"""

from __future__ import annotations

import bisect
import hashlib


def _ring_point(seed, label: str) -> int:
    """A 64-bit ring position; SHA-256-derived, so seed-stable."""
    digest = hashlib.sha256(f"{seed}|{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A seed-stable virtual-node consistent-hash ring of node names."""

    def __init__(self, nodes=(), *, vnodes: int = 64, seed=0):
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self.seed = seed
        self._nodes = set()
        self._points = []  # sorted [(point, node name)]
        for name in nodes:
            self.add_node(name)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def node_names(self) -> list:
        return sorted(self._nodes)

    def _node_points(self, name: str) -> list:
        return [(_ring_point(self.seed, f"{name}#{index}"), name)
                for index in range(self.vnodes)]

    def add_node(self, name: str) -> None:
        if name in self._nodes:
            raise ValueError(f"node {name!r} is already on the ring")
        self._nodes.add(name)
        self._points.extend(self._node_points(name))
        # Ties (astronomically unlikely with 64-bit points) break by
        # name, so every ring with the same members sorts identically.
        self._points.sort()

    def remove_node(self, name: str) -> None:
        if name not in self._nodes:
            raise ValueError(f"node {name!r} is not on the ring")
        self._nodes.remove(name)
        self._points = [(point, owner) for point, owner in self._points
                        if owner != name]

    def preference(self, key: str, count: int = 1) -> list:
        """The first ``count`` distinct nodes clockwise of ``key``.

        The full preference list, not just the owner: entry 0 is the
        key's primary, entries 1..R-1 its replicas, and a reader that
        finds entry 0 dead just keeps walking — the same order every
        client computes.
        """
        if count < 1:
            raise ValueError("count must be positive")
        if not self._points:
            raise ValueError("the ring has no nodes")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._points,
                                    (_ring_point(self.seed, f"key|{key}"),))
        chosen = []
        seen = set()
        for offset in range(len(self._points)):
            _, name = self._points[(start + offset) % len(self._points)]
            if name not in seen:
                seen.add(name)
                chosen.append(name)
                if len(chosen) == count:
                    break
        return chosen

    def owner(self, key: str) -> str:
        """The key's primary node."""
        return self.preference(key, 1)[0]

    def load_map(self, keys, count: int = 1) -> dict:
        """``node name -> [keys]`` for a batch of keys (shard stats)."""
        placement = {name: [] for name in self._nodes}
        for key in keys:
            for name in self.preference(key, count):
                placement[name].append(key)
        return placement

#!/usr/bin/env python3
"""The paper's second scenario: a cross-company joint project.

"Two companies such as IBM or Google may have a joint project and both
of them issue attributes to users who participate in this joint
project." Neither company will accept the other — or any third party —
as a global authority, which is exactly the constraint the scheme
removes.

This example shows richer policies (thresholds, clearance tiers) and
demonstrates that collusion between employees of the two companies is
rejected: pooled keys carry different UIDs and cannot decrypt together.

Run:  python examples/joint_project.py
"""

from repro.core import MultiAuthorityABE
from repro.core.decrypt import decrypt
from repro.ec import TOY80
from repro.errors import PolicyNotSatisfiedError, SchemeError


def main():
    scheme = MultiAuthorityABE(TOY80, seed=4242)

    # Each company runs its own authority over its own HR attributes.
    acme = scheme.setup_authority(
        "acme", ["engineer", "manager", "cleared", "contractor"]
    )
    globex = scheme.setup_authority(
        "globex", ["engineer", "lead", "cleared"]
    )
    # Note: "engineer" exists at both companies — the AID prefix keeps the
    # attributes distinguishable ("with the AID, all the attributes are
    # distinguishable even though some attributes present the same meaning").

    owner = scheme.setup_owner("project-office", [acme, globex])

    # Participants.
    def enroll(uid, acme_attrs, globex_attrs):
        public = scheme.register_user(uid)
        keys = {}
        if acme_attrs:
            keys["acme"] = acme.keygen(public, acme_attrs, "project-office")
        if globex_attrs:
            keys["globex"] = globex.keygen(public, globex_attrs,
                                           "project-office")
        return public, keys

    ada, ada_keys = enroll("ada", ["engineer", "cleared"], ["engineer"])
    bob, bob_keys = enroll("bob", ["manager"], ["lead", "cleared"])
    eve, eve_keys = enroll("eve", ["contractor"], ["engineer"])

    design_doc = scheme.random_message()
    design_ct = owner.encrypt(
        design_doc,
        "(acme:engineer OR acme:manager) AND "
        "(globex:engineer OR globex:lead)",
    )

    audit_log = scheme.random_message()
    audit_ct = owner.encrypt(
        audit_log,
        "acme:cleared OR globex:cleared",
    )

    def check(label, ciphertext, expected, public, keys):
        try:
            ok = scheme.decrypt(ciphertext, public, keys) == expected
            print(f"  {label:<28} {'decrypts' if ok else 'WRONG PLAINTEXT'}")
        except (PolicyNotSatisfiedError, SchemeError) as exc:
            print(f"  {label:<28} denied ({type(exc).__name__})")

    print("Design document — needs a role at BOTH companies:")
    check("ada  (eng@acme, eng@globex)", design_ct, design_doc, ada, ada_keys)
    check("bob  (mgr@acme, lead@globex)", design_ct, design_doc, bob, bob_keys)
    check("eve  (contractor, eng@globex)", design_ct, design_doc, eve,
          eve_keys)

    print("\nAudit log — any clearance suffices (but the numerator still "
          "needs a key from each involved AA):")
    check("ada  (cleared@acme)", audit_ct, audit_log, ada, ada_keys)
    check("bob  (cleared@globex)", audit_ct, audit_log, bob, bob_keys)
    check("eve  (no clearance)", audit_ct, audit_log, eve, eve_keys)

    # Collusion: eve (globex engineer) + a colluding acme manager try to
    # pool their keys to read the design document.
    print("\nCollusion attempt — eve pools bob's acme key with her own:")
    pooled = {"acme": bob_keys["acme"], "globex": eve_keys["globex"]}
    try:
        decrypt(scheme.group, design_ct, eve, pooled)
        print("  !! collusion succeeded (this must never print)")
    except SchemeError as exc:
        print(f"  rejected: {exc}")

    # Even forging the UID label does not help: the exponents embed u.
    import dataclasses

    forged = dataclasses.replace(bob_keys["acme"], uid="eve")
    result = decrypt(
        scheme.group, design_ct, eve, {"acme": forged,
                                       "globex": eve_keys["globex"]}
    )
    print(f"  forged-UID bypass yields garbage: "
          f"{result != design_doc} (plaintext NOT recovered)")


if __name__ == "__main__":
    main()

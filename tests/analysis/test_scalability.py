"""Tests for the Table I feature matrix and its checkable claims."""

from repro.analysis.scalability import TABLE1, render_table1, table1_rows


class TestTable1:
    def test_six_schemes(self):
        assert len(table1_rows()) == 6

    def test_ours_row_claims(self):
        ours = TABLE1[0]
        assert not ours.requires_global_authority
        assert ours.policy_type == "any LSSS"
        assert ours.collusion_bound == "any"
        assert ours.implemented_here == "repro.core"

    def test_lewko_matches_ours_scalability(self):
        """The paper: 'only Lewko's scheme has the same scalability'."""
        ours = TABLE1[0]
        lewko = next(row for row in TABLE1 if "Lewko" in row.scheme)
        assert (
            lewko.requires_global_authority,
            lewko.policy_type,
            lewko.collusion_bound,
        ) == (
            ours.requires_global_authority,
            ours.policy_type,
            ours.collusion_bound,
        )

    def test_only_two_fully_scalable_schemes(self):
        fully = [
            row for row in TABLE1
            if not row.requires_global_authority
            and row.policy_type == "any LSSS"
            and row.collusion_bound == "any"
        ]
        assert len(fully) == 2

    def test_render(self):
        text = render_table1()
        assert "Lewko-Waters" in text
        assert "any LSSS" in text
        assert len(text.splitlines()) == 8  # header + rule + 6 rows

"""Shared helpers for the cluster tests: a small live fleet.

``start_fleet`` boots N real :class:`StorageService` nodes on ephemeral
localhost ports and builds the :class:`ClusterMap` that routes to them;
the trust fabric comes from the service suite's ``Scenario`` so both
layers agree on what a record looks like.
"""

import pytest

from repro.cluster import ClusterClient, ClusterMap, ClusterNode
from repro.service.server import StorageService
from repro.service.store import RecordStore

from tests.service.conftest import Scenario, run, start_service  # noqa: F401


async def start_fleet(group, root, *, nodes=3, replication=2, **map_kwargs):
    """N running nodes + the cluster map routing to them."""
    services = {}
    for index in range(nodes):
        name = f"node-{index}"
        service = StorageService(
            group, RecordStore(root / name, group), name=name,
        )
        await service.start()
        services[name] = service
    cluster_map = ClusterMap(
        [ClusterNode(name=name, host=service.host, port=service.port)
         for name, service in services.items()],
        replication=replication, **map_kwargs,
    )
    return services, cluster_map


async def stop_fleet(services) -> None:
    for service in services.values():
        await service.stop()


def make_cluster(group, cluster_map, **kwargs):
    """A ClusterClient with short, test-friendly retry/timeout budgets."""
    kwargs.setdefault("role", "owner")
    kwargs.setdefault("name", "owner:alice")
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("max_attempts", 3)
    return ClusterClient(group, cluster_map, **kwargs)


@pytest.fixture()
def scenario(group):
    return Scenario(group)

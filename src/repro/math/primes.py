"""Primality testing and prime generation.

Used once at parameter-generation time (type-A pairing parameters need a
prime group order ``r`` and a prime base field ``p = h*r - 1``) and at
import time to re-verify the hard-coded presets.
"""

from __future__ import annotations

import random

from repro.errors import MathError

# Small primes for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

# Deterministic Miller-Rabin bases: sufficient for all n < 3.3e24; for
# larger n they act as 13 strong rounds, complemented by random rounds.
_DETERMINISTIC_BASES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int, d: int, s: int) -> bool:
    """One strong-pseudoprime test of ``n`` to base ``a``. True = passes."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_prime(n: int, rounds: int = 16, rng: random.Random = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic for ``n < 3.3e24``; probabilistic (error < 4^-rounds)
    beyond that. ``rng`` may be supplied for reproducible random bases.
    """
    if n < 2:
        return False
    for q in _SMALL_PRIMES:
        if n == q:
            return True
        if n % q == 0:
            return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _DETERMINISTIC_BASES:
        if not _miller_rabin_round(n, a, d, s):
            return False
    if n < 3317044064679887385961981:
        return True
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, a, d, s):
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """A uniformly chosen prime with exactly ``bits`` bits."""
    if bits < 2:
        raise MathError("primes need at least 2 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate

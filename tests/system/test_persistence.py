"""Server-state persistence: export, restore, keep working."""

import pytest

from repro.ec.params import TOY80
from repro.errors import StorageError
from repro.system.records import StoredComponent, StoredRecord
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=808)
    deployment.add_authority("hospital", ["doctor", "nurse"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "hospital", ["doctor"], "alice")
    deployment.upload(
        "alice", "r1",
        {
            "a": (b"alpha", "hospital:doctor"),
            "b": (b"beta", "hospital:doctor OR hospital:nurse"),
        },
    )
    deployment.upload(
        "alice", "r2", {"c": (b"gamma", "hospital:nurse")}
    )
    return deployment


class TestRecordRoundTrip:
    def test_component_roundtrip(self, system):
        group = system.group
        component = system.server.record("r1").component("a")
        revived = StoredComponent.from_bytes(group, component.to_bytes())
        assert revived.name == "a"
        assert revived.abe_ciphertext.c == component.abe_ciphertext.c
        assert (
            revived.data_ciphertext.to_bytes()
            == component.data_ciphertext.to_bytes()
        )

    def test_record_roundtrip(self, system):
        group = system.group
        record = system.server.record("r1")
        revived = StoredRecord.from_bytes(group, record.to_bytes())
        assert revived.record_id == "r1"
        assert revived.owner_id == "alice"
        assert set(revived.components) == {"a", "b"}

    def test_truncated_rejected(self, system):
        group = system.group
        record = system.server.record("r1")
        with pytest.raises(StorageError):
            StoredRecord.from_bytes(group, record.to_bytes()[:-4])
        with pytest.raises(StorageError):
            StoredComponent.from_bytes(
                group, record.component("a").to_bytes() + b"\x00"
            )


class TestServerStatePersistence:
    def test_export_import_preserves_reads(self, system):
        snapshot = system.server.export_state()
        # wipe and restore
        assert system.server.import_state(snapshot) == 2
        assert system.server.record_ids == {"r1", "r2"}
        assert system.read("bob", "r1", "a") == b"alpha"
        assert system.read("bob", "r1", "b") == b"beta"

    def test_restore_into_fresh_server(self, system):
        from repro.system.entities import ServerEntity

        snapshot = system.server.export_state()
        fresh = ServerEntity("cloud2", system.network)
        fresh.import_state(snapshot)
        assert fresh.record_ids == system.server.record_ids
        assert fresh.storage_bytes() == system.server.storage_bytes()
        # the ciphertext index is rebuilt: re-encryption still routes
        assert system.users["bob"].read(fresh, "r1", "a") == b"alpha"

    def test_reencryption_survives_restore(self, system):
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        snapshot = system.server.export_state()
        system.server.import_state(snapshot)
        system.revoke("hospital", "carol", ["doctor"])
        assert system.read("bob", "r1", "a") == b"alpha"

    def test_malformed_state_rejected(self, system):
        with pytest.raises(StorageError):
            system.server.import_state(b"\x00")
        with pytest.raises(StorageError):
            system.server.import_state(
                (5).to_bytes(4, "big") + b"\x00\x00\x00\x04abcd"
            )
        with pytest.raises(StorageError):
            system.server.import_state(
                system.server.export_state() + b"\x00"
            )

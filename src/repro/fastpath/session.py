"""Per-policy encryption sessions with an online/offline split.

A cloud-storage owner encrypts *many* data items under the *same*
policy (one policy per record class, thousands of records), yet the
cold :meth:`repro.core.owner.DataOwner.encrypt` re-derives everything —
parse, LSSS conversion, authority lookups, blinding product — per call,
and pays every `s`-dependent exponentiation on the critical path.

:class:`EncryptionSession` splits the work the way the online/offline
ABE literature does:

* **setup (once per policy × key-version)** — parse + LSSS matrix
  (memoized in :mod:`repro.policy.lsss`), the row→attribute public-key
  resolution, the ``∏ e(g,g)^{α_k}`` blinding product with its GT
  fixed-base table, and fixed-base tables for ``g`` and every involved
  ``PK_x``;
* **offline (per future ciphertext, message-independent)** — draw the
  share vector, compute ``C' = g^{βs}``, every LSSS row
  ``C_i = g^{r·λ_i}·PK_{ρ(i)}^{-βs}`` and the blinding power
  ``(∏ e(g,g)^{α_k})^s``, bundled into an :class:`OfflineBundle` pool;
* **online (per message)** — ONE GT multiplication
  ``C = m · blinding^s`` plus ledger bookkeeping.

In this scheme the *entire* ciphertext skeleton is message-independent,
so the online phase is constant-time in the policy size — the whole
Fig. 3/4 per-attribute cost moves off the request path.

Bundles can be refilled in the background on a
:class:`repro.parallel.pool.CryptoPool`; the session draws every scalar
from the owner's (seeded) group RNG up front and ships only the
deterministic group arithmetic to workers, so inline and pooled refills
produce bit-identical bundles.

**Revocation safety**: the session snapshots each involved authority's
key version at setup. Every :meth:`EncryptionSession.encrypt` re-checks
the snapshot against the owner's live key cache and raises
:class:`repro.errors.RevocationError` the moment any authority has
rolled forward — a stale session can never emit a ciphertext under a
revoked key version. :meth:`repro.core.owner.DataOwner.session_for`
keys its session cache the same way and transparently rebuilds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.attributes import authority_of, involved_authorities
from repro.core.ciphertext import Ciphertext
from repro.ec.batch_affine import batch_table_walks
from repro.ec.fixed_base import FixedBaseTable
from repro.errors import PolicyError, RevocationError, SchemeError
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.lsss import LsssMatrix, lsss_from_policy

#: Default number of bundles a refill tops the pool up to.
DEFAULT_POOL_TARGET = 16


@dataclass(frozen=True)
class OfflineBundle:
    """One precomputed, message-independent ciphertext skeleton."""

    s: int                 # the encryption exponent
    c_blind: GTElement     # (∏_k e(g,g)^{α_k})^s — C = m · c_blind
    c_prime: G1Element     # g^{βs}
    rows: tuple            # C_i per LSSS row, in row order


def _bundle_job(group: PairingGroup, blinding: GTElement,
                pk_elements: tuple, matrix_rows: tuple,
                beta: int, r_exp: int, scalars: tuple) -> OfflineBundle:
    """Compute one offline bundle from a pre-drawn scalar vector.

    Module-level (picklable by reference) and deterministic in its
    arguments, so inline and :class:`CryptoPool` worker execution give
    bit-identical bundles — the randomness is drawn by the session
    before dispatch, never inside a worker.
    """
    order = group.order
    vector = [value % order for value in scalars]
    s = vector[0]
    shares = [
        sum(m * v for m, v in zip(row, vector)) % order
        for row in matrix_rows
    ]
    c_blind = blinding ** s
    beta_s = beta * s % order
    neg_beta_s = -beta_s % order
    c_prime = group.g ** beta_s
    rows = tuple(
        group.multiexp_g1(
            (group.g, pk_x), (r_exp * lam % order, neg_beta_s)
        )
        for pk_x, lam in zip(pk_elements, shares)
    )
    return OfflineBundle(s=s, c_blind=c_blind, c_prime=c_prime, rows=rows)


class EncryptionSession:
    """Amortized Encrypt for one (policy, authority-key-version) pair.

    Create via :meth:`repro.core.owner.DataOwner.session_for` (which
    caches and invalidates sessions) or directly::

        session = EncryptionSession(owner, "a:x AND b:y")
        session.refill(32)                  # offline, off the request path
        ct = session.encrypt(message)       # online: one GT multiplication

    The session holds no secrets beyond what the owner already holds;
    bundles embed ``s``-dependent elements only, never ``β`` or ``r``.
    """

    def __init__(self, owner, policy, *, threshold_method: str = "expand",
                 require_injective_rho: bool = True, pool=None,
                 matrix: LsssMatrix = None):
        self.owner = owner
        self.group: PairingGroup = owner.group
        self.pool = pool
        if matrix is None:
            matrix = lsss_from_policy(policy, threshold_method=threshold_method)
        if require_injective_rho and not matrix.is_injective():
            raise PolicyError(
                "policy maps one attribute to several LSSS rows; the paper "
                "limits rho to be injective (pass require_injective_rho="
                "False to override)"
            )
        involved = involved_authorities(matrix.row_labels)
        missing = involved - owner.known_authorities()
        if missing:
            raise SchemeError(
                f"owner {owner.owner_id!r} has no public keys for "
                f"authorities {sorted(missing)}"
            )
        self.matrix = matrix
        self.involved = involved
        #: aid -> authority key version this session was built against.
        self.versions = {
            aid: owner.authority_version(aid) for aid in involved
        }
        # Setup-phase precomputation: blinding product (+ its GT table),
        # generator table, and one fixed-base table per row base.
        self.blinding = owner.authority_blinding(involved)
        self.group.generator_table()
        pk_elements = []
        for label in matrix.row_labels:
            pk_x = owner.public_attribute_key(label)
            self.group.register_g1_base(pk_x)
            pk_elements.append(pk_x)
        self._pk_elements = tuple(pk_elements)
        #: Window-8 generator table, composed lazily from the group's
        #: window-4 table on the first batch refill (offline-phase
        #: work, amortized across every later refill). The generator
        #: backs 11 of the 21 walks per bundle (C' plus every row's
        #: ``g^{r·λ_i}`` leg), so halving its digit count pays for the
        #: one-inversion build within a fraction of one refill.
        self._g_table_wide = None
        self._bundles = deque()
        self._pending = []   # in-flight futures from refill_background
        self.stats = {"offline": 0, "online": 0, "pool_misses": 0}

    # -- freshness ---------------------------------------------------------

    def is_current(self) -> bool:
        """True iff no involved authority has rolled its key version."""
        try:
            return all(
                self.owner.authority_version(aid) == version
                for aid, version in self.versions.items()
            )
        except RevocationError:
            return False

    def _check_current(self) -> None:
        for aid, version in self.versions.items():
            live = self.owner.authority_version(aid)
            if live != version:
                raise RevocationError(
                    f"encryption session is stale: authority {aid!r} rolled "
                    f"from version {version} to {live}; create a fresh "
                    f"session (DataOwner.session_for does this transparently)"
                )

    # -- offline phase -----------------------------------------------------

    @property
    def pool_size(self) -> int:
        """Bundles ready for immediate online consumption."""
        return len(self._bundles)

    def _draw_scalars(self) -> tuple:
        """``(s, y_2, …, y_n)`` — the LSSS share vector for one bundle.

        ``s`` is nonzero (matching ``random_scalar``); the padding
        coordinates come from one batched RNG call.
        """
        group = self.group
        s = group.random_scalar()
        ys = group.random_scalars(self.matrix.n_cols - 1, nonzero=False)
        return tuple([s] + ys)

    def _job_args(self) -> tuple:
        return (
            self.group, self.blinding, self._pk_elements,
            self.matrix.rows, self.owner.master_key.beta,
            self.owner.master_key.r_exp, self._draw_scalars(),
        )

    def refill(self, count: int = DEFAULT_POOL_TARGET) -> int:
        """Top the offline pool up to ``count`` bundles, inline.

        Multi-bundle refills run as ONE shared-randomness batch build:
        every fixed-base table walk of the whole refill (each bundle's
        ``C'`` plus a two-leg walk per LSSS row) advances
        level-synchronized through
        :func:`repro.ec.batch_affine.batch_table_walks`, replacing
        ~11M Jacobian mixed additions with ~7M batched affine ones;
        generator legs ride the session's lazily-built window-8 table
        (:meth:`repro.ec.fixed_base.FixedBaseTable.doubled_window`).
        Scalars are drawn in the exact per-bundle order of
        :func:`_bundle_job`, and the affine group sums are the same
        points, so the bundles — and the ciphertexts built from them —
        are bit-identical to the sequential path.

        Returns the number of bundles computed. Raises
        :class:`RevocationError` instead of precomputing under a stale
        key version.
        """
        self._check_current()
        self._harvest()
        need = count - len(self._bundles) - len(self._pending)
        if need <= 0:
            return 0
        batch = self._refill_batch(need)
        if batch is None:  # a row base lost its table (cache eviction)
            computed = 0
            while len(self._bundles) + len(self._pending) < count:
                self._bundles.append(_bundle_job(*self._job_args()))
                computed += 1
            self.stats["offline"] += computed
            return computed
        self._bundles.extend(batch)
        self.stats["offline"] += need
        return need

    def _refill_batch(self, count: int):
        """``count`` bundles via one level-synchronized batch build.

        Returns ``None`` when a row base has no fixed-base table (the
        group's bounded table cache evicted it), in which case the
        caller falls back to per-bundle jobs.
        """
        group = self.group
        g_table = self._g_table_wide
        if g_table is None:
            g_table = FixedBaseTable.doubled_window(group.generator_table())
            self._g_table_wide = g_table
        pk_tables = [
            group._g1_table_for(pk.point) for pk in self._pk_elements
        ]
        if any(table is None for table in pk_tables):
            return None
        order = group.order
        matrix_rows = self.matrix.rows
        n_rows = len(matrix_rows)
        beta = self.owner.master_key.beta
        r_exp = self.owner.master_key.r_exp
        # All randomness first, in _bundle_job's per-bundle draw order.
        drawn = [self._draw_scalars() for _ in range(count)]
        walks = []
        meta = []
        for scalars in drawn:
            vector = [value % order for value in scalars]
            s = vector[0]
            shares = [
                sum(m * v for m, v in zip(row, vector)) % order
                for row in matrix_rows
            ]
            beta_s = beta * s % order
            neg_beta_s = -beta_s % order
            walks.append(((g_table, beta_s),))  # C'
            for pk_table, lam in zip(pk_tables, shares):
                walks.append((
                    (g_table, r_exp * lam % order),
                    (pk_table, neg_beta_s),
                ))
            meta.append((s, shares))
        points = batch_table_walks(group.curve, walks)
        # Mirror the sequential path's counters: one g^x per C' plus a
        # 2-element multiexp per row (multiexp counts its input size).
        group.counter.g1_exponentiations += count * (1 + 2 * n_rows)
        bundles = []
        index = 0
        for s, shares in meta:
            c_blind = self.blinding ** s  # counts the GT exponentiation
            c_prime = G1Element(group, points[index])
            index += 1
            rows = tuple(
                G1Element(group, points[index + offset])
                for offset in range(n_rows)
            )
            index += n_rows
            bundles.append(OfflineBundle(
                s=s, c_blind=c_blind, c_prime=c_prime, rows=rows,
            ))
        return bundles

    def refill_background(self, count: int = DEFAULT_POOL_TARGET) -> int:
        """Top the pool up to ``count`` bundles on the crypto pool.

        With no pool (or an inline ``workers=0`` pool) this is
        :meth:`refill`; otherwise bundle jobs are submitted to the
        pool's executor and harvested lazily by later
        :meth:`encrypt`/:meth:`refill` calls, so refills overlap the
        caller's I/O. Returns the number of bundles scheduled.
        """
        if self.pool is None or self.pool.inline:
            return self.refill(count)
        self._check_current()
        self._harvest()
        scheduled = 0
        while len(self._bundles) + len(self._pending) < count:
            self._pending.append(
                self.pool.executor.submit(_bundle_job, *self._job_args())
            )
            scheduled += 1
        self.stats["offline"] += scheduled
        return scheduled

    def _harvest(self, need_one: bool = False) -> None:
        """Fold completed background bundles into the ready pool."""
        if not self._pending:
            return
        if need_one and not self._bundles:
            # Block on the oldest in-flight bundle rather than paying
            # a full inline recompute while one is nearly done.
            self._bundles.append(self._pending.pop(0).result())
        still_pending = []
        for future in self._pending:
            if future.done():
                self._bundles.append(future.result())
            else:
                still_pending.append(future)
        self._pending = still_pending

    def _next_bundle(self) -> OfflineBundle:
        self._harvest(need_one=True)
        if self._bundles:
            return self._bundles.popleft()
        self.stats["pool_misses"] += 1
        return _bundle_job(*self._job_args())

    # -- online phase ------------------------------------------------------

    def encrypt(self, message: GTElement, *,
                ciphertext_id: str = None) -> Ciphertext:
        """Encrypt a GT message using one precomputed bundle.

        Online cost: one GT multiplication (``C = m · blinding^s``)
        plus ledger bookkeeping — constant in the policy size. An empty
        pool falls back to computing a bundle inline (identical
        output, cold-path latency). Raises
        :class:`repro.errors.RevocationError` if any involved
        authority's key version rolled since the session was built.
        """
        self._check_current()
        bundle = self._next_bundle()
        c = message * bundle.c_blind
        ciphertext_id = self.owner.note_encryption(
            ciphertext_id, bundle.s, str(self.matrix.policy),
            dict(self.versions),
        )
        self.stats["online"] += 1
        return Ciphertext(
            ciphertext_id=ciphertext_id,
            owner_id=self.owner.owner_id,
            c=c,
            c_prime=bundle.c_prime,
            c_rows=bundle.rows,
            matrix=self.matrix,
            involved_aids=self.involved,
            versions=dict(self.versions),
        )

"""The five entity types of the system model (Fig. 1), as simulation actors.

Each entity wraps its cryptographic state (from :mod:`repro.core`) and
talks to the others exclusively through the byte-metered
:class:`repro.system.network.Network`, so every protocol flow the paper
draws as an arrow in Fig. 1 shows up in the communication-cost counters.

The cloud server honors the paper's threat model: it stores records,
serves downloads and runs ReEncrypt, but its code path never receives a
decryption key or a content key — tests assert this stays true.
"""

from __future__ import annotations

from repro.core.authority import AttributeAuthority, apply_update_key
from repro.core.ca import CertificateAuthority
from repro.core.decrypt import decrypt as abe_decrypt
from repro.core.keys import UpdateKey, UserPublicKey
from repro.core.owner import DataOwner
from repro.core.reencrypt import reencrypt as abe_reencrypt
from repro.crypto import symmetric
from repro.crypto.hybrid import open_sealed, seal
from repro.errors import AuthorizationError, SchemeError, StorageError
from repro.system.network import (
    ROLE_AA,
    ROLE_CA,
    ROLE_OWNER,
    ROLE_SERVER,
    ROLE_USER,
    Network,
)
from repro.system.records import StoredComponent, StoredRecord


class Entity:
    """Base simulation actor: a name, a role, and the shared network."""

    role = "entity"

    def __init__(self, name: str, network: Network):
        self.name = name
        self.network = network

    def send(self, recipient: "Entity", kind: str, payload):
        """Meter and deliver a payload to another entity."""
        return self.network.send(self, recipient, kind, payload)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CaEntity(Entity):
    """The certificate authority actor."""

    role = ROLE_CA

    def __init__(self, name: str, network: Network, core: CertificateAuthority):
        super().__init__(name, network)
        self.core = core

    def register_user(self, user: "UserEntity") -> UserPublicKey:
        public_key = self.core.register_user(user.uid)
        self.send(user, "user-public-key", public_key)
        user.receive_public_key(public_key)
        return public_key

    def register_authority(self, authority: "AuthorityEntity") -> str:
        return self.core.register_authority(authority.aid)

    def register_owner(self, owner: "OwnerEntity") -> str:
        return self.core.register_owner(owner.owner_id)


class AuthorityEntity(Entity):
    """One attribute authority actor wrapping its crypto state."""

    role = ROLE_AA

    def __init__(self, name: str, network: Network, core: AttributeAuthority):
        super().__init__(name, network)
        self.core = core

    @property
    def aid(self) -> str:
        return self.core.aid

    def publish_to_owner(self, owner: "OwnerEntity") -> None:
        """Send the owner this AA's public key material (AA→Owner traffic)."""
        authority_public = self.core.authority_public_key()
        attribute_public = self.core.public_attribute_keys()
        self.send(owner, "authority-public-key", authority_public)
        self.send(owner, "public-attribute-keys", attribute_public)
        owner.core.learn_authority(authority_public, attribute_public)

    def accept_owner_secret(self, owner: "OwnerEntity") -> None:
        """Receive ``SK_o`` from the owner (Owner→AA, secure channel)."""
        secret = owner.send(self, "owner-secret-key", owner.core.secret_key)
        self.core.register_owner(secret)

    def issue_key(self, user: "UserEntity", attributes, owner_id: str):
        """KeyGen and delivery of ``SK_{UID,AID}`` (AA→User traffic)."""
        secret_key = self.core.keygen(user.public_key, attributes, owner_id)
        self.send(user, "user-secret-key", secret_key)
        user.receive_secret_key(secret_key)
        return secret_key


class OwnerEntity(Entity):
    """A data owner actor: hybrid encryption, uploads, revocation updates."""

    role = ROLE_OWNER

    def __init__(self, name: str, network: Network, core: DataOwner):
        super().__init__(name, network)
        self.core = core

    @property
    def owner_id(self) -> str:
        return self.core.owner_id

    def upload(self, server: "ServerEntity", record_id: str,
               components: dict) -> StoredRecord:
        """Encrypt and upload a record (Fig. 2 layout; Owner→Server traffic).

        ``components`` maps a component name to ``(plaintext_bytes,
        policy)``. Each component gets a fresh GT session element,
        CP-ABE-encrypted under its policy, and a derived content key for
        the symmetric body.
        """
        group = self.core.group
        stored = {}
        for component_name, (plaintext, policy) in components.items():
            ciphertext_id = f"{record_id}/{component_name}"
            session = group.random_gt()
            abe_ciphertext = self.core.encrypt(
                session, policy, ciphertext_id=ciphertext_id
            )
            stored[component_name] = StoredComponent(
                name=component_name,
                abe_ciphertext=abe_ciphertext,
                data_ciphertext=seal(session, ciphertext_id, plaintext),
            )
        record = StoredRecord(
            record_id=record_id, owner_id=self.owner_id, components=stored
        )
        self.send(server, "store-record", record)
        server.store(record)
        return record

    def read_own(self, server: "ServerEntity", record_id: str,
                 component_name: str) -> bytes:
        """Owner reads its own data back — no ABE keys involved.

        Uses the ledger's encryption exponent to strip the CP-ABE
        blinding directly (see :meth:`DataOwner.recover_session`).
        """
        self.send(server, "read-request", f"{record_id}/{component_name}")
        component = server.fetch_component(self, record_id, component_name)
        ciphertext = component.abe_ciphertext
        if ciphertext.owner_id != self.owner_id:
            raise SchemeError("not this owner's record")
        blinding = self.core.recover_session(ciphertext.ciphertext_id)
        session = ciphertext.c / blinding
        return open_sealed(
            session, ciphertext.ciphertext_id, component.data_ciphertext
        )

    def delete_record(self, server: "ServerEntity", record_id: str) -> None:
        """Remove a record from the server and retire its ledger entries."""
        record = server.record(record_id)
        if record.owner_id != self.owner_id:
            raise SchemeError(
                f"record {record_id!r} belongs to {record.owner_id!r}"
            )
        self.send(server, "delete-record", record_id)
        server.delete_record(record_id)
        for component in record.components.values():
            ciphertext_id = component.abe_ciphertext.ciphertext_id
            if (
                ciphertext_id in self.core.ciphertext_ids
                and not self.core.is_retired(ciphertext_id)
            ):
                self.core.retire_record(ciphertext_id)

    def update_component(self, server: "ServerEntity", record_id: str,
                         component_name: str, plaintext: bytes,
                         policy) -> StoredComponent:
        """Replace one component's data (and optionally its policy).

        A fresh session element and content key are drawn — content keys
        are never reused across versions of the data — and the server
        swaps the component in place. The old ciphertext id is retired
        and a versioned id minted, keeping the owner's ledger append-only.
        """
        group = self.core.group
        existing = server.record(record_id)
        if existing.owner_id != self.owner_id:
            raise SchemeError(
                f"record {record_id!r} belongs to {existing.owner_id!r}"
            )
        existing.component(component_name)  # raises if absent
        suffix = 0
        while True:
            ciphertext_id = f"{record_id}/{component_name}#v{suffix}"
            if ciphertext_id not in self.core.ciphertext_ids:
                break
            suffix += 1
        session = group.random_gt()
        abe_ciphertext = self.core.encrypt(
            session, policy, ciphertext_id=ciphertext_id
        )
        component = StoredComponent(
            name=component_name,
            abe_ciphertext=abe_ciphertext,
            data_ciphertext=seal(session, ciphertext_id, plaintext),
        )
        old_id = existing.component(component_name).abe_ciphertext.ciphertext_id
        if old_id in self.core.ciphertext_ids:
            self.core.retire_record(old_id)
        self.send(server, "update-component", component)
        server.replace_component(record_id, component)
        return component

    def push_revocation_updates(self, server: "ServerEntity",
                                update_key: UpdateKey,
                                include_uk2: bool = True) -> list:
        """Owner side of re-encryption (Section V-C, Phase 2).

        For every owned ciphertext involving the re-keyed authority:
        compute the update information from the ledger, send it with the
        update key to the server, and let the server re-encrypt. Then
        roll the owner's cached public keys forward. Returns the list of
        updated ciphertext ids.

        ``include_uk2=False`` models the hardened protocol where the
        server only ever sees ``UK1`` (ReEncrypt needs nothing more).
        """
        from repro.core.revocation import strip_uk2

        server_key = update_key if include_uk2 else strip_uk2(update_key)
        updated = []
        for ciphertext_id in self.core.records_involving(update_key.aid):
            record = self.core.record(ciphertext_id)
            if record.versions[update_key.aid] != update_key.from_version:
                continue  # already past this version (defensive)
            update_info = self.core.update_info_for_record(
                ciphertext_id, update_key
            )
            self.send(server, "update-key", server_key)
            self.send(server, "update-info", update_info)
            server.reencrypt(ciphertext_id, server_key, update_info)
            self.core.note_reencrypted(ciphertext_id, update_key)
            updated.append(ciphertext_id)
        self.core.apply_update_key(update_key)
        return updated


class UserEntity(Entity):
    """A data consumer actor: holds keys, downloads and decrypts."""

    role = ROLE_USER

    def __init__(self, name: str, network: Network, uid: str):
        super().__init__(name, network)
        self.uid = uid
        self.public_key = None
        self._secret_keys = {}  # owner id -> {aid -> UserSecretKey}

    def receive_public_key(self, public_key: UserPublicKey) -> None:
        if public_key.uid != self.uid:
            raise SchemeError("received a public key for a different UID")
        self.public_key = public_key

    def receive_secret_key(self, secret_key) -> None:
        if secret_key.uid != self.uid:
            raise SchemeError("received a secret key for a different UID")
        self._secret_keys.setdefault(secret_key.owner_id, {})[
            secret_key.aid
        ] = secret_key

    def secret_keys_for(self, owner_id: str) -> dict:
        return dict(self._secret_keys.get(owner_id, {}))

    def has_keys_from(self, aid: str) -> bool:
        return any(aid in keys for keys in self._secret_keys.values())

    def apply_update_key(self, update_key: UpdateKey) -> None:
        """Roll every matching key forward (non-revoked user path)."""
        for owner_id, keys in self._secret_keys.items():
            key = keys.get(update_key.aid)
            if key is not None and key.version == update_key.from_version:
                if owner_id in update_key.uk1:
                    keys[update_key.aid] = apply_update_key(key, update_key)

    def drop_keys(self, aid: str, owner_id: str) -> None:
        """Forget a key (revoked user whose attribute set became empty)."""
        self._secret_keys.get(owner_id, {}).pop(aid, None)

    def read(self, server: "ServerEntity", record_id: str,
             component_name: str) -> bytes:
        """Download one component and decrypt it end-to-end.

        Raises :class:`PolicyNotSatisfiedError` (wrong attributes),
        :class:`SchemeError` (missing/stale keys) or
        :class:`AuthorizationError` via those, mirroring real failures.
        """
        group = self.network.group
        self.send(server, "read-request", f"{record_id}/{component_name}")
        component = server.fetch_component(self, record_id, component_name)
        abe_ciphertext = component.abe_ciphertext
        keys = self._secret_keys.get(abe_ciphertext.owner_id)
        if not keys:
            raise AuthorizationError(
                f"user {self.uid!r} holds no keys scoped to owner "
                f"{abe_ciphertext.owner_id!r}"
            )
        session = abe_decrypt(group, abe_ciphertext, self.public_key, keys)
        return open_sealed(
            session, abe_ciphertext.ciphertext_id, component.data_ciphertext
        )


class ServerEntity(Entity):
    """The honest-but-curious cloud server: storage plus proxy ReEncrypt."""

    role = ROLE_SERVER

    def __init__(self, name: str, network: Network):
        super().__init__(name, network)
        self._records = {}          # record id -> StoredRecord
        self._ciphertext_index = {}  # ciphertext id -> (record id, component)

    def store(self, record: StoredRecord, replace: bool = False) -> None:
        if record.record_id in self._records and not replace:
            raise StorageError(
                f"record {record.record_id!r} already exists "
                f"(pass replace=True to overwrite)"
            )
        self._records[record.record_id] = record
        for name, component in record.components.items():
            self._ciphertext_index[
                component.abe_ciphertext.ciphertext_id
            ] = (record.record_id, name)

    def record(self, record_id: str) -> StoredRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise StorageError(f"no record {record_id!r}") from None

    @property
    def record_ids(self) -> frozenset:
        return frozenset(self._records)

    def fetch_component(self, user: UserEntity, record_id: str,
                        component_name: str) -> StoredComponent:
        """Serve a download (Server→User traffic)."""
        component = self.record(record_id).component(component_name)
        self.send(user, "component-download", component)
        return component

    def delete_record(self, record_id: str) -> None:
        """Drop a record and its ciphertext index entries."""
        record = self.record(record_id)
        for component in record.components.values():
            self._ciphertext_index.pop(
                component.abe_ciphertext.ciphertext_id, None
            )
        del self._records[record_id]

    def replace_component(self, record_id: str,
                          component: StoredComponent) -> None:
        """Swap one component (owner-driven data update)."""
        record = self.record(record_id)
        old = record.component(component.name)
        self._ciphertext_index.pop(
            old.abe_ciphertext.ciphertext_id, None
        )
        self._records[record_id] = record.with_component(component)
        self._ciphertext_index[
            component.abe_ciphertext.ciphertext_id
        ] = (record_id, component.name)

    def reencrypt(self, ciphertext_id: str, update_key: UpdateKey,
                  update_info) -> None:
        """Run ReEncrypt on one stored ciphertext, in place."""
        try:
            record_id, component_name = self._ciphertext_index[ciphertext_id]
        except KeyError:
            raise StorageError(f"no ciphertext {ciphertext_id!r}") from None
        record = self._records[record_id]
        component = record.components[component_name]
        updated = abe_reencrypt(
            self.network.group, component.abe_ciphertext, update_key,
            update_info
        )
        self._records[record_id] = record.with_component(
            StoredComponent(
                name=component_name,
                abe_ciphertext=updated,
                data_ciphertext=component.data_ciphertext,
            )
        )

    def storage_bytes(self) -> int:
        """Total stored payload — the Table III 'server' row, measured."""
        return sum(
            record.payload_size_bytes(self.network.group)
            for record in self._records.values()
        )

    # -- persistence -----------------------------------------------------------

    def export_state(self) -> bytes:
        """Serialize every stored record (server restart / migration)."""
        blobs = [
            self._records[record_id].to_bytes()
            for record_id in sorted(self._records)
        ]
        out = len(blobs).to_bytes(4, "big")
        for blob in blobs:
            out += len(blob).to_bytes(4, "big") + blob
        return out

    def import_state(self, data: bytes) -> int:
        """Restore records exported by :meth:`export_state`.

        Replaces the in-memory store; returns the record count. The
        ciphertext index is rebuilt from the decoded records.
        """
        if len(data) < 4:
            raise StorageError("truncated server state")
        count = int.from_bytes(data[:4], "big")
        offset = 4
        records = []
        for _ in range(count):
            if offset + 4 > len(data):
                raise StorageError("truncated server state")
            length = int.from_bytes(data[offset:offset + 4], "big")
            offset += 4
            if offset + length > len(data):
                raise StorageError("truncated server state")
            records.append(
                StoredRecord.from_bytes(
                    self.network.group, data[offset:offset + length]
                )
            )
            offset += length
        if offset != len(data):
            raise StorageError("trailing bytes after server state")
        self._records = {}
        self._ciphertext_index = {}
        for record in records:
            self.store(record)
        return len(records)

"""The Section III-B security game, executable.

The paper defines security through a game between a challenger and an
adversary who may *statically corrupt* a set of authorities and then
*adaptively* query user secret keys: Setup → Secret Key Query Phase 1 →
Challenge → Secret Key Query Phase 2 → Guess. The challenge access
structure (A*, ρ) must satisfy the span constraint: with ``V`` the rows
labelled by corrupted authorities' attributes and ``V_UID`` the rows
labelled by attributes queried for a user, ``span(V ∪ V_UID)`` must not
contain ``(1, 0, …, 0)`` for any queried UID.

This module is not a proof — it is the *experiment*: a faithful
challenger that enforces exactly those constraints (rejecting illegal
adversaries), hands corrupted authorities' secret state to the
adversary, and lets you measure an adversary's empirical advantage.
Tests run a guessing adversary (advantage ≈ 0) and verify that every
way of cheating the constraints is caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.ciphertext import Ciphertext
from repro.core.keys import UserSecretKey, VersionKey
from repro.core.owner import DataOwner
from repro.errors import SchemeError
from repro.math import linalg
from repro.pairing.group import GTElement, PairingGroup
from repro.policy.lsss import lsss_from_policy


class GameError(SchemeError):
    """The adversary violated the rules of the security game."""


@dataclass
class CorruptedAuthorityView:
    """Everything a corrupted authority's internal state exposes.

    Note the structural consequence the game inherits from the scheme:
    authorities hold every registered owner's ``SK_o``, so corrupting one
    authority also leaks those (the challenge constraint accounts for
    corrupted-authority rows precisely because the adversary can mint
    keys for them at will).
    """

    version_key: VersionKey
    owner_secrets: dict
    attributes: frozenset


@dataclass
class SecurityGame:
    """Challenger state for one run of the game."""

    group: PairingGroup
    owner: DataOwner
    authorities: dict                  # aid -> AttributeAuthority
    corrupted: frozenset               # AIDs under adversarial control
    _ca: CertificateAuthority = None
    _queries: dict = field(default_factory=dict)   # uid -> set(qualified)
    _user_public: dict = field(default_factory=dict)
    _challenge_matrix: object = None
    _challenge_bit: int = None
    _finished: bool = False

    # -- construction ------------------------------------------------------------

    @classmethod
    def setup(cls, params, authority_layout: dict, corrupted,
              seed=None) -> "SecurityGame":
        """Global Setup: build the system and corrupt the chosen AAs.

        ``authority_layout`` maps AID → iterable of attribute names;
        ``corrupted`` is the adversary's statically chosen subset S_A'.
        """
        corrupted = frozenset(corrupted)
        unknown = corrupted - set(authority_layout)
        if unknown:
            raise GameError(f"cannot corrupt unknown authorities {sorted(unknown)}")
        if corrupted == set(authority_layout):
            raise GameError("at least one authority must remain honest")
        group = PairingGroup(params, seed=seed)
        ca = CertificateAuthority(group)
        authorities = {}
        for aid, attributes in authority_layout.items():
            ca.register_authority(aid)
            authorities[aid] = AttributeAuthority(group, aid, attributes)
        ca.register_owner("owner")
        owner = DataOwner(group, "owner")
        for authority in authorities.values():
            authority.register_owner(owner.secret_key)
            owner.learn_authority(
                authority.authority_public_key(),
                authority.public_attribute_keys(),
            )
        return cls(
            group=group,
            owner=owner,
            authorities=authorities,
            corrupted=corrupted,
            _ca=ca,
        )

    # -- what the adversary receives at setup ----------------------------------------

    def public_view(self) -> dict:
        """Public keys of every authority (honest and corrupted)."""
        return {
            aid: (
                authority.authority_public_key(),
                authority.public_attribute_keys(),
            )
            for aid, authority in self.authorities.items()
        }

    def corrupted_view(self) -> dict:
        """Secret state of the corrupted authorities."""
        view = {}
        for aid in self.corrupted:
            authority = self.authorities[aid]
            view[aid] = CorruptedAuthorityView(
                version_key=authority.version_key(),
                owner_secrets={"owner": self.owner.secret_key},
                attributes=authority.attributes,
            )
        return view

    # -- key queries ------------------------------------------------------------------

    def _corrupted_labels(self, matrix) -> list:
        return [
            index for index, label in enumerate(matrix.row_labels)
            if label.split(":", 1)[0] in self.corrupted
        ]

    def _violates_constraint(self, matrix, queried_qualified) -> bool:
        """span(V ∪ V_UID) ∋ (1,0,…,0)?"""
        rows = []
        for index, label in enumerate(matrix.row_labels):
            aid = label.split(":", 1)[0]
            if aid in self.corrupted or label in queried_qualified:
                rows.append(list(matrix.rows[index]))
        if not rows:
            return False
        target = [1] + [0] * (matrix.n_cols - 1)
        return linalg.in_span(rows, target, self.group.order)

    def secret_key_query(self, uid: str, aid: str,
                         attributes) -> UserSecretKey:
        """Adaptive key query (Phases 1 and 2).

        Queries to corrupted authorities are pointless (the adversary
        holds their state) and rejected for game hygiene; queries that
        would let the combined key material decrypt the challenge are
        rejected per the game definition.
        """
        if self._finished:
            raise GameError("the game is over")
        if aid in self.corrupted:
            raise GameError(
                f"authority {aid!r} is corrupted; generate the key yourself"
            )
        authority = self.authorities.get(aid)
        if authority is None:
            raise GameError(f"unknown authority {aid!r}")
        if uid not in self._user_public:
            self._user_public[uid] = self._ca.register_user(uid)
        prospective = set(self._queries.get(uid, set()))
        prospective.update(
            authority.qualified(name) for name in attributes
        )
        if self._challenge_matrix is not None and self._violates_constraint(
            self._challenge_matrix, prospective
        ):
            raise GameError(
                "query rejected: the requested keys (with corrupted "
                "authorities) would decrypt the challenge"
            )
        key = authority.keygen(self._user_public[uid], attributes, "owner")
        self._queries[uid] = prospective
        return key

    def user_public_key(self, uid: str):
        if uid not in self._user_public:
            self._user_public[uid] = self._ca.register_user(uid)
        return self._user_public[uid]

    # -- challenge ----------------------------------------------------------------------

    def challenge(self, message0: GTElement, message1: GTElement,
                  policy) -> Ciphertext:
        """Flip the coin and encrypt one of the two messages."""
        if self._challenge_matrix is not None:
            raise GameError("challenge already issued")
        matrix = lsss_from_policy(policy)
        # The structure must not be decryptable by corrupted rows alone
        # or by any prior query set.
        for uid, queried in [("", set())] + list(self._queries.items()):
            if self._violates_constraint(matrix, queried):
                raise GameError(
                    "illegal challenge: the access structure is satisfied "
                    f"by corrupted authorities plus queries of {uid!r}"
                    if uid else
                    "illegal challenge: the access structure is satisfied "
                    "by corrupted authorities alone"
                )
        self._challenge_matrix = matrix
        self._challenge_bit = self.group.rng.randrange(2)
        chosen = message1 if self._challenge_bit else message0
        return self.owner.encrypt(chosen, policy)

    def guess(self, bit: int) -> bool:
        """Phase Guess: returns whether the adversary won this run."""
        if self._challenge_matrix is None:
            raise GameError("no challenge was issued")
        if self._finished:
            raise GameError("the game is over")
        self._finished = True
        return int(bit) == self._challenge_bit


def empirical_advantage(params, adversary, trials: int, seed: int = 0,
                        **setup_kwargs) -> float:
    """Run ``adversary(game, trial_index) -> bit`` many times.

    Returns ``|wins/trials - 1/2|`` — the empirical advantage. Each trial
    gets a fresh challenger seeded deterministically from ``seed``.
    """
    wins = 0
    for trial in range(trials):
        game = SecurityGame.setup(params, seed=seed * 1_000_003 + trial,
                                  **setup_kwargs)
        if game.guess(adversary(game, trial)):
            wins += 1
    return abs(wins / trials - 0.5)

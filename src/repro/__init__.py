"""repro — reproduction of Yang & Jia (ICDCS 2012).

Multi-authority ciphertext-policy attribute-based encryption (CP-ABE)
access control for cloud storage, with efficient server-side attribute
revocation, plus the baselines and the simulated cloud-storage substrate
the paper's evaluation depends on.

Public entry points:

* :mod:`repro.pairing` — bilinear pairing groups (type-A curves).
* :mod:`repro.policy` — access-policy language and LSSS machinery.
* :mod:`repro.core` — the paper's multi-authority access-control scheme.
* :mod:`repro.baselines` — Lewko-Waters, BSW, and Hur-Noh comparators.
* :mod:`repro.system` — the simulated cloud-storage deployment (Fig. 1).
* :mod:`repro.analysis` — cost models regenerating Tables I-IV.
"""

__version__ = "1.0.0"

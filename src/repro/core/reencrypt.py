"""Server-side proxy re-encryption (Section V-C, Phase 2).

The cloud server receives the update key ``UK = (UK1, UK2)`` and the
owner's update information ``UI`` and rolls a ciphertext forward::

    C̃   = C · e(UK1_owner, C')           # folds (α̃-α)·s into the blinding
    C̃_i = C_i · UI_{ρ(i)}   if ρ(i) is managed by the re-keyed authority
    C̃_i = C_i               otherwise

Only the rows touching the revoked authority change — "our method only
need to re-encrypt part of the ciphertext", which is what the ablation
benchmark quantifies against re-encrypting every row. The server never
decrypts: both inputs are update tokens, not keys.
"""

from __future__ import annotations

from repro.core.attributes import authority_of
from repro.core.ciphertext import Ciphertext
from repro.core.keys import CiphertextUpdateInfo, UpdateKey
from repro.errors import RevocationError
from repro.pairing.group import PairingGroup


def check_reencrypt_inputs(ciphertext: Ciphertext, update_key: UpdateKey,
                           update_info: CiphertextUpdateInfo):
    """Validate one (ciphertext, UK, UI) triple; returns ``UK1_owner``.

    Shared by the sequential path and :mod:`repro.parallel.batch` so both
    reject exactly the same inputs with exactly the same errors.
    """
    aid = update_key.aid
    if update_info.aid != aid:
        raise RevocationError("update key and update information disagree on AID")
    if update_info.ciphertext_id != ciphertext.ciphertext_id:
        raise RevocationError(
            f"update information targets {update_info.ciphertext_id!r}, "
            f"not {ciphertext.ciphertext_id!r}"
        )
    if aid not in ciphertext.involved_aids:
        raise RevocationError(
            f"authority {aid!r} is not involved in this ciphertext"
        )
    if ciphertext.version_of(aid) != update_key.from_version:
        raise RevocationError(
            f"ciphertext at version {ciphertext.version_of(aid)} for {aid!r}; "
            f"update key expects {update_key.from_version}"
        )
    if (update_info.from_version, update_info.to_version) != (
        update_key.from_version, update_key.to_version
    ):
        raise RevocationError("update key and update information version mismatch")
    uk1 = update_key.uk1.get(ciphertext.owner_id)
    if uk1 is None:
        raise RevocationError(
            f"update key carries no UK1 for owner {ciphertext.owner_id!r}"
        )
    return uk1


def apply_update(ciphertext: Ciphertext, update_key: UpdateKey,
                 update_info: CiphertextUpdateInfo,
                 pairing_factor) -> Ciphertext:
    """Fold a precomputed ``e(UK1_owner, C')`` into a checked ciphertext.

    ``pairing_factor`` is the one expensive input; computing it once per
    owner (batched, with prepared Miller lines) is the whole point of
    :func:`repro.parallel.batch.reencrypt_batch` — and because this
    function is shared, the batch output is bit-identical to the
    sequential one.
    """
    aid = update_key.aid
    new_c = ciphertext.c * pairing_factor
    new_rows = []
    for index, label in enumerate(ciphertext.matrix.row_labels):
        if authority_of(label) == aid:
            try:
                factor = update_info.elements[label]
            except KeyError:
                raise RevocationError(
                    f"update information is missing attribute {label!r}"
                ) from None
            new_rows.append(ciphertext.c_rows[index] * factor)
        else:
            new_rows.append(ciphertext.c_rows[index])

    versions = dict(ciphertext.versions)
    versions[aid] = update_key.to_version
    return Ciphertext(
        ciphertext_id=ciphertext.ciphertext_id,
        owner_id=ciphertext.owner_id,
        c=new_c,
        c_prime=ciphertext.c_prime,
        c_rows=tuple(new_rows),
        matrix=ciphertext.matrix,
        involved_aids=ciphertext.involved_aids,
        versions=versions,
    )


def reencrypt(group: PairingGroup, ciphertext: Ciphertext,
              update_key: UpdateKey,
              update_info: CiphertextUpdateInfo) -> Ciphertext:
    """The ReEncrypt algorithm; returns the version-bumped ciphertext."""
    uk1 = check_reencrypt_inputs(ciphertext, update_key, update_info)
    return apply_update(
        ciphertext, update_key, update_info,
        group.pair(uk1, ciphertext.c_prime),
    )


def rows_touched(ciphertext: Ciphertext, aid: str) -> int:
    """How many LSSS rows a re-key of ``aid`` forces the server to update.

    The paper's partial re-encryption cost is proportional to this count
    (plus one pairing), versus ``l`` rows for a full rewrite.
    """
    return sum(
        1 for label in ciphertext.matrix.row_labels if authority_of(label) == aid
    )

"""Wall-clock retry deadlines and the typed RetryExhaustedError.

The per-attempt budget alone cannot bound a retry sequence under
adversarial delay injection — every attempt can eat a full client
timeout. The ``deadline`` is the second budget: total wall-clock for
one request's whole retry sequence, surfaced as a typed
:class:`RetryExhaustedError` that carries the attempt trace and stays
a :class:`TransportError` so failover layers skip, not die.
"""

import random

import pytest

from repro.errors import (
    RetryExhaustedError,
    TransportError,
    UnavailableError,
)
from repro.service.client import BaseClient
from repro.service.faults import ChaosProxy
from repro.service.protocol import MessageType
from repro.service.retry import RetryPolicy

from .conftest import run, start_service
from .test_faults import make_connection


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- policy units -------------------------------------------------------------

def test_deadline_must_be_non_negative():
    with pytest.raises(ValueError):
        RetryPolicy(deadline=-0.5)
    RetryPolicy(deadline=0.0)  # zero = "never sleep into a retry"


def test_no_deadline_never_overruns():
    policy = RetryPolicy(clock=FakeClock())
    assert not policy.deadline_overrun(10_000.0)


def test_deadline_anchors_at_first_check_and_counts_sleep():
    clock = FakeClock()
    policy = RetryPolicy(deadline=5.0, clock=clock)
    assert not policy.deadline_overrun(4.0)  # anchors at t=100
    clock.advance(3.0)
    assert not policy.deadline_overrun(1.0)  # 3 + 1 <= 5
    assert policy.deadline_overrun(2.5)      # 3 + 2.5 > 5
    clock.advance(3.0)
    assert policy.deadline_overrun(0.0)      # elapsed alone blew it


def test_new_failure_sequence_reanchors_the_budget():
    clock = FakeClock()
    policy = RetryPolicy(deadline=1.0, jitter=0.0, base_delay=0.0,
                         clock=clock)
    policy.backoff(1)
    clock.advance(0.9)
    assert policy.deadline_overrun(0.2)
    # attempt 1 of the NEXT request restarts the wall-clock anchor:
    # the deadline bounds one request's sequence, not the connection.
    policy.backoff(1)
    assert not policy.deadline_overrun(0.2)


# -- the typed error ----------------------------------------------------------

def test_retry_exhausted_is_a_transport_error_with_a_trace():
    trace = [{"event": "retry", "request": "PING", "attempt": 1,
              "cause": "TimeoutError()", "delay": 0.1}]
    exc = RetryExhaustedError("deadline overrun", attempts=trace)
    assert isinstance(exc, TransportError)
    assert exc.attempts == trace
    assert RetryExhaustedError("bare").attempts == []


# -- end to end against a live server -----------------------------------------

def test_deadline_overrun_raises_typed_error_with_attempt_trace(
        group, store_root):
    async def scenario():
        service = await start_service(group, store_root)
        proxy = ChaosProxy(service.host, service.port)
        await proxy.start()
        retry = RetryPolicy(max_attempts=50, base_delay=0.02,
                            max_delay=0.05, jitter=0.0, deadline=0.25,
                            rng=random.Random(0))
        connection = make_connection(group, proxy.host, proxy.port,
                                     retry=retry, timeout=0.5)
        client = BaseClient(await connection.connect())
        try:
            assert await client.ping()
            # A partition makes every reconnect die retryably, forever:
            # only the wall-clock deadline can end the sequence.
            proxy.partition()
            with pytest.raises(RetryExhaustedError) as excinfo:
                await client.ping()
            exc = excinfo.value
            assert exc.attempts, "the trace must show what was tried"
            assert all(entry["request"] == "PING"
                       for entry in exc.attempts)
            assert any(entry["event"] == "retry"
                       for entry in exc.attempts)
            assert connection.retry_log.events("exhausted")
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    run(scenario())


def test_attempt_budget_still_wins_without_a_deadline(group, store_root):
    async def scenario():
        service = await start_service(group, store_root,
                                      read_only=True)
        retry = RetryPolicy(max_attempts=2, base_delay=0.01,
                            jitter=0.0, rng=random.Random(0))
        connection = make_connection(group, service.host, service.port,
                                     role="owner", name="owner:alice",
                                     retry=retry)
        client = BaseClient(await connection.connect())
        try:
            # Exhausting attempts (not the deadline) re-raises the
            # original retryable failure, exactly as before.
            with pytest.raises(UnavailableError):
                await connection.request(MessageType.STORE_RECORD, b"",
                                         expect=MessageType.OK)
        finally:
            await client.close()
            await service.stop()

    run(scenario())

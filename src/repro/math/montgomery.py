"""Montgomery-form arithmetic for F_p (REDC).

Montgomery representation maps ``a ↦ a·R mod p`` for ``R = 2^k > p``,
turning every modular multiplication into one integer multiply plus a
*Montgomery reduction* (REDC) — two multiplies by numbers no wider than
``p`` and a shift, with no division. For fixed-width limb arithmetic
this beats ``%`` decisively; the trade-off in CPython is discussed at
the bottom of this docstring.

Invariants (documented here, asserted by
``tests/math/test_montgomery.py``):

* ``R = 2^k`` with ``k = p.bit_length() + 2``, so ``R > 4p``. REDC of
  any ``t < R·p`` returns ``t·R⁻¹ mod p`` in ``[0, 2p)``; one
  conditional subtraction makes it canonical. Choosing ``R > 4p``
  (rather than the minimal ``R > p``) leaves two bits of headroom so
  *lazy* operands in ``[0, 2p)`` can be multiplied without overflowing
  the ``t < R·p`` precondition: ``(2p)·(2p) = 4p² < R·p``.
* ``n' = -p⁻¹ mod R`` is precomputed once; REDC is then
  ``m = (t·n') mod R;  u = (t + m·p) / R``, exact because
  ``t + m·p ≡ 0 (mod R)`` by construction.
* ``one = R mod p`` is the Montgomery image of 1; conversions are
  ``to_mont(a) = a·R mod p`` (one mul + one %) and
  ``from_mont(â) = REDC(â)``.

Lazy-reduction bound: additive combinations of canonical Montgomery
values stay REDC-safe as long as each multiplication operand is kept
below ``2p`` — i.e. one conditional subtraction per *addition chain*,
not per add. The Miller-loop line evaluation uses this to fold its
``a - b·x`` combination into a single reduction.

**CPython measurement (this container, see DESIGN.md):** pure-Python
REDC loses to the builtin ``%`` — 1.50µs vs 1.18µs per 512-bit mul,
0.50µs vs 0.25µs at 80 bits — because CPython's long division is
already C code and REDC's two extra big-int multiplies cost more than
the division they avoid. Montgomery form is therefore OFF by default
(``REPRO_MONTGOMERY=0``) and exists as a correctness-verified
representation for backends where single-mul latency dominates; the
differential tests keep it byte-identical so flipping it on is safe.
"""

from __future__ import annotations

from repro.errors import MathError
from repro.math.integers import invmod


class MontgomeryContext:
    """Precomputed REDC constants and Montgomery-domain operations.

    Values in the Montgomery domain are plain ints (``a·R mod p``);
    callers must not mix domains — ``to_mont``/``from_mont`` are the
    only crossings, placed at serialize boundaries by the callers.
    """

    __slots__ = ("p", "k", "R", "mask", "n_prime", "one", "r2", "redcs")

    def __init__(self, p: int):
        if p < 3 or p % 2 == 0:
            raise MathError("Montgomery form requires an odd modulus")
        self.p = p
        # +2 bits of headroom: operands < 2p keep t = a·b < 4p² < R·p.
        self.k = p.bit_length() + 2
        self.R = 1 << self.k
        self.mask = self.R - 1
        self.n_prime = (-invmod(p, self.R)) & self.mask
        self.one = self.R % p
        self.r2 = self.R * self.R % p  # to_mont via REDC(a·r2)
        self.redcs = 0  # cumulative REDC count (see OperationCounter)

    # -- domain crossings ---------------------------------------------------

    def to_mont(self, a: int) -> int:
        return a * self.R % self.p

    def from_mont(self, a: int) -> int:
        return self.redc(a)

    # -- core reduction -----------------------------------------------------

    def redc(self, t: int) -> int:
        """``t·R⁻¹ mod p`` for any ``0 <= t < R·p``."""
        p = self.p
        m = (t & self.mask) * self.n_prime & self.mask
        u = (t + m * p) >> self.k
        self.redcs += 1
        return u - p if u >= p else u

    # -- Montgomery-domain arithmetic ---------------------------------------
    # add/sub/neg are domain-agnostic (the map a ↦ aR is linear).

    def mul(self, a: int, b: int) -> int:
        return self.redc(a * b)

    def square(self, a: int) -> int:
        return self.redc(a * a)

    def pow(self, a: int, e: int) -> int:
        """Montgomery-domain exponentiation (square-and-multiply)."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = self.one
        redc = self.redc
        while e:
            if e & 1:
                result = redc(result * a)
            a = redc(a * a)
            e >>= 1
        return result

    def inv(self, a: int) -> int:
        """Inverse staying in the domain: (aR)⁻¹·R² = a⁻¹·R (mod p)."""
        return invmod(a, self.p) * self.r2 % self.p

"""Dynamic attribute-universe growth (AAs "setting attributes" live)."""

import pytest

from repro.ec.params import TOY80
from repro.errors import PolicyNotSatisfiedError, SchemeError
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=1207)
    deployment.add_authority("aa", ["x"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "aa", ["x"], "alice")
    deployment.upload("alice", "old", {"c": (b"old data", "aa:x")})
    return deployment


class TestAddAttribute:
    def test_new_attribute_usable_end_to_end(self, system):
        qualified = system.add_attribute("aa", "y")
        assert qualified == "aa:y"
        system.issue_keys("bob", "aa", ["x", "y"], "alice")
        system.upload("alice", "new", {"c": (b"new data", "aa:y")})
        assert system.read("bob", "new", "c") == b"new data"

    def test_existing_data_unaffected(self, system):
        system.add_attribute("aa", "y")
        assert system.read("bob", "old", "c") == b"old data"

    def test_version_unchanged(self, system):
        before = system.authorities["aa"].core.version
        system.add_attribute("aa", "y")
        assert system.authorities["aa"].core.version == before

    def test_duplicate_rejected(self, system):
        with pytest.raises(SchemeError, match="already manages"):
            system.add_attribute("aa", "x")

    def test_invalid_name_rejected(self, system):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            system.add_attribute("aa", "bad name")

    def test_users_without_new_attribute_denied(self, system):
        system.add_attribute("aa", "y")
        system.upload("alice", "new", {"c": (b"secret", "aa:y")})
        with pytest.raises(PolicyNotSatisfiedError):
            system.read("bob", "new", "c")

    def test_interacts_with_revocation(self, system):
        system.add_attribute("aa", "y")
        system.issue_keys("bob", "aa", ["x", "y"], "alice")
        system.upload("alice", "new", {"c": (b"secret", "aa:y")})
        system.revoke("aa", "bob", ["y"])
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            system.read("bob", "new", "c")
        # x survives the revocation of y.
        assert system.read("bob", "old", "c") == b"old data"

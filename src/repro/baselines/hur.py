"""Hur-Noh attribute revocation (TPDS 2010) over BSW CP-ABE.

The revocation baseline from the paper's related work ([12]): "the
revocation method proposed by Hur et al. lets the server re-encrypt the
ciphertext with a set of attribute group keys. … However, both methods
assume the server is trustable". We implement it faithfully in that
respect — the server-side :class:`HurSystem` *does* hold all attribute
group keys, which is precisely the trust assumption the reproduced paper
rejects for cloud storage and fixes with owner-driven proxy
re-encryption.

Mechanism:

* every attribute ``y`` has a *group* ``G_y`` of users currently holding
  it, and a secret attribute group key ``K_y ∈ Z_r``;
* the server re-encrypts each BSW ciphertext leaf for ``y`` as
  ``C_y ↦ C_y^{K_y}``;
* ``K_y`` is delivered with a *header*: wrapped under the KEK-tree
  complete-subtree cover of ``G_y``, so exactly the members can unwrap
  it, strip the blinding (``C_y^{K_y·K_y^{-1}}``) and run normal BSW
  decryption;
* revoking ``u`` from ``G_y`` = pick fresh ``K̃_y``, publish a header for
  the shrunk cover, and re-blind affected ciphertext leaves by
  ``K̃_y / K_y`` — immediate revocation, O(log n) header, no key
  redistribution to unaffected users.

(One simplification: Hur's paper folds the group key into the user's key
component rather than the ciphertext leaf; blinding the leaf is the
mirror-image operation with identical pairing algebra and identical
costs, and keeps the BSW code untouched. Documented in DESIGN.md §2.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.bsw import BswCiphertext, BswScheme, BswUserKey
from repro.baselines.kek_tree import KekTree
from repro.crypto import symmetric
from repro.errors import AuthorizationError, SchemeError
from repro.math.integers import invmod
from repro.pairing.group import GTElement


@dataclass(frozen=True)
class AttributeGroupHeader:
    """The broadcast that delivers one attribute group key to its members."""

    attribute: str
    version: int
    wrapped: dict  # KEK-tree node id -> SymmetricCiphertext of K_y bytes

    @property
    def cover_size(self) -> int:
        return len(self.wrapped)


@dataclass(frozen=True)
class HurCiphertext:
    """A BSW ciphertext whose leaves are blinded by attribute group keys."""

    base: BswCiphertext           # leaves carry C_y^{K_y} in place of C_y
    group_versions: dict          # attribute -> group-key version used


class HurSystem:
    """Server-side state: KEK tree, attribute groups, group keys."""

    def __init__(self, bsw: BswScheme, capacity: int = 64, seed=None):
        self.bsw = bsw
        self.group = bsw.group
        rng = random.Random(seed)
        self.tree = KekTree(capacity, rng)
        self._rng = rng
        self._members = {}      # attribute -> set of uids
        self._group_keys = {}   # attribute -> K_y in Z_r
        self._versions = {}     # attribute -> int

    # -- membership ------------------------------------------------------------

    def register_user(self, uid: str) -> dict:
        """Assign a tree slot; returns the user's path KEKs (join payload)."""
        self.tree.assign_slot(uid)
        return self.tree.path_keks(uid)

    def grant(self, uid: str, attribute: str) -> None:
        """Add a user to an attribute group (on AA key issuance)."""
        if uid not in self.tree.users:
            raise SchemeError(f"user {uid!r} is not registered")
        members = self._members.setdefault(attribute, set())
        members.add(uid)
        if attribute not in self._group_keys:
            self._group_keys[attribute] = self.group.random_scalar()
            self._versions[attribute] = 0

    def members_of(self, attribute: str) -> frozenset:
        return frozenset(self._members.get(attribute, ()))

    def group_key_version(self, attribute: str) -> int:
        return self._versions.get(attribute, -1)

    # -- headers --------------------------------------------------------------------

    def header(self, attribute: str) -> AttributeGroupHeader:
        """Wrap K_y under the current complete-subtree cover of G_y."""
        if attribute not in self._group_keys:
            raise SchemeError(f"attribute {attribute!r} has no group yet")
        key_bytes = self.group.encode_scalar(self._group_keys[attribute])
        padded = key_bytes.rjust(symmetric.KEY_LEN, b"\x00")
        wrapped = {}
        for node in self.tree.min_cover(self._members[attribute]):
            wrapped[node] = symmetric.encrypt(self.tree.kek(node), padded)
        return AttributeGroupHeader(
            attribute=attribute,
            version=self._versions[attribute],
            wrapped=wrapped,
        )

    @staticmethod
    def unwrap_group_key(header: AttributeGroupHeader, path_keks: dict,
                         scalar_bytes: int) -> int:
        """Member-side recovery of K_y from a header and the user's KEKs."""
        for node, ciphertext in header.wrapped.items():
            kek = path_keks.get(node)
            if kek is None:
                continue
            padded = symmetric.decrypt(kek, ciphertext)
            return int.from_bytes(padded[-scalar_bytes:], "big")
        raise AuthorizationError(
            f"no path KEK matches the header cover for {header.attribute!r}: "
            f"the user is not a member of this attribute group"
        )

    # -- ciphertext (re-)encryption -------------------------------------------------------

    def reencrypt(self, ciphertext: BswCiphertext) -> HurCiphertext:
        """Initial server-side re-encryption: blind each leaf by K_{att}."""
        leaves = []
        versions = {}
        for attribute, c_y, c_y_prime in ciphertext.leaves:
            key = self._group_keys.get(attribute)
            if key is None:
                raise SchemeError(
                    f"attribute {attribute!r} has no group key; grant it first"
                )
            leaves.append((attribute, c_y ** key, c_y_prime ** key))
            versions[attribute] = self._versions[attribute]
        blinded = BswCiphertext(
            c_tilde=ciphertext.c_tilde,
            c=ciphertext.c,
            leaves=tuple(leaves),
            policy=ciphertext.policy,
        )
        return HurCiphertext(base=blinded, group_versions=versions)

    def revoke(self, uid: str, attribute: str,
               stored: list) -> AttributeGroupHeader:
        """Remove a user from G_y, refresh K_y, re-blind stored ciphertexts.

        ``stored`` is a list of :class:`HurCiphertext` the server holds;
        they are replaced in place (index-wise) by their re-blinded
        versions. Returns the new header for distribution.
        """
        members = self._members.get(attribute, set())
        if uid not in members:
            raise SchemeError(
                f"user {uid!r} is not in the group of {attribute!r}"
            )
        members.discard(uid)
        old_key = self._group_keys[attribute]
        new_key = self.group.random_scalar()
        while new_key == old_key:
            new_key = self.group.random_scalar()  # pragma: no cover
        self._group_keys[attribute] = new_key
        self._versions[attribute] += 1
        ratio = new_key * invmod(old_key, self.group.order) % self.group.order
        for index, hur_ct in enumerate(stored):
            if attribute not in hur_ct.group_versions:
                continue
            leaves = []
            for leaf_attribute, c_y, c_y_prime in hur_ct.base.leaves:
                if leaf_attribute == attribute:
                    leaves.append((leaf_attribute, c_y ** ratio,
                                   c_y_prime ** ratio))
                else:
                    leaves.append((leaf_attribute, c_y, c_y_prime))
            versions = dict(hur_ct.group_versions)
            versions[attribute] = self._versions[attribute]
            stored[index] = HurCiphertext(
                base=BswCiphertext(
                    c_tilde=hur_ct.base.c_tilde,
                    c=hur_ct.base.c,
                    leaves=tuple(leaves),
                    policy=hur_ct.base.policy,
                ),
                group_versions=versions,
            )
        return self.header(attribute)


def decrypt(hur_system_group, hur_ciphertext: HurCiphertext,
            user_key: BswUserKey, path_keks: dict, headers: dict,
            bsw: BswScheme) -> GTElement:
    """Member-side decryption: unwrap group keys, unblind, BSW-decrypt.

    ``headers`` maps attribute → current :class:`AttributeGroupHeader`;
    only attributes both in the user's key and in the policy need one.
    Raises :class:`AuthorizationError` if the user is outside a required
    attribute group (i.e. has been revoked).
    """
    group = hur_system_group
    order = group.order
    needed = {
        attribute
        for attribute, _, _ in hur_ciphertext.base.leaves
        if attribute in user_key.attributes
    }
    unblinded_leaves = []
    inverses = {}
    for attribute in needed:
        header = headers.get(attribute)
        if header is None:
            raise SchemeError(f"no header supplied for {attribute!r}")
        if header.version != hur_ciphertext.group_versions.get(attribute):
            raise SchemeError(
                f"header for {attribute!r} is at version {header.version}, "
                f"ciphertext expects "
                f"{hur_ciphertext.group_versions.get(attribute)}"
            )
        key = HurSystem.unwrap_group_key(header, path_keks, group.scalar_bytes)
        inverses[attribute] = invmod(key, order)
    for attribute, c_y, c_y_prime in hur_ciphertext.base.leaves:
        inverse = inverses.get(attribute)
        if inverse is None:
            unblinded_leaves.append((attribute, c_y, c_y_prime))
        else:
            unblinded_leaves.append(
                (attribute, c_y ** inverse, c_y_prime ** inverse)
            )
    plain_base = BswCiphertext(
        c_tilde=hur_ciphertext.base.c_tilde,
        c=hur_ciphertext.base.c,
        leaves=tuple(unblinded_leaves),
        policy=hur_ciphertext.base.policy,
    )
    return bsw.decrypt(plain_base, user_key)

"""The Vandermonde-insertion LSSS construction for native thresholds."""

import itertools
import random

import pytest

from repro.errors import PolicyError, PolicyNotSatisfiedError
from repro.policy.lsss import lsss_from_policy

ORDER = 0x8BE5EA5F01D1943560CD

POLICIES = [
    "2 of (a, b, c)",
    "3 of (a, b, c, d)",
    "2 of (a, b, c, d, e)",
    "x AND 2 of (a, b, c)",
    "2 of (a AND b, c, d OR e)",
    "2 of (2 of (a, b, c), d, e)",
    "a OR 3 of (b, c, d, e)",
]


def _universe(matrix):
    return sorted(set(matrix.row_labels))


def _all_subsets(universe):
    for size in range(len(universe) + 1):
        yield from (set(combo) for combo in itertools.combinations(universe, size))


class TestRowEconomy:
    def test_linear_row_count(self):
        matrix = lsss_from_policy("5 of (a,b,c,d,e,f,g,h,i,j)",
                                  threshold_method="insert")
        assert matrix.n_rows == 10          # n rows, not C(10,5) = 252
        assert matrix.n_cols == 5           # 1 + (t-1) columns

    def test_expand_blows_up_for_comparison(self):
        matrix = lsss_from_policy("3 of (a,b,c,d,e)",
                                  threshold_method="expand")
        assert matrix.n_rows == 30          # C(5,3) branches × 3 leaves

    def test_injective_rho_preserved(self):
        matrix = lsss_from_policy("2 of (a, b, c)",
                                  threshold_method="insert")
        assert matrix.is_injective()

    def test_and_or_unchanged(self):
        for policy in ("a AND b", "a OR (b AND c)"):
            expand = lsss_from_policy(policy, threshold_method="expand")
            insert = lsss_from_policy(policy, threshold_method="insert")
            assert expand.rows == insert.rows

    def test_unknown_method_rejected(self):
        with pytest.raises(PolicyError):
            lsss_from_policy("a", threshold_method="shamir")


class TestSemantics:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_satisfiability_matches_oracle(self, policy):
        matrix = lsss_from_policy(policy, threshold_method="insert")
        from repro.policy.parser import parse

        formula = parse(policy)
        for subset in _all_subsets(_universe(matrix)):
            assert matrix.is_satisfied_by(subset, ORDER) == formula.evaluate(
                subset
            ), (policy, subset)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_share_reconstruct(self, policy):
        rng = random.Random(hash(policy) & 0xFFFF)
        matrix = lsss_from_policy(policy, threshold_method="insert")
        from repro.policy.parser import parse

        formula = parse(policy)
        secret = rng.randrange(ORDER)
        shares = matrix.share(secret, ORDER, rng)
        for subset in _all_subsets(_universe(matrix)):
            if formula.evaluate(subset):
                weights = matrix.reconstruction_coefficients(subset, ORDER)
                value = sum(weights[i] * shares[i] for i in weights) % ORDER
                assert value == secret, (policy, subset)
            else:
                with pytest.raises(PolicyNotSatisfiedError):
                    matrix.reconstruction_coefficients(subset, ORDER)


class TestSchemeIntegration:
    def test_core_scheme_thresholds_without_rho_relaxation(self, group):
        """With insertion, the paper's scheme handles genuine k-of-n
        policies while keeping ρ injective — impossible with expansion."""
        from repro.core.scheme import MultiAuthorityABE
        from repro.ec.params import TOY80

        scheme = MultiAuthorityABE(TOY80, seed=31337)
        hospital = scheme.setup_authority(
            "hospital", ["doctor", "nurse", "surgeon"]
        )
        owner = scheme.setup_owner("alice", [hospital])
        pk = scheme.register_user("u")
        keys = {
            "hospital": hospital.keygen(pk, ["doctor", "surgeon"], "alice")
        }
        message = scheme.random_message()
        policy = "2 of (hospital:doctor, hospital:nurse, hospital:surgeon)"
        assert lsss_from_policy(policy, threshold_method="insert").is_injective()
        # With the default (expand) this policy trips the injectivity
        # check; with insertion it encrypts under the strict default.
        ciphertext = owner.encrypt(message, policy,
                                   threshold_method="insert")
        assert scheme.decrypt(ciphertext, pk, keys) == message
        assert ciphertext.matrix.method == "insert"

    def test_revocation_on_insert_ciphertexts(self, group):
        """The full ReKey/ReEncrypt pipeline works on threshold
        ciphertexts built with the insertion construction."""
        from repro.core.reencrypt import reencrypt
        from repro.core.revocation import rekey_standard
        from repro.core.scheme import MultiAuthorityABE
        from repro.ec.params import TOY80
        from repro.errors import PolicyNotSatisfiedError, SchemeError

        scheme = MultiAuthorityABE(TOY80, seed=424242)
        authority = scheme.setup_authority("aa", ["a", "b", "c"])
        owner = scheme.setup_owner("alice", [authority])
        victim_pk = scheme.register_user("victim")
        victim_keys = {
            "aa": authority.keygen(victim_pk, ["a", "b"], "alice")
        }
        survivor_pk = scheme.register_user("survivor")
        survivor_keys = {
            "aa": authority.keygen(survivor_pk, ["b", "c"], "alice")
        }
        message = scheme.random_message()
        ciphertext = owner.encrypt(
            message, "2 of (aa:a, aa:b, aa:c)", threshold_method="insert"
        )
        assert scheme.decrypt(ciphertext, victim_pk, victim_keys) == message

        result = rekey_standard(authority, "victim", ["a"])
        update_info = owner.update_info(ciphertext, result.update_key)
        assert set(update_info.elements) == {"aa:a", "aa:b", "aa:c"}
        owner.apply_update_key(result.update_key)
        updated = reencrypt(
            scheme.group, ciphertext, result.update_key, update_info
        )
        victim_keys["aa"] = result.revoked_user_keys["alice"]
        survivor_keys["aa"] = scheme.apply_update_key(
            survivor_keys["aa"], result.update_key
        )
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            scheme.decrypt(updated, victim_pk, victim_keys)
        assert scheme.decrypt(updated, survivor_pk, survivor_keys) == message

    def test_insert_ciphertext_serialization_roundtrip(self, group):
        from repro.core.ciphertext import Ciphertext
        from repro.core.scheme import MultiAuthorityABE
        from repro.ec.params import TOY80

        scheme = MultiAuthorityABE(TOY80, seed=31338)
        hospital = scheme.setup_authority("hospital", ["a", "b", "c"])
        owner = scheme.setup_owner("alice", [hospital])
        pk = scheme.register_user("u")
        keys = {"hospital": hospital.keygen(pk, ["a", "c"], "alice")}
        message = scheme.random_message()
        ciphertext = owner.encrypt(
            message, "2 of (hospital:a, hospital:b, hospital:c)",
            threshold_method="insert",
        )
        revived = Ciphertext.from_bytes(scheme.group, ciphertext.to_bytes())
        assert revived.matrix.method == "insert"
        assert revived.matrix.rows == ciphertext.matrix.rows
        assert scheme.decrypt(revived, pk, keys) == message
"""High-level pairing-group API: G, GT, Z_r and the bilinear map.

:class:`PairingGroup` is the facade every scheme in this library builds
on. It wraps the curve/pairing substrate in two small element classes
written *multiplicatively* — CP-ABE papers (including the one reproduced
here) write the source group multiplicatively, so ``a * b`` is the group
operation and ``a ** k`` is exponentiation, even though the underlying
group is an elliptic curve.

Example::

    group = PairingGroup(TOY80, seed=1)
    s = group.random_scalar()
    lhs = group.pair(group.g ** s, group.g)
    rhs = group.pair(group.g, group.g) ** s
    assert lhs == rhs
"""

from __future__ import annotations

import hashlib
import random

from repro.ec.curve import (
    _JAC_INFINITY,
    INFINITY,
    SupersingularCurve,
    _jac_add,
)
from repro.ec.batch_affine import batch_same_scalar_mults
from repro.ec.params import TypeAParams
from repro.errors import MathError
from repro.math.field import PrimeField
from repro.math.field_ext import QuadraticExtension
from repro.pairing.miller import final_exponentiation, miller_loop

# Caps on the per-group precomputation caches. Each fixed-base table is
# ~75 KB and each prepared pairing ~45 KB at SS512 sizes, so the caps
# bound cache memory at a few tens of MB; eviction is oldest-first.
MAX_G1_TABLES = 256
MAX_GT_TABLES = 256
MAX_PREPARED_PAIRINGS = 256
MAX_HASH_POINT_CACHE = 4096

# Per-process registry of unpickled groups, keyed by (class, parameter
# ints). Shipping a PairingGroup to a ProcessPoolExecutor worker moves
# only the parameter integers (~a few hundred bytes); the worker
# rebuilds the group once and then reuses it — with all its lazily
# accumulated fixed-base tables and prepared pairings — for every later
# chunk addressed to the same parameters.
_GROUP_REGISTRY = {}


def _rebuild_group(cls, r: int, p: int, generator: tuple, name: str,
                   backend: str = "auto"):
    """Reconstruct (or fetch the per-process instance of) a pickled group.

    Presets resolve to the module singletons in
    :data:`repro.ec.params.PRESETS` so element equality — which compares
    ``params`` by identity — keeps working across a pickle round-trip
    within one process. The arithmetic backend name travels with the
    pickle, so CryptoPool workers and background refill processes
    compute with the same backend as the parent (``auto`` re-resolves
    per process: a worker without gmpy2 degrades to pure and still
    produces byte-identical results).
    """
    key = (cls, r, p, generator, backend)
    group = _GROUP_REGISTRY.get(key)
    if group is None:
        from repro.ec.params import PRESETS, TypeAParams

        preset = PRESETS.get(name)
        if preset is not None and (preset.r, preset.p, preset.generator) == (
            r, p, generator
        ):
            params = preset
        else:
            params = TypeAParams(r=r, p=p, generator=generator, name=name)
        group = cls(params, backend=backend)
        _GROUP_REGISTRY[key] = group
    return group


class OperationCounter:
    """Tallies of the dominant group operations performed through a group.

    Used to validate the paper-facing operation-count models
    (:mod:`repro.analysis.costmodel`) against what the implementation
    actually does: tests run Encrypt/Decrypt between ``reset()`` calls
    and compare. Each multi-pairing counts one pairing per input pair
    (its Miller loops) even though the final exponentiation is shared.
    """

    __slots__ = ("pairings", "g1_exponentiations", "gt_exponentiations",
                 "fp_muls", "fp_invs", "redcs")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.pairings = 0
        self.g1_exponentiations = 0
        self.gt_exponentiations = 0
        # Base-field telemetry (PR 6): multiplications/inversions routed
        # through PrimeField methods and REDC reductions when Montgomery
        # form is active. The inlined hot loops (curve.py, miller.py)
        # deliberately bypass the counter — instrumenting them would
        # slow the operations being measured — so these tally the
        # *managed* arithmetic: field API calls, batch inversions, and
        # the whole Montgomery path (every mont op is a REDC).
        self.fp_muls = 0
        self.fp_invs = 0
        self.redcs = 0

    def snapshot(self) -> dict:
        return {
            "pairings": self.pairings,
            "g1_exponentiations": self.g1_exponentiations,
            "gt_exponentiations": self.gt_exponentiations,
            "fp_muls": self.fp_muls,
            "fp_invs": self.fp_invs,
            "redcs": self.redcs,
        }

    def __repr__(self) -> str:
        return (
            f"OperationCounter(pair={self.pairings}, "
            f"g1^={self.g1_exponentiations}, gt^={self.gt_exponentiations})"
        )


class G1Element:
    """An element of the source group G (order r), multiplicative notation."""

    __slots__ = ("group", "point")

    def __init__(self, group: "PairingGroup", point):
        self.group = group
        self.point = point

    def __mul__(self, other: "G1Element") -> "G1Element":
        return G1Element(self.group, self.group.curve.add(self.point, other.point))

    def __truediv__(self, other: "G1Element") -> "G1Element":
        return G1Element(self.group, self.group.curve.sub(self.point, other.point))

    def __pow__(self, exponent: int) -> "G1Element":
        group = self.group
        group.counter.g1_exponentiations += 1
        exponent %= group.order
        table = group._g1_table_for(self.point)
        if table is not None:
            return G1Element(group, table.multiply(exponent))
        return G1Element(group, group.curve.mul(self.point, exponent))

    def inverse(self) -> "G1Element":
        return G1Element(self.group, self.group.curve.neg(self.point))

    def is_identity(self) -> bool:
        return self.point is INFINITY

    def to_bytes(self) -> bytes:
        return self.group.encode_g1(self)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, G1Element)
            and self.group.params is other.group.params
            and self.point == other.point
        )

    def __hash__(self) -> int:
        return hash(("G1", self.point))

    def __repr__(self) -> str:
        if self.point is INFINITY:
            return "G1(identity)"
        return f"G1(x=...{self.point[0] & 0xFFFF:04x})"


class GTElement:
    """An element of the target group GT ⊂ F_p²^* (order r)."""

    __slots__ = ("group", "value")

    def __init__(self, group: "PairingGroup", value: tuple):
        self.group = group
        self.value = value

    def __mul__(self, other: "GTElement") -> "GTElement":
        return GTElement(self.group, self.group.ext.mul(self.value, other.value))

    def __truediv__(self, other: "GTElement") -> "GTElement":
        return GTElement(self.group, self.group.ext.div(self.value, other.value))

    def __pow__(self, exponent: int) -> "GTElement":
        group = self.group
        group.counter.gt_exponentiations += 1
        exponent %= group.order
        table = group._gt_table_for(self.value)
        if table is not None:
            return GTElement(group, table.pow(exponent))
        return GTElement(group, group.ext.pow(self.value, exponent))

    def inverse(self) -> "GTElement":
        return GTElement(self.group, self.group.ext.inv(self.value))

    def is_identity(self) -> bool:
        return self.group.ext.is_one(self.value)

    def to_bytes(self) -> bytes:
        return self.group.encode_gt(self)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GTElement)
            and self.group.params is other.group.params
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("GT", self.value))

    def __repr__(self) -> str:
        return f"GT(...{self.value[0] & 0xFFFF:04x})"


class PairingGroup:
    """A symmetric pairing group (G, GT, e, r) over type-A parameters.

    ``seed`` makes all randomness drawn *through this object* reproducible;
    pass ``None`` for OS-seeded randomness.
    """

    def __init__(self, params: TypeAParams, seed=None, *, backend=None):
        self.params = params
        self.order = params.r
        self.backend_requested = backend  # travels with the pickle
        self.field = PrimeField(params.p, check_prime=False, backend=backend)
        self.backend_name = self.field.backend_name
        self.montgomery = self.field.mont is not None
        self.curve = SupersingularCurve(self.field)
        self.ext = QuadraticExtension(self.field)
        self.rng = random.Random(seed)
        self.counter = OperationCounter()
        self.field.counter = self.counter  # fp_muls/fp_invs telemetry
        self.g = G1Element(self, params.generator)
        self._gt_generator = None
        self._g_table = None
        self._g1_tables = {}     # point -> FixedBaseTable
        self._gt_tables = {}     # F_p² value -> GTFixedBaseTable
        self._prepared = {}      # point -> PreparedPairing
        self._h2g_cache = {}     # (domain, parts) -> subgroup point
        self.scalar_bytes = (self.order.bit_length() + 7) // 8
        self.g1_bytes = self.field.byte_length + 1  # compressed point + tag
        self.gt_bytes = 2 * self.field.byte_length

    def __reduce__(self):
        """Pickle as parameters only — tables/caches rebuild lazily.

        The fixed-base and prepared-pairing caches are pure derived data
        (and megabytes at SS512 sizes), so a worker process reconstructs
        the group from its parameter integers and regrows whatever
        caches its own workload needs. The RNG state is deliberately not
        shipped: a round-tripped group draws fresh randomness.
        """
        params = self.params
        backend = self.backend_requested
        return (
            _rebuild_group,
            (type(self), params.r, int(params.p), params.generator,
             params.name, "auto" if backend is None else backend),
        )

    def op_counts(self) -> dict:
        """Operation-counter snapshot including Montgomery REDC tallies.

        REDCs accumulate inside the :class:`~repro.math.montgomery.
        MontgomeryContext` (the reduction is too hot to route through a
        shared counter object); this merges them into the snapshot the
        benches publish.
        """
        snap = self.counter.snapshot()
        if self.field.mont is not None:
            snap["redcs"] += self.field.mont.redcs
        return snap

    # -- generators and identities ------------------------------------------------

    @property
    def gt(self) -> GTElement:
        """The canonical GT generator e(g, g) (computed once, cached)."""
        if self._gt_generator is None:
            self._gt_generator = self.pair(self.g, self.g)
        return self._gt_generator

    def generator_table(self):
        """Lazily-built fixed-base table for generator exponentiations."""
        if self._g_table is None:
            from repro.ec.fixed_base import FixedBaseTable

            self._g_table = FixedBaseTable(
                self.curve, self.params.generator, self.order
            )
            self._g1_tables.setdefault(self.params.generator, self._g_table)
        return self._g_table

    def identity_g1(self) -> G1Element:
        return G1Element(self, INFINITY)

    def identity_gt(self) -> GTElement:
        return GTElement(self, self.ext.one)

    # -- precomputation registries -------------------------------------------------

    def _g1_table_for(self, point):
        table = self._g1_tables.get(point)
        if table is None and point == self.params.generator:
            table = self.generator_table()
        return table

    def _gt_table_for(self, value):
        table = self._gt_tables.get(value)
        if table is None and self._gt_generator is not None \
                and value == self._gt_generator.value:
            # The GT generator e(g, g) is exponentiated by every Encrypt;
            # build its table on first use.
            table = self.register_gt_base(self._gt_generator)
        return table

    @staticmethod
    def _bounded_insert(cache: dict, limit: int, key, value):
        if len(cache) >= limit:
            cache.pop(next(iter(cache)))  # oldest-first eviction
        cache[key] = value

    def register_g1_base(self, element: G1Element, window: int = 4):
        """Precompute a fixed-base table for a G element that will be
        exponentiated repeatedly (public attribute keys, user keys...).

        Build cost is a few hundred point additions plus one inversion
        (~15 ms at SS512); each later exponentiation of the registered
        base drops to ``bits/window`` inversion-free additions. Returns
        the table (reusing an existing one when already registered).
        """
        table = self._g1_tables.get(element.point)
        if table is None and element.point is not INFINITY:
            from repro.ec.fixed_base import FixedBaseTable

            table = FixedBaseTable(
                self.curve, element.point, self.order, window=window
            )
            self._bounded_insert(
                self._g1_tables, MAX_G1_TABLES, element.point, table
            )
        return table

    def register_gt_base(self, element: GTElement, window: int = 4):
        """Precompute a windowed-exponentiation table for a GT element
        (the cached e(g,g), per-authority e(g,g)^{α_k} products...)."""
        table = self._gt_tables.get(element.value)
        if table is None and not self.ext.is_zero(element.value):
            from repro.pairing.gt_table import GTFixedBaseTable

            table = GTFixedBaseTable(
                self.ext, element.value, self.order, window=window
            )
            self._bounded_insert(
                self._gt_tables, MAX_GT_TABLES, element.value, table
            )
        return table

    def prepare_pairing(self, element: G1Element):
        """Cache the Miller-loop line coefficients of a pairing argument.

        Later ``pair``/``pair_prod`` calls that involve the prepared
        element (on either side — the pairing is symmetric) replay the
        cached lines instead of recomputing the chain, cutting ~2/3 of
        the per-pairing work. Returns the :class:`PreparedPairing`.
        """
        prepared = self._prepared.get(element.point)
        if prepared is None:
            from repro.pairing.prepared import PreparedPairing

            prepared = PreparedPairing(
                self.curve, self.ext, element.point, self.order
            )
            self._bounded_insert(
                self._prepared, MAX_PREPARED_PAIRINGS, element.point, prepared
            )
        return prepared

    # -- the bilinear map ---------------------------------------------------------

    def _miller_raw(self, point_p, point_q):
        """Unreduced Miller value, via cached line coefficients when the
        first or (by symmetry) second argument has been prepared.
        Returns None for a trivial (infinity-input) pairing."""
        if point_p is INFINITY or point_q is INFINITY:
            return None
        prepared = self._prepared.get(point_p)
        if prepared is not None:
            return prepared.miller(point_q)
        prepared = self._prepared.get(point_q)
        if prepared is not None:  # e(P, Q) = e(Q, P) on this curve
            return prepared.miller(point_p)
        return miller_loop(self.curve, self.ext, point_p, point_q, self.order)

    def pair(self, a: G1Element, b: G1Element) -> GTElement:
        """The symmetric Tate pairing e(a, b)."""
        self.counter.pairings += 1
        raw = self._miller_raw(a.point, b.point)
        if raw is None:
            return GTElement(self, self.ext.one)
        return GTElement(self, final_exponentiation(self.ext, raw, self.order))

    def pair_prod(self, pairs) -> GTElement:
        """∏ e(a_i, b_i) with one shared final exponentiation."""
        point_pairs = [(a.point, b.point) for a, b in pairs]
        self.counter.pairings += len(point_pairs)
        accumulator = None
        for point_p, point_q in point_pairs:
            raw = self._miller_raw(point_p, point_q)
            if raw is None:
                continue
            accumulator = (
                raw if accumulator is None else self.ext.mul(accumulator, raw)
            )
        if accumulator is None:
            return GTElement(self, self.ext.one)
        return GTElement(
            self, final_exponentiation(self.ext, accumulator, self.order)
        )

    def multiexp_g1(self, elements, scalars) -> G1Element:
        """∏ elementᵢ^{scalarᵢ} in G with one shared doubling chain.

        Straus/Shamir interleaving (Pippenger buckets for large batches)
        plus fixed-base tables for any registered bases; a single modular
        inversion converts the result back to affine. Counts
        ``len(elements)`` G exponentiations — the same operations the
        naive per-element ``**`` loop would record — so the cost-model
        validation stays meaningful.
        """
        elements = list(elements)
        scalars = list(scalars)
        if len(elements) != len(scalars):
            raise MathError("multiexp_g1 needs one scalar per element")
        self.counter.g1_exponentiations += len(elements)
        p = self.field.p  # backend-wrapped modulus
        accumulator = _JAC_INFINITY
        rest = []
        for element, scalar in zip(elements, scalars):
            scalar %= self.order
            if scalar == 0 or element.point is INFINITY:
                continue
            table = self._g1_table_for(element.point)
            if table is not None:
                accumulator = _jac_add(
                    accumulator, table.multiply_jacobian(scalar), p
                )
            else:
                rest.append((element.point, scalar))
        if rest:
            accumulator = _jac_add(
                accumulator, self.curve.multi_mul_jacobian(rest), p
            )
        return G1Element(self, self.curve.to_affine(accumulator))

    # -- sampling ------------------------------------------------------------------

    def random_scalar(self) -> int:
        """Uniform nonzero exponent in Z_r^*."""
        return self.rng.randrange(1, self.order)

    def random_scalars(self, count: int, *, nonzero: bool = True) -> list:
        """``count`` independent uniform exponents from ONE RNG call.

        The offline randomization pools draw whole share vectors at
        once; pulling one ``getrandbits`` block of ``count`` widths
        amortizes the RNG bookkeeping that ``randrange`` pays per
        scalar. Each scalar is reduced from twice the order's bit width,
        so the modular bias is ≤ 2^-|r| (the same head-room
        :meth:`hash_to_scalar` uses); with ``nonzero`` (the default,
        matching :meth:`random_scalar`) zeros are resampled.
        """
        if count < 0:
            raise MathError("cannot draw a negative number of scalars")
        if count == 0:
            return []
        width = 2 * self.scalar_bytes * 8
        mask = (1 << width) - 1
        block = self.rng.getrandbits(width * count)
        scalars = []
        for _ in range(count):
            value = (block & mask) % self.order
            block >>= width
            while nonzero and value == 0:  # pragma: no cover - p < 2^-|r|
                value = self.rng.getrandbits(width) % self.order
            scalars.append(value)
        return scalars

    def random_g1(self) -> G1Element:
        return self.g ** self.random_scalar()

    def random_gt(self) -> GTElement:
        return self.gt ** self.random_scalar()

    # -- hashing -------------------------------------------------------------------

    def _hash_stream(self, parts, domain: bytes, needed: int) -> bytes:
        """Injective absorb of ``parts`` then SHA-256 expansion to ``needed`` bytes."""
        hasher = hashlib.sha256(domain)
        for part in parts:
            if isinstance(part, str):
                part = part.encode("utf-8")
            elif isinstance(part, int):
                if part < 0:
                    # Sign-prefix the magnitude: non-negative encodings
                    # below always lead with a 0x00 byte, so the 0x01
                    # prefix keeps the map injective (and int.to_bytes
                    # would raise OverflowError on negatives).
                    magnitude = -part
                    part = b"\x01" + magnitude.to_bytes(
                        (magnitude.bit_length() + 8) // 8 + 1, "big"
                    )
                else:
                    part = part.to_bytes((part.bit_length() + 8) // 8 + 1, "big")
            elif not isinstance(part, (bytes, bytearray)):
                raise MathError(f"cannot hash object of type {type(part).__name__}")
            hasher.update(len(part).to_bytes(4, "big"))
            hasher.update(part)
        digest_state = hasher.digest()
        stream = b""
        counter = 0
        while len(stream) < needed:
            stream += hashlib.sha256(
                digest_state + counter.to_bytes(4, "big")
            ).digest()
            counter += 1
        return stream[:needed]

    def hash_to_scalar(self, *parts, domain: bytes = b"repro.H") -> int:
        """H : {0,1}* → Z_r (the paper's random-oracle hash H).

        Accepts str/bytes/int parts; length-prefixes each part so the
        encoding is injective, then expands SHA-256 output to twice the
        scalar width before reducing (negligible mod bias).
        """
        stream = self._hash_stream(parts, domain, 2 * self.scalar_bytes)
        return int.from_bytes(stream, "big") % self.order

    def hash_to_g1(self, *parts, domain: bytes = b"repro.H2G") -> G1Element:
        """H : {0,1}* → G (random oracle into the source group).

        Try-and-increment on candidate x-coordinates, followed by
        cofactor clearing (multiplying by h = (p+1)/r maps any curve
        point into the order-r subgroup). Needed by the Lewko-Waters and
        BSW baselines, which hash global identifiers / attributes to
        group elements. Results are memoized — the same identifier is
        hashed on every KeyGen *and* every Decrypt row, and the
        try-and-increment loop costs a square root plus a cofactor
        multiplication each time.
        """
        key = (domain, parts)
        try:
            cached = self._h2g_cache.get(key)
        except TypeError:  # unhashable part (bytearray...): skip the cache
            key = None
            cached = None
        if cached is not None:
            return G1Element(self, cached)
        cofactor = (self.params.p + 1) // self.order
        p = self.params.p
        x_bytes = 2 * self.field.byte_length
        for counter in range(512):
            candidate = int.from_bytes(
                self._hash_stream(
                    (counter.to_bytes(4, "big"),) + parts, domain, x_bytes
                ),
                "big",
            )
            x = candidate % p
            point = self.curve.lift_x(x, parity=candidate & 1)
            if point is None:
                continue
            cleared = self.curve.mul(point, cofactor)
            if cleared is not INFINITY:
                if key is not None:
                    self._bounded_insert(
                        self._h2g_cache, MAX_HASH_POINT_CACHE, key, cleared
                    )
                return G1Element(self, cleared)
        raise MathError("hash_to_g1 failed to find a curve point")  # pragma: no cover

    # -- serialization ---------------------------------------------------------------

    def encode_g1(self, element: G1Element) -> bytes:
        """Compressed point encoding: tag byte (0/2/3) + x-coordinate."""
        if element.point is INFINITY:
            return b"\x00" * self.g1_bytes
        x, y = element.point
        tag = 2 + (y & 1)
        return bytes([tag]) + self.field.to_bytes(x)

    def decode_g1(self, data: bytes, *, check_subgroup: bool = True) -> G1Element:
        if len(data) != self.g1_bytes:
            raise MathError("wrong length for a G element encoding")
        tag = data[0]
        if tag == 0:
            if any(data[1:]):
                raise MathError("malformed identity encoding")
            return self.identity_g1()
        if tag not in (2, 3):
            raise MathError(f"unknown point-compression tag {tag}")
        x = self.field.from_bytes(data[1:])
        point = self.curve.lift_x(x, tag - 2)
        if point is None:
            raise MathError("x-coordinate is not on the curve")
        # Subgroup validation: the curve has order p + 1 = h·r, and points
        # outside the order-r subgroup would make pairings land outside GT
        # (small-subgroup confinement). Cost: one scalar multiplication —
        # skippable (``check_subgroup=False``) only for bytes this process
        # already validated, e.g. store-internal re-reads.
        if check_subgroup \
                and self.curve.mul(point, self.order) is not INFINITY:
            raise MathError("point is not in the order-r subgroup")
        return G1Element(self, point)

    def decode_g1_batch(self, blobs) -> list:
        """Decode many G encodings, subgroup-checking every point.

        Each blob is lifted onto the curve exactly as :meth:`decode_g1`
        would (malformed encodings raise identically), then order-r
        membership is established **per point**, with failures naming
        the offending index. A shared random-linear-combination check
        (``r · Σ δᵢ·Pᵢ = O``) was deliberately rejected: the cofactor
        ``h = (p+1)/r`` is divisible by 4 (``generate_type_a`` forces
        it), so the residual group contains order-2 elements — two bad
        points carrying the same order-2 component cancel under any
        same-parity coefficients, and even uniform coefficients pass a
        nonzero residual with probability 1/q for every small prime
        ``q | h``. With unknown small factors in ``h``, no single
        combined check is sound, so untrusted points are checked one
        by one.
        """
        decoded = [
            self.decode_g1(blob, check_subgroup=False) for blob in blobs
        ]
        # The per-point checks share one scalar (the group order), so the
        # whole batch runs as level-synchronized affine double-and-add
        # with ONE batch inversion per bit round instead of per-point
        # Jacobian ladders — same r·Pᵢ results, point by point.
        indices = [
            index for index, element in enumerate(decoded)
            if element.point is not INFINITY
        ]
        products = batch_same_scalar_mults(
            self.curve, [decoded[index].point for index in indices],
            self.order,
        )
        for index, product in zip(indices, products):
            if product is not INFINITY:
                raise MathError(
                    f"batch element {index} is not in the order-r subgroup"
                )
        return decoded

    def encode_gt(self, element: GTElement) -> bytes:
        return self.ext.to_bytes(element.value)

    def decode_gt(self, data: bytes, *, check_subgroup: bool = True) -> GTElement:
        if len(data) != self.gt_bytes:
            raise MathError("wrong length for a GT element encoding")
        value = self.ext.from_bytes(data)
        # Subgroup validation, mirroring decode_g1: GT is the order-r
        # subgroup of F_p²^*, and accepting values outside it would let a
        # hostile peer smuggle small-subgroup elements through the wire
        # formats. Cost: one F_p² exponentiation — skippable only for
        # bytes this process already validated.
        if self.ext.is_zero(value):
            raise MathError("0 is not a GT element")
        if check_subgroup \
                and not self.ext.is_one(self.ext.pow(value, self.order)):
            raise MathError("value is not in the order-r subgroup of F_p²")
        return GTElement(self, value)

    def encode_scalar(self, value: int) -> bytes:
        return (value % self.order).to_bytes(self.scalar_bytes, "big")

    def decode_scalar(self, data: bytes) -> int:
        if len(data) != self.scalar_bytes:
            raise MathError("wrong length for a scalar encoding")
        return int.from_bytes(data, "big") % self.order

    def __repr__(self) -> str:
        return f"PairingGroup({self.params.name})"

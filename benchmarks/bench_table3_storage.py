"""Table III: storage overhead on each entity, ours vs Lewko-Waters.

The "ours" column is cross-checked against a live deployment: the
server row is literally ``server.storage_bytes()`` of the simulated
cloud after an upload under the headline policy shape.
"""

from benchmarks.conftest import FIXED_ATTRS, FIXED_AUTHORITIES, PRESET
from repro.analysis.costmodel import SystemShape, table3_lewko, table3_ours
from repro.analysis.timing import and_policy
from repro.pairing.serialize import element_sizes
from repro.system.workflow import CloudStorageSystem

SHAPE = SystemShape(
    n_authorities=FIXED_AUTHORITIES,
    attrs_per_authority=FIXED_ATTRS,
    user_attrs_per_authority=FIXED_ATTRS,
    policy_rows=FIXED_AUTHORITIES * FIXED_ATTRS,
)


def _build_and_measure():
    system = CloudStorageSystem(PRESET, seed=7)
    names = [f"attr{i}" for i in range(FIXED_ATTRS)]
    aids = [f"aa{k}" for k in range(FIXED_AUTHORITIES)]
    for aid in aids:
        system.add_authority(aid, names)
    system.add_owner("owner")
    system.add_user("user")
    for aid in aids:
        system.issue_keys("user", aid, names, "owner")
    policy = and_policy(aids, FIXED_ATTRS)
    system.upload("owner", "record", {"component": (b"\x00" * 64, policy)})
    # Server storage minus the symmetric body = the ABE ciphertext bytes.
    record = system.server.record("record")
    component = record.component("component")
    return component.abe_ciphertext.element_size_bytes(system.group)


def test_table3(benchmark):
    sizes = element_sizes(PRESET)
    ours = table3_ours(SHAPE)
    lewko = table3_lewko(SHAPE)
    measured_server = benchmark(_build_and_measure)

    print(f"\n=== Table III — Storage overhead (bytes, preset {PRESET.name}) ===")
    header = f"{'Entity':<10} {'Ours':>10} {'Lewko':>10}  formula (ours)"
    print(header)
    print("-" * 72)
    for entity in ("authority", "owner", "user", "server"):
        print(f"{entity:<10} {ours[entity].bytes(sizes):>10} "
              f"{lewko[entity].bytes(sizes):>10}  {ours[entity].formula}")

    assert measured_server == ours["server"].bytes(sizes)
    # Paper claims: AA, owner and server storage strictly smaller; user
    # storage "almost the same" (ours is n_A·|G| larger).
    assert ours["authority"].bytes(sizes) < lewko["authority"].bytes(sizes)
    assert ours["owner"].bytes(sizes) < lewko["owner"].bytes(sizes)
    assert ours["server"].bytes(sizes) < lewko["server"].bytes(sizes)
    assert (
        ours["user"].bytes(sizes) - lewko["user"].bytes(sizes)
        == SHAPE.n_authorities * sizes.g1
    )


def test_table3_gap_grows_with_authorities(benchmark):
    """'Note that if more authorities involved in the system, our scheme
    incurs more less storage overhead than Lewko's scheme.'"""
    sizes = element_sizes(PRESET)

    def sweep():
        gaps = []
        for n_authorities in (2, 5, 10, 20):
            shape = SystemShape(
                n_authorities=n_authorities,
                attrs_per_authority=FIXED_ATTRS,
                user_attrs_per_authority=FIXED_ATTRS,
                policy_rows=n_authorities * FIXED_ATTRS,
            )
            ours_total = sum(
                cost.bytes(sizes) for cost in table3_ours(shape).values()
            )
            lewko_total = sum(
                cost.bytes(sizes) for cost in table3_lewko(shape).values()
            )
            gaps.append((n_authorities, lewko_total - ours_total))
        return gaps

    gaps = benchmark(sweep)
    print("\n=== Table III gap sweep (Lewko bytes - ours, total) ===")
    for n_authorities, gap in gaps:
        print(f"  n_A={n_authorities:<3} gap={gap} B")
    assert all(gap > 0 for _, gap in gaps)
    assert [gap for _, gap in gaps] == sorted(gap for _, gap in gaps)

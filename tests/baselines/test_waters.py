"""Tests for the Waters CP-ABE baseline (the reduction target)."""

import dataclasses

import pytest

from repro.baselines.waters import WatersScheme
from repro.errors import PolicyNotSatisfiedError, SchemeError


@pytest.fixture()
def waters(group):
    return WatersScheme(group)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "policy,attrs",
        [
            ("a", ["a"]),
            ("a AND b", ["a", "b"]),
            ("a OR b", ["b"]),
            ("a AND (b OR c)", ["a", "c"]),
            ("(a AND b) OR (c AND d)", ["c", "d"]),
        ],
    )
    def test_authorized(self, group, waters, policy, attrs):
        message = group.random_gt()
        ciphertext = waters.encrypt(message, policy)
        assert waters.decrypt(ciphertext, waters.keygen(attrs)) == message

    def test_threshold_insert_method(self, group, waters):
        message = group.random_gt()
        ciphertext = waters.encrypt(
            message, "2 of (a, b, c)", threshold_method="insert"
        )
        assert ciphertext.n_rows == 3
        assert waters.decrypt(ciphertext, waters.keygen(["a", "c"])) == message

    def test_unsatisfying_rejected(self, group, waters):
        ciphertext = waters.encrypt(group.random_gt(), "a AND b")
        with pytest.raises(PolicyNotSatisfiedError):
            waters.decrypt(ciphertext, waters.keygen(["a"]))

    def test_empty_keygen_rejected(self, waters):
        with pytest.raises(SchemeError):
            waters.keygen([])


class TestCollusion:
    def test_keys_randomized_per_user(self, waters):
        k1, k2 = waters.keygen(["a"]), waters.keygen(["a"])
        assert k1.k != k2.k and k1.l != k2.l

    def test_spliced_keys_fail(self, group, waters):
        """Mixing components across users breaks the shared t binding —
        the single-authority collusion defence the multi-authority
        scheme replaces with the global UID."""
        message = group.random_gt()
        ciphertext = waters.encrypt(message, "a AND b")
        alice = waters.keygen(["a"])
        bob = waters.keygen(["b"])
        spliced = dataclasses.replace(
            alice, components={**alice.components, **bob.components}
        )
        assert waters.decrypt(ciphertext, spliced) != message


class TestStructuralLineage:
    def test_ciphertext_shape_between_ours_and_lewko(self, group, waters):
        """Size sanity: |GT| + (2l+1)|G| sits between the reproduced
        scheme's |GT| + (l+1)|G| and Lewko's (l+1)|GT| + 2l|G|."""
        ciphertext = waters.encrypt(group.random_gt(), "a AND b")
        l = ciphertext.n_rows
        waters_bytes = ciphertext.element_size_bytes(group)
        ours_bytes = group.gt_bytes + (l + 1) * group.g1_bytes
        lewko_bytes = (l + 1) * group.gt_bytes + 2 * l * group.g1_bytes
        assert ours_bytes < waters_bytes < lewko_bytes

    def test_same_lsss_machinery_as_core_scheme(self, group, waters):
        """Both schemes consume identical matrices — the reduction in
        Theorem 2 relies on this structural correspondence."""
        from repro.policy.lsss import lsss_from_policy

        ciphertext = waters.encrypt(group.random_gt(), "a AND (b OR c)")
        reference = lsss_from_policy("a AND (b OR c)")
        assert ciphertext.matrix.rows == reference.rows
        assert ciphertext.matrix.row_labels == reference.row_labels

"""Comparison schemes: Lewko-Waters, BSW, and Hur-Noh revocation."""

from repro.baselines import bsw, chase, hur, lewko, pirretti, waters
from repro.baselines.bsw import BswScheme
from repro.baselines.chase import ChaseAuthority, ChaseCentralAuthority
from repro.baselines.hur import HurSystem
from repro.baselines.kek_tree import KekTree
from repro.baselines.lewko import LewkoAuthority
from repro.baselines.pirretti import PirrettiSystem
from repro.baselines.waters import WatersScheme

# NOTE: repro.baselines.lewko_system (the deployable baseline) is *not*
# re-exported here: it builds on repro.system, whose size model imports
# the baseline ciphertext types from this package — import it directly
# as `from repro.baselines.lewko_system import LewkoCloudSystem`.

__all__ = [
    "lewko",
    "bsw",
    "hur",
    "chase",
    "pirretti",
    "waters",
    "LewkoAuthority",
    "BswScheme",
    "HurSystem",
    "KekTree",
    "ChaseAuthority",
    "ChaseCentralAuthority",
    "PirrettiSystem",
    "WatersScheme",
]

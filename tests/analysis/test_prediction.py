"""Primitive timings × operation counts must predict algorithm timings.

This ties Ablation B (per-operation costs) to Figures 3/4 (algorithm
costs) through the operation-count models: measuring the pairing / G-exp
/ GT-exp unit costs and weighting them by the model's counts should land
within a small factor of the actually measured Encrypt/Decrypt times.
A generous tolerance keeps the test robust to scheduler noise while
still catching any gross model/implementation divergence.
"""

import time

import pytest

from repro.analysis.costmodel import (
    SystemShape,
    decrypt_ops_ours,
    encrypt_ops_ours,
)
from repro.analysis.timing import build_ours
from repro.ec.params import TOY80

SHAPE = SystemShape(
    n_authorities=2, attrs_per_authority=4,
    user_attrs_per_authority=4, policy_rows=8,
)
TOLERANCE = 4.0


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def measurements():
    workload = build_ours(TOY80, SHAPE.n_authorities,
                          SHAPE.attrs_per_authority, seed=23)
    group = workload.group
    group.gt  # warm cached generator
    exponent = group.random_scalar()
    x, y = group.random_g1(), group.random_g1()
    # The common case inside Encrypt/KeyGen: a registered fixed-base
    # element (the generator, public attribute keys and user keys all
    # get tables), so the unit cost must be the table-backed one.
    base = group.random_g1()
    group.register_g1_base(base)
    pairing_cost = _best_of(lambda: group.pair(x, y))
    g1_cost = _best_of(lambda: base ** exponent)
    gt_cost = _best_of(lambda: group.gt ** exponent)
    ciphertext = workload.encrypt()
    encrypt_time = _best_of(workload.encrypt)
    decrypt_time = _best_of(lambda: workload.decrypt(ciphertext))
    return pairing_cost, g1_cost, gt_cost, encrypt_time, decrypt_time


class TestPrediction:
    def test_decrypt_prediction(self, measurements):
        pairing_cost, g1_cost, gt_cost, _, decrypt_time = measurements
        predicted = decrypt_ops_ours(SHAPE).weighted(
            pairing_cost, g1_cost, gt_cost
        )
        ratio = decrypt_time / predicted
        assert 1 / TOLERANCE < ratio < TOLERANCE, (
            f"decrypt {decrypt_time * 1000:.1f} ms vs predicted "
            f"{predicted * 1000:.1f} ms"
        )

    def test_encrypt_prediction(self, measurements):
        pairing_cost, g1_cost, gt_cost, encrypt_time, _ = measurements
        predicted = encrypt_ops_ours(SHAPE).weighted(
            pairing_cost, g1_cost, gt_cost
        )
        ratio = encrypt_time / predicted
        assert 1 / TOLERANCE < ratio < TOLERANCE, (
            f"encrypt {encrypt_time * 1000:.1f} ms vs predicted "
            f"{predicted * 1000:.1f} ms"
        )

    def test_pairings_dominate_decryption(self, measurements):
        pairing_cost, g1_cost, gt_cost, _, _ = measurements
        ops = decrypt_ops_ours(SHAPE)
        pairing_share = ops.pairings * pairing_cost
        total = ops.weighted(pairing_cost, g1_cost, gt_cost)
        assert pairing_share / total > 0.8

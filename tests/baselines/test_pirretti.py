"""Tests for the Pirretti timed re-keying baseline — especially the
non-immediacy and overhead properties the reproduced paper criticizes."""

import pytest

from repro.baselines.bsw import BswScheme
from repro.baselines.pirretti import PirrettiSystem, epoch_qualify
from repro.errors import PolicyNotSatisfiedError, SchemeError


@pytest.fixture()
def system(group):
    return PirrettiSystem(BswScheme(group))


class TestBasics:
    def test_epoch_qualification(self):
        assert epoch_qualify("doctor", 3) == "doctor@3"
        with pytest.raises(SchemeError):
            epoch_qualify("doctor@3", 4)

    def test_grant_and_decrypt(self, group, system):
        key = system.grant("bob", ["doctor"])
        message = group.random_gt()
        ciphertext = system.encrypt(message, "doctor")
        assert system.decrypt(ciphertext, key) == message

    def test_policy_structure_preserved(self, group, system):
        key = system.grant("bob", ["a", "c"])
        message = group.random_gt()
        ciphertext = system.encrypt(message, "(a AND c) OR b")
        assert system.decrypt(ciphertext, key) == message

    def test_threshold_policies(self, group, system):
        key = system.grant("bob", ["a", "b"])
        message = group.random_gt()
        ciphertext = system.encrypt(message, "2 of (a, b, c)")
        assert system.decrypt(ciphertext, key) == message


class TestNonImmediacy:
    """The weakness: revocation waits for the epoch boundary."""

    def test_revoked_user_keeps_access_within_epoch(self, group, system):
        key = system.grant("bob", ["doctor"])
        message = group.random_gt()
        ciphertext = system.encrypt(message, "doctor")
        system.revoke("bob", ["doctor"])
        # Still readable! The revocation has not taken effect.
        assert system.decrypt(ciphertext, key) == message

    def test_revocation_bites_after_rollover(self, group, system):
        old_key = system.grant("bob", ["doctor"])
        system.revoke("bob", ["doctor"])
        refreshed = system.advance_epoch()
        assert "bob" not in refreshed  # nothing left to re-issue
        ciphertext = system.encrypt(group.random_gt(), "doctor")
        with pytest.raises(PolicyNotSatisfiedError):
            system.decrypt(ciphertext, old_key)

    def test_stale_key_fails_on_new_epoch_data(self, group, system):
        old_key = system.grant("bob", ["doctor"])
        system.advance_epoch()
        ciphertext = system.encrypt(group.random_gt(), "doctor")
        with pytest.raises(PolicyNotSatisfiedError):
            system.decrypt(ciphertext, old_key)

    def test_survivors_get_fresh_keys(self, group, system):
        system.grant("bob", ["doctor"])
        system.grant("eve", ["doctor"])
        system.revoke("bob", ["doctor"])
        refreshed = system.advance_epoch()
        message = group.random_gt()
        ciphertext = system.encrypt(message, "doctor")
        assert system.decrypt(ciphertext, refreshed["eve"]) == message


class TestOverhead:
    """Every epoch re-issues every surviving user's key."""

    def test_per_epoch_cost_scales_with_users(self, group, system):
        n_users = 6
        for index in range(n_users):
            system.grant(f"u{index}", ["doctor"])
        baseline = system.keys_issued
        system.advance_epoch()
        assert system.keys_issued == baseline + n_users
        system.advance_epoch()
        assert system.keys_issued == baseline + 2 * n_users

    def test_contrast_with_papers_update_keys(self, group):
        """Our scheme's survivor update is O(1) per user *and* done
        client-side from a broadcast — no per-user issuance at the AA."""
        from repro.core.scheme import MultiAuthorityABE
        from repro.ec.params import TOY80

        scheme = MultiAuthorityABE(TOY80, seed=2711)
        authority = scheme.setup_authority("aa", ["doctor"])
        scheme.setup_owner("alice")
        for index in range(6):
            pk = scheme.register_user(f"u{index}")
            authority.keygen(pk, ["doctor"], "alice")
        result = scheme.revoke("aa", "u0", ["doctor"])
        # One broadcast object regardless of user count:
        assert len(result.update_key.uk1) == 1  # per owner, not per user
        assert result.reissued_keys is None


class TestErrors:
    def test_revoke_unknown_user(self, system):
        with pytest.raises(SchemeError):
            system.revoke("ghost", ["doctor"])

    def test_issue_with_no_grants(self, system):
        system.grant("bob", ["doctor"])
        system.revoke("bob", ["doctor"])
        with pytest.raises(SchemeError):
            system._issue("bob")

"""Tests for the certificate authority."""

import pytest

from repro.core.ca import CertificateAuthority
from repro.errors import SchemeError


@pytest.fixture()
def ca(group):
    return CertificateAuthority(group)


class TestUserRegistration:
    def test_issues_valid_public_key(self, ca, group):
        pk = ca.register_user("alice")
        assert pk.uid == "alice"
        assert not pk.element.is_identity()
        assert (pk.element ** group.order).is_identity()

    def test_duplicate_uid_rejected(self, ca):
        ca.register_user("alice")
        with pytest.raises(SchemeError):
            ca.register_user("alice")

    def test_lookup(self, ca):
        issued = ca.register_user("bob")
        assert ca.user_public_key("bob") == issued
        assert ca.is_registered_user("bob")
        assert not ca.is_registered_user("nobody")

    def test_unknown_lookup_raises(self, ca):
        with pytest.raises(SchemeError):
            ca.user_public_key("ghost")

    def test_distinct_users_distinct_keys(self, ca):
        a = ca.register_user("u1")
        b = ca.register_user("u2")
        assert a.element != b.element

    def test_count(self, ca):
        ca.register_user("u1")
        ca.register_user("u2")
        assert ca.user_count == 2


class TestAuthorityAndOwnerRegistration:
    def test_authority(self, ca):
        assert ca.register_authority("hospital") == "hospital"
        assert ca.is_registered_authority("hospital")
        assert ca.authority_count == 1

    def test_duplicate_authority_rejected(self, ca):
        ca.register_authority("hospital")
        with pytest.raises(SchemeError):
            ca.register_authority("hospital")

    def test_owner(self, ca):
        assert ca.register_owner("alice") == "alice"
        with pytest.raises(SchemeError):
            ca.register_owner("alice")

    def test_invalid_identifiers_rejected(self, ca):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            ca.register_authority("bad id")
        with pytest.raises(PolicyError):
            ca.register_user("")

"""Prepared pairings: cache the Miller chain of a fixed first argument.

Every step of the Miller loop is a line through points of the chain
``P, 2P, 3P, ...`` — a function of the *first* argument only. Decryption
evaluates many pairings whose first argument repeats (``e(C', ·)`` once
per authority and per row; ``e(·, PK_UID)`` once per row, flipped via
symmetry), so computing those lines once and replaying them against each
second argument removes ~2/3 of the per-pairing work.

A :class:`PreparedPairing` stores the coefficient triples from
:func:`repro.pairing.miller.line_coefficients` (~``1.5·bits`` triples of
F_p elements; ~45 KB for SS512) and evaluates pairings against arbitrary
second arguments. Reduced results are bit-identical to
:func:`repro.pairing.tate.tate_pairing`.
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.math.field_ext import QuadraticExtension
from repro.pairing.miller import (
    evaluate_line_steps,
    evaluate_line_steps_many,
    evaluate_line_steps_mont,
    final_exponentiation,
    final_exponentiation_many,
    line_coefficients,
    mont_line_steps,
)


class PreparedPairing:
    """Cached Miller-loop line coefficients of one fixed first argument."""

    __slots__ = ("curve", "ext", "point", "order", "steps", "_mont_steps")

    def __init__(self, curve: SupersingularCurve, ext: QuadraticExtension,
                 point: tuple, order: int):
        self.curve = curve
        self.ext = ext
        self.point = point
        self.order = order
        self.steps = (
            [] if point is INFINITY else line_coefficients(curve, point, order)
        )
        # Montgomery-domain copy of the steps, built on first use when
        # the base field runs in Montgomery form (field.mont set).
        self._mont_steps = None

    def miller(self, q_point: tuple) -> tuple:
        """Raw (unreduced) Miller value f_{r,P}(φ(Q)) as an F_p² element.

        Feed this into a shared final exponentiation when accumulating a
        product of pairings.
        """
        mont = self.ext.base.mont
        if mont is not None:
            if self._mont_steps is None:
                self._mont_steps = mont_line_steps(self.steps, mont)
            return evaluate_line_steps_mont(self.ext, self._mont_steps,
                                            q_point, mont)
        return evaluate_line_steps(self.ext, self.steps, q_point)

    def pair(self, q_point: tuple) -> tuple:
        """The reduced Tate pairing e(P, Q); bit-identical to the unprepared
        computation."""
        if self.point is INFINITY or q_point is INFINITY:
            return self.ext.one
        return final_exponentiation(self.ext, self.miller(q_point), self.order)

    def pair_many(self, q_points) -> list:
        """``[e(P, Q) for Q in q_points]`` with batched final exponentiation.

        The Miller replays run per point; the final exponentiations share
        one modular inversion via
        :func:`repro.pairing.miller.final_exponentiation_many`. Each
        entry is bit-identical to :meth:`pair` of the same point — this
        is what makes batch ReEncrypt byte-for-byte equal to the
        sequential path.
        """
        q_points = list(q_points)
        if self.point is INFINITY:
            return [self.ext.one for _ in q_points]
        results = [self.ext.one] * len(q_points)
        slots = [index for index, q_point in enumerate(q_points)
                 if q_point is not INFINITY]
        if self.ext.base.mont is None:
            # Step-outer batched replay: one pass over the cached steps
            # covers every second argument (same values as per-point
            # miller(), cheaper loop bookkeeping).
            raws = evaluate_line_steps_many(
                self.ext, self.steps, [q_points[index] for index in slots]
            )
        else:
            raws = [self.miller(q_points[index]) for index in slots]
        for index, reduced in zip(
            slots, final_exponentiation_many(self.ext, raws, self.order)
        ):
            results[index] = reduced
        return results

    def __repr__(self) -> str:
        return (
            f"PreparedPairing({len(self.steps)} line steps, "
            f"r~2^{self.order.bit_length()})"
        )

"""Ciphertexts of the Yang-Jia scheme, with serialization.

A ciphertext (Section V-B, Phase 3) is::

    CT = ( C  = m · (∏_{k∈I_A} e(g,g)^{α_k})^s,
           C' = g^{βs},
           C_i = g^{r·λ_i} · PK_{ρ(i)}^{-βs}   for each LSSS row i )

plus the access structure (M, ρ), which "the ciphertext implicitly
contains". We also carry per-authority version numbers so stale keys are
detected instead of silently mis-decrypting, and a ciphertext id so
update information can reference it.

Serialized layout: a JSON header (policy string, owner, versions, id)
length-prefixed, followed by the fixed-width group elements. The LSSS
matrix is *not* serialized — it is recomputed deterministically from the
policy string on decode, which keeps the wire size at the paper's
``|GT| + (l+1)|G|``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import SchemeError
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.lsss import LsssMatrix, lsss_from_policy


@dataclass(frozen=True)
class Ciphertext:
    """One CP-ABE ciphertext (the encrypted content key, per Fig. 2)."""

    ciphertext_id: str
    owner_id: str
    c: GTElement            # C
    c_prime: G1Element      # C'
    c_rows: tuple           # C_i, one per LSSS row, in row order
    matrix: LsssMatrix      # (M, ρ)
    involved_aids: frozenset
    versions: dict          # aid -> authority version at encryption time

    @property
    def n_rows(self) -> int:
        return len(self.c_rows)

    @property
    def policy_string(self) -> str:
        return str(self.matrix.policy)

    def version_of(self, aid: str) -> int:
        try:
            return self.versions[aid]
        except KeyError:
            raise SchemeError(
                f"authority {aid!r} is not involved in ciphertext "
                f"{self.ciphertext_id!r}"
            ) from None

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        header = json.dumps(
            {
                "id": self.ciphertext_id,
                "owner": self.owner_id,
                "policy": self.policy_string,
                "lsss": self.matrix.method,
                "versions": dict(sorted(self.versions.items())),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        body = self.c.to_bytes() + self.c_prime.to_bytes()
        for row in self.c_rows:
            body += row.to_bytes()
        return len(header).to_bytes(4, "big") + header + body

    @classmethod
    def from_bytes(cls, group: PairingGroup, data: bytes, *,
                   validate: bool = True) -> "Ciphertext":
        """Decode; ``validate=False`` skips the per-element subgroup
        checks and is reserved for bytes this process already validated
        (store-internal re-reads are digest-verified and were fully
        checked when they first crossed the wire)."""
        if len(data) < 4:
            raise SchemeError("truncated ciphertext")
        header_len = int.from_bytes(data[:4], "big")
        if len(data) < 4 + header_len:
            raise SchemeError("truncated ciphertext header")
        try:
            header = json.loads(data[4:4 + header_len].decode("utf-8"))
            ciphertext_id = header["id"]
            owner_id = header["owner"]
            policy = header["policy"]
            versions = header["versions"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError) as exc:
            raise SchemeError("malformed ciphertext header") from exc
        if not all(isinstance(value, str)
                   for value in (ciphertext_id, owner_id, policy)):
            raise SchemeError("malformed ciphertext header")
        if not isinstance(versions, dict) or not all(
            isinstance(aid, str)
            and isinstance(v, int) and not isinstance(v, bool)
            for aid, v in versions.items()
        ):
            raise SchemeError("malformed ciphertext header")
        method = header.get("lsss", "expand")
        if not isinstance(method, str):
            raise SchemeError("malformed ciphertext header")
        matrix = lsss_from_policy(policy, threshold_method=method)
        offset = 4 + header_len
        gt_len, g1_len = group.gt_bytes, group.g1_bytes
        expected = gt_len + g1_len * (1 + matrix.n_rows)
        if len(data) - offset != expected:
            raise SchemeError("ciphertext body has the wrong length")
        c = group.decode_gt(data[offset:offset + gt_len],
                            check_subgroup=validate)
        offset += gt_len
        c_prime = group.decode_g1(data[offset:offset + g1_len],
                                  check_subgroup=validate)
        offset += g1_len
        rows = []
        for _ in range(matrix.n_rows):
            rows.append(group.decode_g1(data[offset:offset + g1_len],
                                        check_subgroup=validate))
            offset += g1_len
        from repro.core.attributes import involved_authorities

        return cls(
            ciphertext_id=ciphertext_id,
            owner_id=owner_id,
            c=c,
            c_prime=c_prime,
            c_rows=tuple(rows),
            matrix=matrix,
            involved_aids=involved_authorities(matrix.row_labels),
            versions={aid: int(v) for aid, v in versions.items()},
        )

    def element_size_bytes(self, group: PairingGroup) -> int:
        """Size of the group-element payload only: |GT| + (l+1)·|G|.

        This is the quantity Tables II-IV count (headers/policy strings
        are bookkeeping both schemes share equally).
        """
        return group.gt_bytes + (self.n_rows + 1) * group.g1_bytes

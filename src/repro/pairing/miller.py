"""Miller's algorithm for the reduced Tate pairing on type-A curves.

We compute ``f_{r,P}(φ(Q))`` where ``φ(x, y) = (-x, i·y)`` is the
distortion map into E(F_p²). Two structural facts make the loop cheap:

* the second argument's x-coordinate ``-x_Q`` lies in the *base* field, so
  every vertical-line evaluation lands in F_p^* and is annihilated by the
  final exponentiation ``(p² - 1)/r = (p - 1)·(p + 1)/r`` — this is the
  classic *denominator elimination* for even embedding degree;
* all slope computations happen on F_p-rational points, so the only F_p²
  work is accumulating the running Miller value.

The fast path runs the chain of tangent/chord lines in *Jacobian*
coordinates with no modular inversions at all: each line is stored as a
coefficient triple ``(A, B, C)`` meaning ``l(φ(Q)) = (A - B·x̄_Q) +
(C·y_Q)·i``, correct up to a factor in F_p^* (the cleared denominators),
which the final exponentiation annihilates for the same reason verticals
do. Because the triples depend only on the *first* pairing argument,
:func:`line_coefficients` doubles as the precomputation behind
:class:`repro.pairing.prepared.PreparedPairing`: pairing against a cached
first argument replays the stored lines and skips the whole chain walk.

Points of the order-``r`` subgroup never hit 2-torsion inside the loop
(``r`` is an odd prime), so the doubling step needs no special cases; the
only degenerate line is the final vertical when the addition step lands on
infinity, which we simply skip (it is a vertical, hence eliminated).
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.errors import MathError
from repro.math.field_ext import QuadraticExtension

# Step kinds inside a coefficient list: a doubling step squares the
# running Miller value before multiplying the line in; an addition step
# only multiplies.
_DOUBLE = 0
_ADD = 1


def line_coefficients(curve: SupersingularCurve, point: tuple,
                      order: int) -> list:
    """Line-coefficient triples of ``f_{order,point}``, inversion-free.

    Returns ``[(kind, A, B, C), ...]`` in evaluation order, where the line
    through the current chain point evaluates at ``φ(Q) = (-x_Q, y_Q·i)``
    to ``(A - B·(-x_Q % p)) + (C·y_Q)·i`` — up to an F_p^* factor killed
    by the final exponentiation. Depends only on ``point`` and ``order``,
    so the result can be cached and replayed against many second
    arguments (:class:`repro.pairing.prepared.PreparedPairing`).
    """
    if point is INFINITY:
        return []
    p = curve.p
    px, py = point
    tx_, ty_, tz_ = px, py, 1  # the chain point T in Jacobian coordinates
    steps = []
    append = steps.append
    for bit_index in range(order.bit_length() - 2, -1, -1):
        # Doubling step: tangent line at T.
        if tz_ == 0 or ty_ == 0:  # pragma: no cover - unreachable for odd order
            break
        x, y, z = tx_, ty_, tz_
        zz = z * z % p
        yy = y * y % p
        s = 4 * x * yy % p
        m = (3 * x * x + zz * zz) % p  # a = 1 contributes Z⁴
        nx = (m * m - 2 * s) % p
        nz = 2 * y * z % p
        ny = (m * (s - nx) - 8 * yy * yy) % p
        append((
            _DOUBLE,
            (m * x - 2 * yy) % p,   # A
            m * zz % p,             # B
            nz * zz % p,            # C — the cleared denominator 2Y·Z³
        ))
        tx_, ty_, tz_ = nx, ny, nz

        if (order >> bit_index) & 1:
            # Addition step: chord through T and P (mixed coordinates).
            x, y, z = tx_, ty_, tz_
            zz = z * z % p
            zzz = zz * z % p
            u2 = px * zz % p
            s2 = py * zzz % p
            h = (u2 - x) % p
            r = (s2 - y) % p
            if h == 0:
                if r == 0:
                    # T == P: tangent line, and T ← 2T.
                    yy = y * y % p
                    s = 4 * x * yy % p
                    m = (3 * x * x + zz * zz) % p
                    nx = (m * m - 2 * s) % p
                    nz = 2 * y * z % p
                    ny = (m * (s - nx) - 8 * yy * yy) % p
                    append((
                        _ADD,
                        (m * x - 2 * yy) % p,
                        m * zz % p,
                        nz * zz % p,
                    ))
                    tx_, ty_, tz_ = nx, ny, nz
                    continue
                # T + P = O: the line is the vertical x - px, eliminated;
                # the chain is exhausted (only happens at the loop end for
                # order-r points).
                break
            append((
                _ADD,
                (r * x - y * h) % p,    # A
                r * zz % p,             # B
                zzz * h % p,            # C — the cleared denominator H·Z³
            ))
            hh = h * h % p
            hhh = h * hh % p
            v = x * hh % p
            nx = (r * r - hhh - 2 * v) % p
            ny = (r * (v - nx) - y * hhh) % p
            tx_, ty_, tz_ = nx, ny, z * h % p
    return steps


def evaluate_line_steps(ext: QuadraticExtension, steps: list,
                        q_point: tuple) -> tuple:
    """Replay cached line coefficients against ``φ(q_point)``.

    This is the whole per-pairing work once the first argument's
    coefficients exist: two F_p multiplications plus one F_p² square/mul
    per step, no inversions.
    """
    if q_point is INFINITY or not steps:
        return ext.one
    p = ext.p
    xq, yq = q_point
    x_eval = -xq % p
    f = ext.one
    square = ext.square
    mul = ext.mul
    for kind, a, b, c in steps:
        line = ((a - b * x_eval) % p, c * yq % p)
        if kind == _DOUBLE:
            f = mul(square(f), line)
        else:
            f = mul(f, line)
    return f


def miller_loop(curve: SupersingularCurve, ext: QuadraticExtension,
                point: tuple, q_point: tuple, order: int) -> tuple:
    """Evaluate f_{order,point} at φ(q_point); returns an F_p² element.

    ``point`` and ``q_point`` are affine points in E(F_p)[r]; the
    distortion map is applied internally to ``q_point``. The result is
    the affine Miller value up to a factor in F_p^*, which the final
    exponentiation removes — so reduced pairings are bit-identical to the
    affine reference :func:`miller_loop_affine`.
    """
    if point is INFINITY or q_point is INFINITY:
        return ext.one
    return evaluate_line_steps(ext, line_coefficients(curve, point, order),
                               q_point)


def miller_loop_affine(curve: SupersingularCurve, ext: QuadraticExtension,
                       point: tuple, q_point: tuple, order: int) -> tuple:
    """Reference implementation: affine chain with per-step inversions.

    Kept as the cross-check oracle for the inversion-free fast path (and
    for readers following the textbook algorithm). One modular inversion
    per chain step makes it ~4× slower at 512-bit sizes.
    """
    if point is INFINITY or q_point is INFINITY:
        return ext.one
    p = curve.p
    xq, yq = q_point
    x_eval = -xq % p  # x-coordinate of φ(Q), in F_p

    f = ext.one
    tx, ty = point
    px, py = point

    # Process bits of `order` from the second-most-significant down.
    for bit_index in range(order.bit_length() - 2, -1, -1):
        # Doubling step: line tangent at T, evaluated at φ(Q).
        slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
        # l(X, Y) = Y - ty - slope*(X - tx) at (x_eval, yq*i):
        real = (-ty - slope * (x_eval - tx)) % p
        f = ext.mul(ext.square(f), (real, yq))
        # T = 2T (affine doubling reusing the slope).
        new_x = (slope * slope - 2 * tx) % p
        ty = (slope * (tx - new_x) - ty) % p
        tx = new_x

        if (order >> bit_index) & 1:
            if tx == px and (ty + py) % p == 0:
                # T + P = O: the line is the vertical x - px, eliminated.
                tx, ty = None, None  # pragma: no cover - only at loop end
                break
            if tx == px and ty == py:
                slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
            else:
                slope = (py - ty) * pow(px - tx, -1, p) % p
            real = (-ty - slope * (x_eval - tx)) % p
            f = ext.mul(f, (real, yq))
            new_x = (slope * slope - tx - px) % p
            ty = (slope * (tx - new_x) - ty) % p
            tx = new_x
    return f


def final_exponentiation(ext: QuadraticExtension, value: tuple, order: int) -> tuple:
    """Raise a Miller value to ``(p² - 1)/r``, landing in the order-r subgroup.

    Uses the factorization ``(p² - 1)/r = (p - 1) · ((p + 1)/r)``; the
    first factor is a cheap Frobenius-and-divide (``x^p = conj(x)``), the
    second a short exponentiation (``(p + 1)/r`` is the cofactor ``h``).
    This factor ``p - 1`` is also what annihilates the F_p^* denominators
    the projective fast path leaves in its Miller values.
    """
    p = ext.p
    # value^(p-1) = conj(value) / value.
    powered = ext.mul(ext.conjugate(value), ext.inv(value))
    return ext.pow(powered, (p + 1) // order)


def final_exponentiation_many(ext: QuadraticExtension, values: list,
                              order: int) -> list:
    """Batch :func:`final_exponentiation` sharing one modular inversion.

    The F_p² inversion inside the ``p - 1`` factor routes through a single
    base-field inversion of the norm ``a² + b²``; Montgomery batch
    inversion (:func:`repro.math.integers.batch_invmod`) replaces the
    ``n`` norm inversions with one inversion plus ``3(n-1)``
    multiplications. Modular inverses are unique, so each result is
    bit-identical to the per-value computation.
    """
    from repro.math.integers import batch_invmod

    values = list(values)
    if not values:
        return []
    p = ext.p
    norms = [ext.norm(value) for value in values]
    if any(n == 0 for n in norms):
        raise MathError("0 is not invertible in F_p²")
    norm_invs = batch_invmod(norms, p)
    cofactor = (p + 1) // order
    results = []
    for value, ninv in zip(values, norm_invs):
        a, b = value
        inverse = (a * ninv % p, -b * ninv % p)
        powered = ext.mul(ext.conjugate(value), inverse)
        results.append(ext.pow(powered, cofactor))
    return results

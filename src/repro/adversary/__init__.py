"""Adversarial scenario engine: semantic attacks with checked invariants.

See :mod:`repro.adversary.engine` for the verdict semantics and
:mod:`repro.adversary.scenarios` for the built-in attacks.
"""

from repro.adversary.drivers import (
    AttackOutcome,
    attempt_component_decrypt,
    forge_key_version,
    forge_public_key,
    pool_secret_keys,
    relabel_key,
    snapshot_keys,
)
from repro.adversary.engine import (
    SCENARIOS,
    InvariantResult,
    ScenarioContext,
    ScenarioSpec,
    get_scenario,
    run_matrix,
    run_scenario,
    scenario,
    scenario_names,
)

__all__ = [
    "AttackOutcome",
    "InvariantResult",
    "SCENARIOS",
    "ScenarioContext",
    "ScenarioSpec",
    "attempt_component_decrypt",
    "forge_key_version",
    "forge_public_key",
    "get_scenario",
    "pool_secret_keys",
    "relabel_key",
    "run_matrix",
    "run_scenario",
    "scenario",
    "scenario_names",
    "snapshot_keys",
]

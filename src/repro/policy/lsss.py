"""Linear secret-sharing schemes (LSSS) from boolean policies.

Implements the Lewko-Waters conversion (EUROCRYPT 2011, Appendix G) from
a monotone AND/OR formula to a share-generating matrix ``M`` with a row
labelling function ρ. Threshold gates are first expanded to AND/OR form
by :meth:`repro.policy.ast.PolicyNode.expand_thresholds`.

Properties delivered (and property-tested):

* for an *authorized* attribute set there exist constants ``w_i`` with
  ``Σ w_i · M_i = (1, 0, …, 0)``, hence ``Σ w_i λ_i = s`` for any shares
  ``λ_i = M_i · v`` with ``v = (s, y_2, …, y_n)``;
* for an *unauthorized* set, ``(1, 0, …, 0)`` is not in the row span, so
  the shares reveal nothing about ``s`` (information-theoretically).

The conversion algorithm labels the root with the vector ``(1)`` and a
counter ``c = 1``. An OR gate passes its vector to both children; an AND
gate pads its vector to length ``c`` with zeros, gives one child the
padded vector with ``1`` appended and the other ``(0^c, -1)``, then
increments ``c``. Leaf vectors, padded to the final ``c``, are the matrix
rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError, PolicyNotSatisfiedError
from repro.math import linalg
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold
from repro.policy.parser import parse


@dataclass(frozen=True)
class LsssMatrix:
    """A share-generating matrix with its row-to-attribute labelling ρ."""

    rows: tuple            # tuple of int-tuples, each of length n_cols
    row_labels: tuple      # ρ: row index -> attribute name
    n_cols: int
    policy: PolicyNode     # the originating formula
    method: str = "expand"  # threshold handling used to build the matrix

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def is_injective(self) -> bool:
        """True iff ρ maps each attribute to at most one row.

        The paper's construction "limits ρ to be an injective function";
        the core scheme enforces this by default (see
        :func:`repro.core.encrypt.encrypt`).
        """
        return len(set(self.row_labels)) == len(self.row_labels)

    def rows_for(self, attribute_set):
        """Indices of rows labelled by attributes the user holds."""
        attribute_set = set(attribute_set)
        return [
            index for index, label in enumerate(self.row_labels)
            if label in attribute_set
        ]

    def share(self, secret: int, order: int, rng) -> dict:
        """Shares {row index: λ_i} of ``secret`` with fresh randomness.

        Draws ``v = (secret, y_2, …, y_n)`` with uniform ``y_j`` and
        returns ``λ_i = M_i · v mod order``.
        """
        vector = [secret % order] + [
            rng.randrange(order) for _ in range(self.n_cols - 1)
        ]
        return {
            index: linalg.dot(list(row), vector, order)
            for index, row in enumerate(self.rows)
        }

    def is_satisfied_by(self, attribute_set, order: int) -> bool:
        """True iff the attribute set is authorized (target in row span)."""
        selected = [list(self.rows[i]) for i in self.rows_for(attribute_set)]
        if not selected:
            return False
        target = [1] + [0] * (self.n_cols - 1)
        return linalg.in_span(selected, target, order)

    def reconstruction_coefficients(self, attribute_set, order: int) -> dict:
        """Constants {row index: w_i} with Σ w_i·M_i = (1,0,…,0).

        Raises :class:`PolicyNotSatisfiedError` when the set is not
        authorized. Rows with coefficient 0 are omitted, so decryption
        only pays for the rows it actually uses.
        """
        indices = self.rows_for(attribute_set)
        selected = [list(self.rows[i]) for i in indices]
        target = [1] + [0] * (self.n_cols - 1)
        solution = linalg.solve_combination(selected, target, order) if selected else None
        if solution is None:
            raise PolicyNotSatisfiedError(
                f"attribute set does not satisfy policy {self.policy}"
            )
        return {
            index: coefficient
            for index, coefficient in zip(indices, solution)
            if coefficient != 0
        }


# Bounded memo of matrices built from *string* policies, keyed by
# (source, threshold method). LsssMatrix is a frozen dataclass over
# tuples, so one shared instance per policy is safe; the Lewko-Waters
# conversion (and the parse feeding it) then runs once per policy
# instead of once per Encrypt. AST inputs are not memoized — nodes
# hash by structure but callers rarely resubmit identical trees.
MAX_LSSS_CACHE = 256
_lsss_cache = {}
_lsss_stats = {"hits": 0, "misses": 0}


def lsss_cache_stats() -> dict:
    """Hit/miss counters of the string-policy LSSS memo (a copy)."""
    return dict(_lsss_stats)


def clear_lsss_cache() -> None:
    """Drop the LSSS memo and zero its counters (test isolation)."""
    _lsss_cache.clear()
    _lsss_stats["hits"] = 0
    _lsss_stats["misses"] = 0


def lsss_from_policy(policy, threshold_method: str = "expand",
                     meter=None) -> LsssMatrix:
    """Build the LSSS matrix for a policy (string or AST).

    String policies are memoized in a bounded cache (see
    :func:`lsss_cache_stats`); ``meter``, when given, is a duck-typed
    counter sink — every call bumps its ``lsss-cache-hit`` or
    ``lsss-cache-miss`` counter via ``meter.bump`` (kept duck-typed so
    the policy layer needs no import of :mod:`repro.system.meter`).

    ``threshold_method`` selects how k-of-n gates are handled:

    * ``"expand"`` (default, the paper-faithful route): thresholds are
      rewritten as OR-of-ANDs first, costing C(n, k) rows per underlying
      attribute occurrence and making ρ non-injective;
    * ``"insert"``: thresholds are embedded directly via the Vandermonde
      insertion construction — a (t, n) gate with parent vector ``v``
      adds ``t - 1`` fresh columns and gives child ``j`` the row
      ``(v | j, j², …, j^{t-1})``, exactly n rows total. This keeps ρ
      injective whenever the gate's subtrees use distinct attributes,
      so the core scheme can encrypt genuine threshold policies without
      relaxing the paper's injectivity requirement.

    Both constructions satisfy the LSSS share/reconstruct properties (the
    property tests exercise them side by side).
    """
    if threshold_method not in ("expand", "insert"):
        raise PolicyError(
            f"unknown threshold_method {threshold_method!r}; "
            f"use 'expand' or 'insert'"
        )
    cache_key = None
    if isinstance(policy, str):
        cache_key = (policy, threshold_method)
        cached = _lsss_cache.get(cache_key)
        if cached is not None:
            _lsss_stats["hits"] += 1
            if meter is not None:
                meter.bump("lsss-cache-hit")
            return cached
        _lsss_stats["misses"] += 1
        if meter is not None:
            meter.bump("lsss-cache-miss")
    node = parse(policy)
    if threshold_method == "expand":
        node = node.expand_thresholds()
    vectors = []   # parallel lists: leaf vectors (variable length) ...
    labels = []    # ... and their attribute labels
    counter = [1]  # current vector length c, boxed for the nested function

    def assign_threshold(current, vector: list):
        """Vandermonde insertion for a native k-of-n gate."""
        t = current.k
        children = current.children
        if t == 1:
            for child in children:
                assign(child, list(vector))
            return
        base_index = counter[0]
        counter[0] += t - 1
        for position, child in enumerate(children, start=1):
            padded = list(vector) + [0] * (base_index - len(vector))
            power = position
            for _ in range(t - 1):
                padded.append(power)
                power = power * position
            assign(child, padded)

    def assign(current: PolicyNode, vector: list):
        if isinstance(current, Attribute):
            vectors.append(vector)
            labels.append(current.name)
        elif isinstance(current, Or):
            for child in current.children:
                assign(child, list(vector))
        elif isinstance(current, Threshold):
            assign_threshold(current, vector)
        elif isinstance(current, And):
            # Fold an n-ary AND as a chain of binary ANDs. Each binary AND
            # claims a fresh coordinate index *before* recursing so the +1
            # given to one child and the -1 kept for the rest stay aligned
            # even when the recursion grows the counter further.
            remaining = list(current.children)
            working = vector
            while len(remaining) > 1:
                child = remaining.pop(0)
                fresh_index = counter[0]
                counter[0] += 1
                padded = working + [0] * (fresh_index - len(working))
                assign(child, padded + [1])
                working = [0] * fresh_index + [-1]
            assign(remaining[0], working)
        else:  # pragma: no cover - expand_thresholds removed Threshold nodes
            raise PolicyError(f"unexpected node type {type(current).__name__}")

    assign(node, [1])
    width = counter[0]
    rows = tuple(
        tuple(vector + [0] * (width - len(vector))) for vector in vectors
    )
    matrix = LsssMatrix(
        rows=rows,
        row_labels=tuple(labels),
        n_cols=width,
        policy=node,
        method=threshold_method,
    )
    if cache_key is not None:
        if len(_lsss_cache) >= MAX_LSSS_CACHE:
            _lsss_cache.pop(next(iter(_lsss_cache)))
        _lsss_cache[cache_key] = matrix
    return matrix

"""Units for the workload primitives: Zipf popularity and op mixes."""

import random
from collections import Counter

import pytest

from repro.loadgen.workload import OP_CLASSES, OpMix, ZipfPopularity


# -- ZipfPopularity -----------------------------------------------------------

def test_zipf_cdf_is_monotone_and_complete():
    zipf = ZipfPopularity(100, alpha=1.1)
    assert all(a < b for a, b in zip(zipf._cdf, zipf._cdf[1:]))
    assert zipf._cdf[-1] == 1.0


def test_zipf_samples_stay_in_range_and_skew_hot():
    zipf = ZipfPopularity(50, alpha=1.2)
    rng = random.Random(1)
    counts = Counter(zipf.sample(rng) for _ in range(5000))
    assert set(counts) <= set(range(50))
    # Rank 0 is the hottest record by a wide margin.
    assert counts[0] > counts.get(10, 0) > counts.get(49, 0)
    # The head dominates: top 5 ranks absorb most of the traffic.
    head = sum(counts[rank] for rank in range(5))
    assert head > 2500


def test_zipf_alpha_zero_degenerates_to_uniform():
    zipf = ZipfPopularity(10, alpha=0.0)
    rng = random.Random(2)
    counts = Counter(zipf.sample(rng) for _ in range(10000))
    assert set(counts) == set(range(10))
    assert max(counts.values()) < 2 * min(counts.values())


def test_zipf_sampling_is_deterministic_per_seed():
    zipf = ZipfPopularity(32, alpha=1.1)
    draws = [zipf.sample(random.Random(7)) for _ in range(3)]
    assert draws[0] == draws[1] == draws[2]


def test_zipf_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ZipfPopularity(0)
    with pytest.raises(ValueError):
        ZipfPopularity(10, alpha=-0.5)


# -- OpMix --------------------------------------------------------------------

def test_mix_normalizes_weights():
    mix = OpMix(fetch=8, upload=2)
    assert mix.weights["fetch"] == pytest.approx(0.8)
    assert mix.weights["upload"] == pytest.approx(0.2)
    assert mix.weights["replace"] == 0.0
    assert mix.weights["sweep"] == 0.0


def test_mix_parse_round_trips_the_cli_form():
    mix = OpMix.parse(
        "fetch=0.55, decrypt=0.25, upload=0.1, replace=0.08, sweep=0.02"
    )
    assert mix.as_dict() == pytest.approx(OpMix.default().as_dict())


def test_decrypt_only_is_pure_user_reads():
    mix = OpMix.decrypt_only()
    rng = random.Random(5)
    assert {mix.sample(rng) for _ in range(100)} == {"decrypt"}
    assert mix.weights["decrypt"] == 1.0


def test_mix_parse_rejects_malformed_entries():
    with pytest.raises(ValueError, match="class=weight"):
        OpMix.parse("fetch")
    with pytest.raises(ValueError, match="malformed op-mix weight"):
        OpMix.parse("fetch=lots")
    with pytest.raises(ValueError, match="unknown op classes"):
        OpMix.parse("fetchh=1.0")


def test_mix_rejects_degenerate_weights():
    with pytest.raises(ValueError, match="non-negative"):
        OpMix(fetch=1.0, upload=-0.1)
    with pytest.raises(ValueError, match="positive weight"):
        OpMix(fetch=0.0)


def test_mix_sample_never_emits_zero_weight_classes():
    mix = OpMix(fetch=0.9, upload=0.1)
    rng = random.Random(3)
    drawn = {mix.sample(rng) for _ in range(2000)}
    assert drawn == {"fetch", "upload"}


def test_fetch_only_is_pure_reads():
    mix = OpMix.fetch_only()
    rng = random.Random(4)
    assert {mix.sample(rng) for _ in range(100)} == {"fetch"}
    assert mix.weights["fetch"] == 1.0


def test_default_mix_covers_every_class():
    weights = OpMix.default().weights
    assert set(weights) == set(OP_CLASSES)
    assert all(weight > 0 for weight in weights.values())
    assert sum(weights.values()) == pytest.approx(1.0)

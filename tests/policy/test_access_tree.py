"""Tests for threshold access trees (the BSW substrate)."""

import itertools
import random

import pytest

from repro.errors import PolicyNotSatisfiedError
from repro.policy.access_tree import (
    TreeGate,
    TreeLeaf,
    build_tree,
    reconstruction_coefficients,
    share_secret,
    tree_satisfied,
)

ORDER = 0x8BE5EA5F01D1943560CD

POLICIES = [
    "a",
    "a AND b",
    "a OR b",
    "2 of (a, b, c)",
    "3 of (a, b, c, d)",
    "a AND (b OR 2 of (c, d, e))",
    "2 of (a AND b, c, d OR e)",
]


def _universe(leaves):
    return sorted({leaf.attribute for leaf in leaves})


class TestBuildTree:
    def test_and_becomes_n_of_n(self):
        root, leaves = build_tree("a AND b AND c")
        assert isinstance(root, TreeGate)
        assert root.k == 3
        assert len(leaves) == 3

    def test_or_becomes_1_of_n(self):
        root, _ = build_tree("a OR b")
        assert root.k == 1

    def test_threshold_not_expanded(self):
        root, leaves = build_tree("5 of (a, b, c, d, e, f, g, h, i)")
        assert root.k == 5
        assert len(leaves) == 9  # no combinatorial blowup

    def test_leaf_indices_dfs(self):
        _, leaves = build_tree("a AND (b OR c)")
        assert [leaf.index for leaf in leaves] == [0, 1, 2]
        assert [leaf.attribute for leaf in leaves] == ["a", "b", "c"]

    def test_single_leaf(self):
        root, leaves = build_tree("only")
        assert isinstance(root, TreeLeaf)
        assert len(leaves) == 1


class TestShareReconstruct:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_reconstruction_matches_evaluation(self, policy):
        rng = random.Random(hash(policy) & 0xFFFF)
        root, leaves = build_tree(policy)
        secret = rng.randrange(ORDER)
        shares = share_secret(root, secret, ORDER, rng)
        universe = _universe(leaves)
        from repro.policy.parser import parse

        formula = parse(policy)
        for size in range(len(universe) + 1):
            for subset_tuple in itertools.combinations(universe, size):
                subset = set(subset_tuple)
                if formula.evaluate(subset):
                    weights = reconstruction_coefficients(root, subset, ORDER)
                    recovered = (
                        sum(weights[i] * shares[i] for i in weights) % ORDER
                    )
                    assert recovered == secret, (policy, subset)
                    assert tree_satisfied(root, subset)
                else:
                    assert not tree_satisfied(root, subset)
                    with pytest.raises(PolicyNotSatisfiedError):
                        reconstruction_coefficients(root, subset, ORDER)

    def test_used_leaves_hold_attributes(self):
        root, leaves = build_tree("a OR (b AND c)")
        weights = reconstruction_coefficients(root, {"b", "c"}, ORDER)
        used = {leaves[i].attribute for i in weights}
        assert used <= {"b", "c"}

    def test_duplicate_attribute_leaves(self):
        # The same attribute may appear at several leaves of a tree.
        root, leaves = build_tree("(a AND b) OR (a AND c)")
        rng = random.Random(3)
        secret = 777
        shares = share_secret(root, secret, ORDER, rng)
        weights = reconstruction_coefficients(root, {"a", "c"}, ORDER)
        assert sum(weights[i] * shares[i] for i in weights) % ORDER == secret

    def test_shares_cover_all_leaves(self):
        root, leaves = build_tree("2 of (a, b, c, d)")
        shares = share_secret(root, 1, ORDER, random.Random(0))
        assert set(shares) == {leaf.index for leaf in leaves}

"""Shared fixtures: one session-scoped TOY80 pairing group.

All unit/property tests run on the TOY80 preset (80-bit order, 160-bit
base field) so a single pairing costs ~5 ms; the SS512 preset that
matches the paper's α-curve is exercised by a dedicated smoke test and
by the benchmark harness.
"""

import random

import pytest
from hypothesis import settings

from repro.ec.params import TOY80
from repro.pairing.group import PairingGroup

settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def group():
    """A shared TOY80 pairing group (sampling state is shared; tests must
    not depend on specific random draws)."""
    return PairingGroup(TOY80, seed=0x5EED)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return random.Random(0xA11CE)

"""A minimal cloud deployment of the Lewko-Waters baseline.

The reproduced paper measures its own scheme inside a full system model;
to make the Table IV comparison apples-to-apples, this module wires the
Lewko-Waters scheme through the *same* byte-metered network and the same
Fig-2 hybrid layout (ABE ciphertext of a GT session element + symmetric
body). The bench can then report measured bytes for both schemes.

Deliberately minimal: Lewko-Waters has no owner-scoped keys (any
encryptor uses the public attribute keys) and no revocation protocol —
"they did not consider attribute revocation, which is one of the major
challenges" — so this system exposes only enrolment, issuance, upload
and read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import lewko
from repro.crypto import symmetric
from repro.crypto.hybrid import open_sealed, seal
from repro.errors import AuthorizationError, SchemeError, StorageError
from repro.pairing.group import PairingGroup
from repro.system.entities import Entity
from repro.system.network import (
    ROLE_AA,
    ROLE_OWNER,
    ROLE_SERVER,
    ROLE_USER,
    Network,
)


@dataclass(frozen=True)
class LewkoStoredComponent:
    """Fig-2 pair for the baseline: (Lewko CT, symmetric body)."""

    name: str
    abe_ciphertext: lewko.LewkoCiphertext
    data_ciphertext: symmetric.SymmetricCiphertext

    def payload_size_bytes(self, group: PairingGroup) -> int:
        return self.abe_ciphertext.element_size_bytes(group) + len(
            self.data_ciphertext
        )


@dataclass(frozen=True)
class LewkoStoredRecord:
    record_id: str
    owner_id: str
    components: dict

    def component(self, name: str) -> LewkoStoredComponent:
        try:
            return self.components[name]
        except KeyError:
            raise StorageError(
                f"record {self.record_id!r} has no component {name!r}"
            ) from None

    def payload_size_bytes(self, group: PairingGroup) -> int:
        return sum(
            component.payload_size_bytes(group)
            for component in self.components.values()
        )


class LewkoAuthorityEntity(Entity):
    role = ROLE_AA

    def __init__(self, name, network, core: lewko.LewkoAuthority):
        super().__init__(name, network)
        self.core = core

    def publish_to_owner(self, owner: "LewkoOwnerEntity") -> None:
        public = self.core.public_key()
        self.send(owner, "public-attribute-keys", public)
        owner.learn_public_keys(public)

    def issue_key(self, user: "LewkoUserEntity", attributes):
        key = self.core.keygen(user.gid, attributes)
        self.send(user, "user-secret-key", key)
        user.receive_key(key)
        return key


class LewkoOwnerEntity(Entity):
    role = ROLE_OWNER

    def __init__(self, name, network, owner_id: str):
        super().__init__(name, network)
        self.owner_id = owner_id
        self._public_keys = {}

    def learn_public_keys(self, public: lewko.LewkoAuthorityPublicKey):
        self._public_keys.update(public.elements)
        # Every upload exponentiates each policy attribute's e(g,g)^{α_i}
        # and g^{y_i}: precompute fixed-base tables once per learned key
        # so the per-ciphertext cost drops to table lookups.
        group = self.network.group
        for pk in public.elements.values():
            group.register_gt_base(pk.e_alpha)
            group.register_g1_base(pk.g_y)

    def upload(self, server: "LewkoServerEntity", record_id: str,
               components: dict) -> LewkoStoredRecord:
        group = self.network.group
        stored = {}
        for component_name, (plaintext, policy) in components.items():
            session = group.random_gt()
            abe_ciphertext = lewko.encrypt(
                group, session, policy, self._public_keys
            )
            stored[component_name] = LewkoStoredComponent(
                name=component_name,
                abe_ciphertext=abe_ciphertext,
                data_ciphertext=seal(
                    session, f"{record_id}/{component_name}", plaintext
                ),
            )
        record = LewkoStoredRecord(
            record_id=record_id, owner_id=self.owner_id, components=stored
        )
        self.send(server, "store-record", record)
        server.store(record)
        return record


class LewkoUserEntity(Entity):
    role = ROLE_USER

    def __init__(self, name, network, gid: str):
        super().__init__(name, network)
        self.gid = gid
        self._keys = {}   # aid -> LewkoUserKey

    def receive_key(self, key: lewko.LewkoUserKey):
        if key.gid != self.gid:
            raise SchemeError("received a key for a different GID")
        self._keys[key.aid] = key

    def read(self, server: "LewkoServerEntity", record_id: str,
             component_name: str) -> bytes:
        group = self.network.group
        self.send(server, "read-request", f"{record_id}/{component_name}")
        component = server.fetch_component(self, record_id, component_name)
        if not self._keys:
            raise AuthorizationError(f"user {self.gid!r} holds no keys")
        session = lewko.decrypt(
            group, component.abe_ciphertext, self.gid, self._keys
        )
        return open_sealed(
            session, f"{record_id}/{component_name}",
            component.data_ciphertext,
        )


class LewkoServerEntity(Entity):
    role = ROLE_SERVER

    def __init__(self, name, network):
        super().__init__(name, network)
        self._records = {}

    def store(self, record: LewkoStoredRecord) -> None:
        self._records[record.record_id] = record

    def record(self, record_id: str) -> LewkoStoredRecord:
        try:
            return self._records[record_id]
        except KeyError:
            raise StorageError(f"no record {record_id!r}") from None

    def fetch_component(self, user, record_id, component_name):
        component = self.record(record_id).component(component_name)
        self.send(user, "component-download", component)
        return component

    def storage_bytes(self) -> int:
        return sum(
            record.payload_size_bytes(self.network.group)
            for record in self._records.values()
        )


class LewkoCloudSystem:
    """The baseline deployment: authorities, one server, owners, users."""

    def __init__(self, params, seed=None):
        self.group = PairingGroup(params, seed=seed)
        self.network = Network(self.group)
        self.server = LewkoServerEntity("cloud", self.network)
        self.authorities = {}
        self.owners = {}
        self.users = {}

    def add_authority(self, aid: str, attributes) -> LewkoAuthorityEntity:
        entity = LewkoAuthorityEntity(
            f"AA:{aid}", self.network,
            lewko.LewkoAuthority(self.group, aid, attributes),
        )
        self.authorities[aid] = entity
        for owner in self.owners.values():
            entity.publish_to_owner(owner)
        return entity

    def add_owner(self, owner_id: str) -> LewkoOwnerEntity:
        entity = LewkoOwnerEntity(
            f"owner:{owner_id}", self.network, owner_id
        )
        for authority in self.authorities.values():
            authority.publish_to_owner(entity)
        self.owners[owner_id] = entity
        return entity

    def add_user(self, gid: str) -> LewkoUserEntity:
        entity = LewkoUserEntity(f"user:{gid}", self.network, gid)
        self.users[gid] = entity
        return entity

    def issue_keys(self, gid: str, aid: str, attributes):
        return self.authorities[aid].issue_key(self.users[gid], attributes)

    def upload(self, owner_id: str, record_id: str, components: dict):
        return self.owners[owner_id].upload(
            self.server, record_id, components
        )

    def read(self, gid: str, record_id: str, component_name: str) -> bytes:
        return self.users[gid].read(self.server, record_id, component_name)

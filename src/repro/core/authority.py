"""Attribute authorities: AASetup, KeyGen and ReKey (Sections V-B, V-C).

An :class:`AttributeAuthority` manages a set of attributes inside its
own domain, independently of every other authority. Its entire secret
state is the *version key* ``VK_AID = α_AID`` — the asymmetry the paper
highlights in Table III (|p| bytes at the AA versus 2·n_k·|p| in
Lewko's scheme).

Key generation requires the requesting owner's ``SK_o = {g^{1/β}, r/β}``
(owners hand it to every AA over a secure channel at Owner Setup), which
is what lets the AA produce the owner-scoped component
``K_{UID,AID} = PK_UID^{r/β} · g^{α/β}`` without learning β or r.

ReKey implements attribute revocation's first phase: draw a fresh
``α̃``, re-issue the revoked user's key on its reduced attribute set, and
emit the update key ``UK = (UK1 = g^{(α̃-α)/β}, UK2 = α̃/α)`` that
non-revoked users, owners and the server use to roll forward.
"""

from __future__ import annotations

from repro.core.attributes import qualify, validate_identifier
from repro.core.keys import (
    AuthorityPublicKey,
    OwnerSecretKey,
    PublicAttributeKeys,
    UpdateKey,
    UserPublicKey,
    UserSecretKey,
    VersionKey,
)
from repro.errors import RevocationError, SchemeError
from repro.math.integers import invmod
from repro.pairing.group import PairingGroup


class AttributeAuthority:
    """Crypto state and algorithms of one AA (AID, version key, registries)."""

    def __init__(self, group: PairingGroup, aid: str, attributes):
        validate_identifier(aid, "authority id")
        self.group = group
        self.aid = aid
        self._attributes = set()
        for name in attributes:
            validate_identifier(name, "attribute name")
            self._attributes.add(name)
        if not self._attributes:
            raise SchemeError(f"authority {aid!r} must manage at least one attribute")
        self._alpha = group.random_scalar()
        self._version = 0
        self._owner_keys = {}      # owner id -> OwnerSecretKey
        self._user_public = {}     # uid -> UserPublicKey
        # (uid, owner id) -> set of qualified attributes currently held
        self._issued = {}
        self._keygen_sessions = {}  # (owner id, attrs) -> KeyGenSession

    # -- identifiers and naming -----------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def attributes(self) -> frozenset:
        """Unqualified attribute names this authority manages."""
        return frozenset(self._attributes)

    def qualified(self, attribute: str) -> str:
        """The fully-qualified name of one of this AA's attributes."""
        if attribute not in self._attributes:
            raise SchemeError(
                f"authority {self.aid!r} does not manage attribute {attribute!r}"
            )
        return qualify(self.aid, attribute)

    def qualified_attributes(self) -> frozenset:
        return frozenset(qualify(self.aid, name) for name in self._attributes)

    def add_attribute(self, attribute: str) -> str:
        """Start managing a new attribute (the AA's "setting … attributes"
        duty from the system model).

        No re-keying is needed: the public attribute key
        ``g^{α·H(aid:attr)}`` derives from the current version key, so
        existing user keys and ciphertexts are untouched. The authority
        must republish its public attribute keys to owners afterwards.
        Returns the qualified name.
        """
        validate_identifier(attribute, "attribute name")
        if attribute in self._attributes:
            raise SchemeError(
                f"authority {self.aid!r} already manages {attribute!r}"
            )
        self._attributes.add(attribute)
        return qualify(self.aid, attribute)

    # -- published key material ---------------------------------------------------

    def version_key(self) -> VersionKey:
        """``VK_AID = α_AID`` — the AA's entire secret state."""
        return VersionKey(aid=self.aid, alpha=self._alpha, version=self._version)

    def authority_public_key(self) -> AuthorityPublicKey:
        """``PK_{o,AID} = e(g,g)^{α_AID}`` (used by owners for encryption)."""
        return AuthorityPublicKey(
            aid=self.aid, value=self.group.gt ** self._alpha, version=self._version
        )

    def public_attribute_keys(self) -> PublicAttributeKeys:
        """``PK_{x,AID} = g^{α_AID·H(x)}`` for every managed attribute."""
        elements = {}
        for name in self._attributes:
            qualified_name = qualify(self.aid, name)
            exponent = self._alpha * self.group.hash_to_scalar(qualified_name)
            elements[qualified_name] = self.group.g ** exponent
        return PublicAttributeKeys(
            aid=self.aid, elements=elements, version=self._version
        )

    # -- owner registration ----------------------------------------------------------

    def register_owner(self, owner_secret: OwnerSecretKey) -> None:
        """Receive ``SK_o`` from an owner (the paper's secure channel)."""
        self._owner_keys[owner_secret.owner_id] = owner_secret

    def knows_owner(self, owner_id: str) -> bool:
        return owner_id in self._owner_keys

    @property
    def registered_owners(self) -> frozenset:
        return frozenset(self._owner_keys)

    # -- KeyGen -------------------------------------------------------------------

    def keygen(self, user_public_key: UserPublicKey, attributes,
               owner_id: str) -> UserSecretKey:
        """Issue ``SK_{UID,AID}`` for a user's attribute set (Phase 2).

        ``attributes`` are unqualified names that must all be managed by
        this authority; the authority "first authenticates whether the
        user has any attributes managed by this authority", which in this
        simulation is the caller's responsibility (the system layer
        routes requests through the AA's own registry).
        """
        owner_secret = self._owner_keys.get(owner_id)
        if owner_secret is None:
            raise SchemeError(
                f"authority {self.aid!r} has no secret key from owner {owner_id!r}"
            )
        attribute_set = set(attributes)
        unknown = attribute_set - self._attributes
        if unknown:
            raise SchemeError(
                f"authority {self.aid!r} does not manage {sorted(unknown)}"
            )
        pk_uid = user_public_key.element
        # PK_UID is exponentiated once per attribute plus once for K; a
        # fixed-base table amortizes across this KeyGen and any later
        # ones for the same user (other owners, re-keying).
        self.group.register_g1_base(pk_uid)
        # K = PK_UID^{r/β} · (g^{1/β})^α = g^{(u·r + α)/β}, as one
        # two-term multi-exponentiation (still counted as 2 G exps).
        k = self.group.multiexp_g1(
            (pk_uid, owner_secret.g_inv_beta),
            (owner_secret.r_over_beta, self._alpha),
        )
        attribute_keys = {}
        for name in attribute_set:
            qualified_name = qualify(self.aid, name)
            exponent = self._alpha * self.group.hash_to_scalar(qualified_name)
            attribute_keys[qualified_name] = pk_uid ** exponent
        self.note_issued(user_public_key, owner_id, attribute_keys)
        return UserSecretKey(
            uid=user_public_key.uid,
            aid=self.aid,
            owner_id=owner_id,
            k=k,
            attribute_keys=attribute_keys,
            version=self._version,
        )

    def note_issued(self, user_public_key: UserPublicKey, owner_id: str,
                    qualified_names) -> None:
        """Record one key issuance in the AA's registries.

        The single registry entry point shared by :meth:`keygen` and
        :class:`repro.fastpath.keygen.KeyGenSession`, so ReKey's
        holdings scan sees identical state whichever path issued the
        key.
        """
        self._user_public[user_public_key.uid] = user_public_key
        self._issued[(user_public_key.uid, owner_id)] = frozenset(
            qualified_names
        )

    def keygen_session_material(self, owner_id: str, attributes) -> tuple:
        """Snapshot for a :class:`~repro.fastpath.keygen.KeyGenSession`.

        Validates the owner/attribute set exactly as :meth:`keygen`
        would, then returns ``(qualified names, exponents, K constant)``
        where ``exponents[0] = r/β`` (the ``K`` component's per-user
        exponent), ``exponents[1:]`` are ``α·H(x)`` per attribute in
        the returned name order, and the constant is ``(g^{1/β})^α`` —
        keeping ``α`` itself encapsulated in the authority.
        """
        owner_secret = self._owner_keys.get(owner_id)
        if owner_secret is None:
            raise SchemeError(
                f"authority {self.aid!r} has no secret key from owner "
                f"{owner_id!r}"
            )
        attribute_set = set(attributes)
        unknown = attribute_set - self._attributes
        if unknown:
            raise SchemeError(
                f"authority {self.aid!r} does not manage {sorted(unknown)}"
            )
        qualified = tuple(sorted(
            qualify(self.aid, name) for name in attribute_set
        ))
        order = self.group.order
        exponents = [owner_secret.r_over_beta] + [
            self._alpha * self.group.hash_to_scalar(name) % order
            for name in qualified
        ]
        return qualified, exponents, owner_secret.g_inv_beta ** self._alpha

    def keygen_session(self, owner_id: str, attributes):
        """A cached :class:`~repro.fastpath.keygen.KeyGenSession` for
        bulk onboarding over a fixed attribute set.

        Sessions are keyed by (owner, attribute set) and snapshotted at
        the current key version; once :meth:`rekey` bumps the version
        the cached session goes stale and is rebuilt here under the
        fresh ``α`` (a stale session refuses to issue on its own).
        """
        from repro.fastpath.keygen import KeyGenSession

        cache_key = (owner_id, frozenset(attributes))
        session = self._keygen_sessions.get(cache_key)
        if session is not None and session.version == self._version:
            return session
        session = KeyGenSession(self, owner_id, attributes)
        if len(self._keygen_sessions) >= 32:
            self._keygen_sessions.pop(next(iter(self._keygen_sessions)))
        self._keygen_sessions[cache_key] = session
        return session

    def issued_attributes(self, uid: str, owner_id: str) -> frozenset:
        return self._issued.get((uid, owner_id), frozenset())

    def issued_registry(self) -> dict:
        """Snapshot of {(uid, owner id): qualified attribute set} issued so far."""
        return dict(self._issued)

    def user_public_key_on_file(self, uid: str) -> UserPublicKey:
        try:
            return self._user_public[uid]
        except KeyError:
            raise SchemeError(
                f"authority {self.aid!r} has no public key on file for {uid!r}"
            ) from None

    # -- ReKey (attribute revocation, phase 1) -----------------------------------------

    def rekey(self, revoked_uid: str, revoked_attributes) -> tuple:
        """Revoke attributes from a user; returns ``(new_keys, update_key)``.

        * draws a fresh version key ``α̃`` (bumping the version counter);
        * re-issues the revoked user's secret keys on the reduced set
          ``S̃ = S \\ revoked`` for every owner it held keys for
          (``new_keys`` maps owner id → :class:`UserSecretKey`);
        * returns the :class:`UpdateKey` ``(UK1 per owner, UK2)`` for
          everyone else.

        The caller (system layer) distributes the update key to all
        *other* users, all owners, and the server — "but the one with
        UID'" as the paper puts it.
        """
        revoked_attributes = set(revoked_attributes)
        unknown = revoked_attributes - self._attributes
        if unknown:
            raise RevocationError(
                f"authority {self.aid!r} does not manage {sorted(unknown)}"
            )
        holdings = [
            (owner_id, attrs)
            for (uid, owner_id), attrs in self._issued.items()
            if uid == revoked_uid
        ]
        if not holdings:
            raise RevocationError(
                f"user {revoked_uid!r} holds no keys from authority {self.aid!r}"
            )
        revoked_qualified = {qualify(self.aid, name) for name in revoked_attributes}
        old_alpha = self._alpha
        new_alpha = self.group.random_scalar()
        while new_alpha == old_alpha:
            new_alpha = self.group.random_scalar()  # pragma: no cover
        self._alpha = new_alpha
        old_version = self._version
        self._version += 1

        user_public = self._user_public.get(revoked_uid)
        if user_public is None:  # defensive: _issued implies _user_public
            raise RevocationError(f"no public key on file for {revoked_uid!r}")

        new_keys = {}
        for owner_id, held in holdings:
            reduced = {
                name.split(":", 1)[1] for name in (set(held) - revoked_qualified)
            }
            if reduced:
                new_keys[owner_id] = self.keygen(user_public, reduced, owner_id)
            else:
                # All attributes gone: drop the registry entry entirely.
                del self._issued[(revoked_uid, owner_id)]

        uk2 = new_alpha * invmod(old_alpha, self.group.order) % self.group.order
        delta = (new_alpha - old_alpha) % self.group.order
        uk1 = {
            owner_id: owner_secret.g_inv_beta ** delta
            for owner_id, owner_secret in self._owner_keys.items()
        }
        update_key = UpdateKey(
            aid=self.aid,
            uk1=uk1,
            uk2=uk2,
            from_version=old_version,
            to_version=self._version,
        )
        return new_keys, update_key


def apply_update_key(secret_key: UserSecretKey, update_key: UpdateKey) -> UserSecretKey:
    """Non-revoked user's key update (Section V-C, Key Update step 2).

    ``K̃ = K · UK1_owner`` and ``K̃_x = K_x^{UK2}`` — constant work in the
    number of system users, which is the efficiency point of the paper's
    revocation design.
    """
    if secret_key.aid != update_key.aid:
        raise RevocationError(
            f"update key is for authority {update_key.aid!r}, "
            f"secret key is from {secret_key.aid!r}"
        )
    if secret_key.version != update_key.from_version:
        raise RevocationError(
            f"secret key at version {secret_key.version} cannot apply update "
            f"{update_key.from_version}->{update_key.to_version}"
        )
    uk1 = update_key.uk1.get(secret_key.owner_id)
    if uk1 is None:
        raise RevocationError(
            f"update key carries no UK1 for owner {secret_key.owner_id!r}"
        )
    return UserSecretKey(
        uid=secret_key.uid,
        aid=secret_key.aid,
        owner_id=secret_key.owner_id,
        k=secret_key.k * uk1,
        attribute_keys={
            name: element ** update_key.uk2
            for name, element in secret_key.attribute_keys.items()
        },
        version=update_key.to_version,
    )


def apply_update_to_public_keys(public_keys: PublicAttributeKeys,
                                update_key: UpdateKey) -> PublicAttributeKeys:
    """Owner-side public-key roll-forward: ``PK̃_x = PK_x^{UK2}``."""
    if public_keys.aid != update_key.aid:
        raise RevocationError("update key and public attribute keys disagree on AID")
    if public_keys.version != update_key.from_version:
        raise RevocationError(
            f"public keys at version {public_keys.version} cannot apply update "
            f"{update_key.from_version}->{update_key.to_version}"
        )
    return PublicAttributeKeys(
        aid=public_keys.aid,
        elements={
            name: element ** update_key.uk2
            for name, element in public_keys.elements.items()
        },
        version=update_key.to_version,
    )


def apply_update_to_authority_public_key(public_key: AuthorityPublicKey,
                                         update_key: UpdateKey) -> AuthorityPublicKey:
    """Owner-side roll-forward of ``PK_{o,AID}``: ``PK̃_o = PK_o^{UK2}``."""
    if public_key.aid != update_key.aid:
        raise RevocationError("update key and authority public key disagree on AID")
    if public_key.version != update_key.from_version:
        raise RevocationError(
            f"authority public key at version {public_key.version} cannot apply "
            f"update {update_key.from_version}->{update_key.to_version}"
        )
    return AuthorityPublicKey(
        aid=public_key.aid,
        value=public_key.value ** update_key.uk2,
        version=update_key.to_version,
    )

"""The paper's contribution: multi-authority CP-ABE with revocation."""

from repro.core.authority import (
    AttributeAuthority,
    apply_update_key,
    apply_update_to_authority_public_key,
    apply_update_to_public_keys,
)
from repro.core.ca import CertificateAuthority
from repro.core.ciphertext import Ciphertext
from repro.core.decrypt import can_decrypt, decrypt, decrypt_fast
from repro.core.keys import (
    AuthorityPublicKey,
    CiphertextUpdateInfo,
    OwnerMasterKey,
    OwnerSecretKey,
    PublicAttributeKeys,
    UpdateKey,
    UserPublicKey,
    UserSecretKey,
    VersionKey,
)
from repro.core.outsourcing import (
    RetrievalKey,
    TransformKey,
    make_transform_key,
    server_transform,
    user_finalize,
)
from repro.core.owner import DataOwner, EncryptionRecord
from repro.core.security_game import GameError, SecurityGame, empirical_advantage
from repro.core.reencrypt import reencrypt, rows_touched
from repro.core.revocation import (
    RekeyResult,
    rekey_hardened,
    rekey_standard,
    strip_uk2,
)
from repro.core.scheme import MultiAuthorityABE

__all__ = [
    "MultiAuthorityABE",
    "CertificateAuthority",
    "AttributeAuthority",
    "DataOwner",
    "Ciphertext",
    "decrypt",
    "decrypt_fast",
    "can_decrypt",
    "reencrypt",
    "rows_touched",
    "apply_update_key",
    "apply_update_to_public_keys",
    "apply_update_to_authority_public_key",
    "rekey_standard",
    "rekey_hardened",
    "strip_uk2",
    "RekeyResult",
    "EncryptionRecord",
    "UserPublicKey",
    "UserSecretKey",
    "OwnerMasterKey",
    "OwnerSecretKey",
    "AuthorityPublicKey",
    "PublicAttributeKeys",
    "VersionKey",
    "UpdateKey",
    "CiphertextUpdateInfo",
    "make_transform_key",
    "server_transform",
    "user_finalize",
    "TransformKey",
    "RetrievalKey",
    "SecurityGame",
    "GameError",
    "empirical_advantage",
]

"""Knee detection on canned sweep results — no sockets, no timing."""

import asyncio

import pytest

from repro.loadgen.capacity import capacity_model
from repro.loadgen.workload import OpMix


class _CannedHarness:
    """Replays scripted per-level results through the capacity sweep."""

    def __init__(self, fetch_p99s):
        self._p99s = dict(fetch_p99s)
        self.calls = []

    async def run_closed(self, concurrency, ops_per_worker, *,
                         warmup_ops=0, mix=None, capture_digests=False):
        self.calls.append((concurrency, ops_per_worker, warmup_ops))
        p99 = self._p99s[concurrency]
        return {
            "concurrency": concurrency,
            "throughput_ops": 100.0 * concurrency,
            "per_class": {"fetch": {"p99": p99}},
        }


def _model(harness, **kwargs):
    return asyncio.run(capacity_model(harness, **kwargs))


def test_relative_knee_is_first_level_past_the_factor():
    harness = _CannedHarness({4: 0.010, 16: 0.030, 32: 0.080})
    model = _model(harness, levels=(4, 16, 32), ops_per_worker=10)
    # Baseline p99 is 10 ms; the default factor 5 puts the bound at
    # 50 ms, so 32 workers (80 ms) is the knee and 16 (30 ms) is not.
    knee = model["knee"]
    assert knee["concurrency"] == 32
    assert knee["fetch_p99_bound_seconds"] == pytest.approx(0.050)
    assert knee["relative_bound_factor"] == 5.0


def test_no_knee_inside_the_swept_range():
    harness = _CannedHarness({4: 0.010, 16: 0.012, 32: 0.015})
    model = _model(harness, levels=(4, 16, 32), ops_per_worker=10)
    assert model["knee"]["concurrency"] is None
    assert len(model["levels"]) == 3


def test_absolute_bound_overrides_the_relative_factor():
    harness = _CannedHarness({4: 0.010, 16: 0.030, 32: 0.080})
    model = _model(harness, levels=(4, 16, 32), ops_per_worker=10,
                   p99_bound=0.020)
    knee = model["knee"]
    assert knee["concurrency"] == 16  # 30 ms > the 20 ms absolute bound
    assert knee["fetch_p99_bound_seconds"] == 0.020
    assert knee["relative_bound_factor"] is None


def test_per_worker_throughput_and_sweep_order():
    harness = _CannedHarness({2: 0.01, 8: 0.01})
    model = _model(harness, levels=(2, 8), ops_per_worker=5, warmup_ops=1,
                   mix=OpMix.fetch_only())
    assert [call[0] for call in harness.calls] == [2, 8]
    for level in model["levels"]:
        assert level["ops_per_worker_per_sec"] == pytest.approx(100.0)


def test_empty_level_list_is_rejected():
    with pytest.raises(ValueError):
        _model(_CannedHarness({}), levels=())

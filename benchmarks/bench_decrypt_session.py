"""Gate benchmark for the decryption session engine + transform offload.

Workload (the ISSUE-10 acceptance shape): one user decrypting 64
ciphertexts encrypted under ONE 10-attribute policy spanning two
authorities — the read-path mirror of ``bench_encrypt_session.py``.

* **Session decrypt** — the cold path (:func:`repro.core.decrypt.
  decrypt_fast`, fresh derivation per call) versus one
  :class:`repro.fastpath.DecryptionSession` built per rep (setup
  INCLUDED in the timed leg) that replays cached Miller chains and
  reduces the whole batch through one shared final exponentiation.
  Gated metric: the **amortized speedup** — (setup + decrypt_many)
  against the cold loop — must clear ``2.5x`` at SS512 (relaxed to
  ``1.2x`` under ``--smoke`` for CI hardware).
* **Outsourced decrypt** — the server transforms every ciphertext
  under a blinded :class:`~repro.core.outsourcing.TransformKey`
  (batched via :func:`~repro.core.outsourcing.server_transform_many`);
  the user's finalize is one GT exponentiation per message. Gated
  metric: the finalize leg must perform **zero pairings** — armed in
  BOTH modes, smoke included.

Correctness is asserted before any gate and is NOT relaxed by
``--smoke``: every session-decrypted message and every outsourced
finalize must be **byte-identical** to the cold path's output.

Usage::

    PYTHONPATH=src python benchmarks/bench_decrypt_session.py             # SS512, 2.5x gate
    REPRO_BENCH_PRESET=TOY80 PYTHONPATH=src \
        python benchmarks/bench_decrypt_session.py --smoke \
        --out /tmp/smoke.json                                             # CI, 1.2x gate

Writes ``BENCH_decrypt_session.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.decrypt import decrypt_fast
from repro.core.outsourcing import (
    make_transform_key,
    server_transform_many,
    user_finalize,
)
from repro.core.owner import DataOwner
from repro.ec.params import PRESETS
from repro.fastpath import DecryptionSession
from repro.pairing.group import PairingGroup

from bench_common import arith_metadata, counter_summary

N_MESSAGES = 64
RUNS = 3                         # best-of-N noise estimator per leg
ATTRS_PER_AUTHORITY = 5          # x 2 authorities = the 10-attribute policy
SEED = 5150


def _build_fabric(preset):
    group = PairingGroup(preset, seed=SEED)
    ca = CertificateAuthority(group)
    names = [f"a{i}" for i in range(ATTRS_PER_AUTHORITY)]
    authorities = [
        AttributeAuthority(group, aid, names) for aid in ("hosp", "trial")
    ]
    for authority in authorities:
        ca.register_authority(authority.aid)
    owner = DataOwner(group, "alice")
    ca.register_owner("alice")
    for authority in authorities:
        authority.register_owner(owner.secret_key)
        owner.learn_authority(
            authority.authority_public_key(),
            authority.public_attribute_keys(),
        )
    policy = " AND ".join(
        f"{authority.aid}:{name}"
        for authority in authorities for name in names
    )
    reader_pk = ca.register_user("reader")
    reader_keys = {
        authority.aid: authority.keygen(reader_pk, names, "alice")
        for authority in authorities
    }
    return group, owner, policy, reader_pk, reader_keys


def run(preset_name: str, out_path: str, smoke: bool) -> dict:
    preset = PRESETS[preset_name]
    group, owner, policy, reader_pk, reader_keys = _build_fabric(preset)
    n_attrs = 2 * ATTRS_PER_AUTHORITY

    messages = [group.random_gt() for _ in range(N_MESSAGES)]
    ciphertexts = [
        owner.encrypt(message, policy, ciphertext_id=f"bench/ct-{i:03d}")
        for i, message in enumerate(messages)
    ]
    # Warm every shared cache (generator tables, LSSS parse) so the
    # cold leg is the *best case* cold path, not a first-call outlier.
    decrypt_fast(group, ciphertexts[0], reader_pk, reader_keys)

    # -- cold vs session (best-of-RUNS, fresh session per rep) --------------
    # DecryptionSession setup registers its prepared Miller chains in
    # the GROUP's shared cache, and decrypt_fast's pair_prod consults
    # that cache on either pairing side — so without the clear() below,
    # every cold rep after the first would silently replay the
    # session's cached chains and the comparison would measure nothing.
    # Clearing before BOTH legs keeps each rep honest: the cold leg
    # walks full Miller chains per call, the session leg re-pays its
    # whole setup (LSSS solve + chain preparation) every rep.
    cold_samples, session_samples = [], []
    cold_values = session_values = None
    for _ in range(RUNS):
        group._prepared.clear()
        start = time.perf_counter()
        cold_values = [
            decrypt_fast(group, ciphertext, reader_pk, reader_keys)
            for ciphertext in ciphertexts
        ]
        cold_samples.append(time.perf_counter() - start)

        group._prepared.clear()
        start = time.perf_counter()
        session = DecryptionSession(
            group, ciphertexts[0], reader_pk, reader_keys
        )
        session_values = session.decrypt_many(ciphertexts)
        session_samples.append(time.perf_counter() - start)

    cold_s = min(cold_samples)
    session_s = min(session_samples)
    session_speedup = cold_s / session_s
    print(f"[decrypt-session] decrypt: {N_MESSAGES} cts x{RUNS}, "
          f"{n_attrs}-attribute policy: cold {cold_s:.3f}s -> "
          f"session (setup incl.) {session_s:.3f}s "
          f"({session_speedup:.2f}x)")

    # -- byte identity (armed in BOTH modes, --smoke included) --------------
    for index, (message, cold, fast) in enumerate(
        zip(messages, cold_values, session_values)
    ):
        if fast.to_bytes() != cold.to_bytes():
            raise AssertionError(
                f"session decrypt of ct {index} is not byte-identical "
                f"to the cold path"
            )
        if cold != message:
            raise AssertionError(f"cold decrypt of ct {index} is wrong")
    print(f"[decrypt-session] all {N_MESSAGES} session plaintexts are "
          f"byte-identical to the cold path")

    # -- outsourced: server transform + pairing-free user finalize ----------
    transform_key, retrieval_key = make_transform_key(
        group, reader_pk, reader_keys
    )
    start = time.perf_counter()
    partials = server_transform_many(group, ciphertexts, transform_key)
    transform_s = time.perf_counter() - start

    pairings_before = group.op_counts()["pairings"]
    start = time.perf_counter()
    outsourced_values = [
        user_finalize(ciphertext, partial, retrieval_key)
        for ciphertext, partial in zip(ciphertexts, partials)
    ]
    finalize_s = time.perf_counter() - start
    user_pairings = group.op_counts()["pairings"] - pairings_before

    for index, (cold, via_server) in enumerate(
        zip(cold_values, outsourced_values)
    ):
        if via_server.to_bytes() != cold.to_bytes():
            raise AssertionError(
                f"outsourced decrypt of ct {index} is not byte-identical"
            )
    print(f"[decrypt-session] outsourced: server transform {transform_s:.3f}s"
          f" + user finalize {finalize_s:.3f}s "
          f"({user_pairings} user-side pairings), all byte-identical")

    session_gate = 1.2 if smoke else 2.5
    report = {
        "benchmark": "decryption session engine + transform offload",
        "generated_by": "benchmarks/bench_decrypt_session.py",
        "preset": preset_name,
        "smoke": smoke,
        "arithmetic": arith_metadata(group),
        "workload": {
            "ciphertexts": N_MESSAGES,
            "runs": RUNS,
            "policy_attributes": n_attrs,
            "policy": policy,
        },
        "decrypt": {
            "cold_s": round(cold_s, 6),
            "session_s": round(session_s, 6),
            "cold_samples_s": [round(v, 6) for v in cold_samples],
            "session_samples_s": [round(v, 6) for v in session_samples],
            "session_speedup": round(session_speedup, 2),
        },
        "outsourced": {
            "server_transform_s": round(transform_s, 6),
            "user_finalize_s": round(finalize_s, 6),
            "user_pairings": user_pairings,
        },
        "checks": {
            "session_byte_identical": N_MESSAGES,
            "outsourced_byte_identical": N_MESSAGES,
        },
        "gates": {
            "session_amortized_floor": session_gate,
            "outsourced_user_pairings": 0,
        },
        "op_counts": counter_summary(group),
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"[decrypt-session] wrote {out_path}")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_decrypt_session.json"
        ),
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="relax the 2.5x session gate to 1.2x for CI hardware "
             "(byte-identity and the zero-pairing gate stay armed)",
    )
    args = parser.parse_args()
    preset_name = os.environ.get("REPRO_BENCH_PRESET", "SS512")
    report = run(preset_name, args.out, args.smoke)
    failures = []
    if (report["decrypt"]["session_speedup"]
            < report["gates"]["session_amortized_floor"]):
        failures.append(
            f"session decrypt speedup {report['decrypt']['session_speedup']}x"
            f" < {report['gates']['session_amortized_floor']}x"
        )
    if report["outsourced"]["user_pairings"] != 0:
        failures.append(
            f"outsourced finalize cost "
            f"{report['outsourced']['user_pairings']} user-side pairings "
            f"(want 0)"
        )
    if failures:
        print(f"[decrypt-session] FAIL: {'; '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Cross-backend differential suite (ISSUE-6).

Every arithmetic configuration — pure CPython, the Montgomery REDC
core, and gmpy2 when the interpreter has it — must produce
byte-identical field elements, curve points, pairing values,
ciphertexts and keys. Elements are plain integers in every backend
(wrapped at the modulus only), so equality of encodings is the whole
contract: a backend that drifts by even one bit breaks recorded
ciphertext replay.

The gmpy2 legs self-skip when the module is absent (the stock
container state); the Montgomery legs always run.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import PRESETS, TOY80
from repro.math.backend import gmpy2_available
from repro.math.field import PrimeField
from repro.pairing.group import PairingGroup

SEED = 0xD1FF
POLICY = "hospital:doctor AND trial:researcher"

needs_gmpy2 = pytest.mark.skipif(
    not gmpy2_available(), reason="gmpy2 not installed"
)


@contextmanager
def montgomery_env(enabled: bool):
    """Pin ``REPRO_MONTGOMERY`` for the duration of a construction."""
    saved = os.environ.get("REPRO_MONTGOMERY")
    os.environ["REPRO_MONTGOMERY"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_MONTGOMERY", None)
        else:
            os.environ["REPRO_MONTGOMERY"] = saved


def build_group(preset, *, backend="pure", montgomery=False):
    with montgomery_env(montgomery):
        return PairingGroup(preset, seed=SEED, backend=backend)


def group_transcript(group, n_ops=8):
    """A deterministic encoding transcript over G1/GT/pairing ops.

    Same seed -> same scalar draws in every configuration, so the
    returned byte strings must be identical across backends.
    """
    out = []
    g = group.g
    scalars = group.random_scalars(n_ops)
    elements = [g ** k for k in scalars]
    for element in elements:
        out.append(element.to_bytes())
    product = elements[0]
    for element in elements[1:]:
        product = product * element
    out.append(product.to_bytes())
    out.append((product / elements[0]).to_bytes())
    out.append(product.inverse().to_bytes())
    paired = group.pair(elements[0], elements[1])
    out.append(paired.to_bytes())
    out.append((paired ** scalars[2]).to_bytes())
    out.append(group.pair_prod(
        [(elements[0], elements[1]), (elements[2], elements[3])]
    ).to_bytes())
    out.append(group.multiexp_g1(elements[:4], scalars[:4]).to_bytes())
    return out


def scheme_transcript(seed):
    """Ciphertext + key bytes from one full TOY80 scheme run."""
    scheme = MultiAuthorityABE(TOY80, seed=seed)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    trial = scheme.setup_authority("trial", ["researcher"])
    owner = scheme.setup_owner("alice", [hospital, trial])
    bob_pk = scheme.register_user("bob")
    keys = [
        hospital.keygen(bob_pk, ["doctor", "nurse"], "alice"),
        trial.keygen(bob_pk, ["researcher"], "alice"),
    ]
    message = scheme.random_message()
    cold = owner.encrypt(message, POLICY, ciphertext_id="diff-cold")
    session = owner.session_for(POLICY)
    session.refill(2)
    pooled = session.encrypt(message, ciphertext_id="diff-pooled")
    out = [cold.to_bytes(), pooled.to_bytes(), message.to_bytes()]
    for key in keys:
        out.append(key.k.to_bytes())
        for name in sorted(key.attribute_keys):
            out.append(key.attribute_keys[name].to_bytes())
    return out


class TestMontgomeryDifferential:
    @pytest.mark.parametrize("preset_name", ["TOY80", "SS512"])
    def test_group_transcripts_identical(self, preset_name):
        preset = PRESETS[preset_name]
        plain = group_transcript(build_group(preset))
        mont = group_transcript(build_group(preset, montgomery=True))
        assert plain == mont

    def test_scheme_bytes_identical(self):
        with montgomery_env(False):
            plain = scheme_transcript(SEED)
        with montgomery_env(True):
            mont = scheme_transcript(SEED)
        assert plain == mont

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, TOY80.p - 1), st.integers(1, TOY80.p - 1))
    def test_field_ops_fuzz(self, a, b):
        plain = PrimeField(TOY80.p, check_prime=False, montgomery=False)
        mont_field = PrimeField(TOY80.p, check_prime=False, montgomery=True)
        mont = mont_field.mont
        assert mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b))) \
            == plain.mul(a, b)
        assert mont.from_mont(mont.square(mont.to_mont(a))) \
            == plain.square(a)
        assert mont.from_mont(mont.pow(mont.to_mont(a), b)) \
            == plain.pow(a, b)
        assert mont.from_mont(mont.inv(mont.to_mont(a))) == plain.inv(a)
        # The field-level API itself must agree too (mont is a context
        # the pairing layer opts into; PrimeField.mul stays canonical).
        assert mont_field.mul(a, b) == plain.mul(a, b)
        assert mont_field.inv(a) == plain.inv(a)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, TOY80.r - 1), st.integers(0, TOY80.r - 1))
    def test_curve_ops_fuzz(self, j, k):
        plain_group = build_group(TOY80)
        mont_group = build_group(TOY80, montgomery=True)
        for group in (plain_group, mont_group):
            assert group.montgomery == (group is mont_group)
        pj, pk_ = plain_group.g ** j, plain_group.g ** k
        mj, mk = mont_group.g ** j, mont_group.g ** k
        assert pj.to_bytes() == mj.to_bytes()
        assert (pj * pk_).to_bytes() == (mj * mk).to_bytes()
        assert (pj / pk_).to_bytes() == (mj / mk).to_bytes()
        assert plain_group.pair(pj, pk_).to_bytes() \
            == mont_group.pair(mj, mk).to_bytes()


@needs_gmpy2
class TestGmpy2Differential:
    @pytest.mark.parametrize("preset_name", ["TOY80", "SS512"])
    def test_group_transcripts_identical(self, preset_name):
        preset = PRESETS[preset_name]
        plain = group_transcript(build_group(preset))
        fast = group_transcript(build_group(preset, backend="gmpy2"))
        assert plain == fast

    def test_field_ops_match(self):
        plain = PrimeField(TOY80.p, check_prime=False, backend="pure")
        fast = PrimeField(TOY80.p, check_prime=False, backend="gmpy2")
        rng_pairs = [(3, 5), (TOY80.p - 2, TOY80.p - 1),
                     (0xDEADBEEF, 0xFEEDFACE)]
        for a, b in rng_pairs:
            assert int(fast.mul(a, b)) == plain.mul(a, b)
            assert int(fast.inv(a)) == plain.inv(a)
            assert fast.to_bytes(fast.mul(a, b)) \
                == plain.to_bytes(plain.mul(a, b))


class TestBackendResolution:
    def test_hard_gmpy2_request_raises_when_absent(self):
        if gmpy2_available():
            pytest.skip("gmpy2 installed: the hard request succeeds")
        from repro.errors import MathError
        from repro.math.backend import resolve_backend
        with pytest.raises(MathError):
            resolve_backend("gmpy2")

    def test_metadata_reflects_configuration(self):
        plain = build_group(TOY80)
        mont = build_group(TOY80, montgomery=True)
        assert plain.backend_name == "pure"
        assert plain.montgomery is False
        assert mont.montgomery is True

"""End-to-end load-harness runs against a real in-process service.

Small pools and op counts — these verify the *instrument* (schedules,
collectors, result shapes, byte-identity) rather than measure anything;
the real measurements live in ``benchmarks/bench_service_load.py``.
"""

import asyncio
import tempfile

import pytest

from repro.loadgen import LoadHarness, OpMix, pipelined_vs_serial
from repro.loadgen.runner import rss_kb, start_local_service


def _run(coro):
    return asyncio.run(coro)


async def _with_service(group, body, **service_kwargs):
    with tempfile.TemporaryDirectory() as root:
        service = await start_local_service(group, root, **service_kwargs)
        try:
            return await body(service)
        finally:
            await service.stop()


def test_rss_sampling_reads_this_process():
    assert rss_kb() > 0


def test_closed_loop_runs_the_full_mix(group):
    async def body(service):
        harness = LoadHarness(group, service.host, service.port,
                              users=500, records=6, replace_records=2,
                              seed=11, connections=2, max_inflight=8)
        await harness.setup()
        try:
            mix = OpMix(fetch=0.6, upload=0.2, replace=0.2)
            result = await harness.run_closed(3, 6, warmup_ops=1, mix=mix)
        finally:
            await harness.close()
        return result

    result = _run(_with_service(group, body))
    assert result["mode"] == "closed"
    assert result["pipelined"] is True
    assert result["measured_ops"] == 3 * 6
    assert result["failed_ops"] == 0
    assert result["throughput_ops"] > 0
    fetch = result["per_class"]["fetch"]
    assert fetch["count"] > 0
    assert 0 <= fetch["p50"] <= fetch["p95"] <= fetch["p99"]
    assert result["rss"]["max_kb"] > 0


def test_closed_loop_schedules_are_deterministic(group):
    """Two same-seed fetch-only runs issue identical requests — the
    property the byte-identity comparison stands on."""
    async def body(service):
        digests = []
        for _ in range(2):
            harness = LoadHarness(group, service.host, service.port,
                                  users=100, records=5, seed=23,
                                  connections=2, max_inflight=4)
            await harness.setup(populate=not digests)
            try:
                result = await harness.run_closed(
                    4, 5, mix=OpMix.fetch_only(), capture_digests=True
                )
            finally:
                await harness.close()
            assert result["failed_ops"] == 0
            digests.append(result["fetch_digests"])
        return digests

    first, second = _run(_with_service(group, body))
    assert first == second
    assert len(first) == 4 * 5


def test_open_loop_reports_arrivals_and_shedding(group):
    async def body(service):
        harness = LoadHarness(group, service.host, service.port,
                              users=100, records=4, seed=31,
                              connections=2, max_inflight=8)
        await harness.setup()
        try:
            result = await harness.run_open(
                120.0, 0.4, warmup=0.1, max_outstanding=16,
                mix=OpMix.fetch_only(),
            )
        finally:
            await harness.close()
        return result

    result = _run(_with_service(group, body))
    assert result["mode"] == "open"
    assert result["arrivals"] > 0
    assert result["shed"] >= 0
    assert result["measured_ops"] + result["shed"] <= result["arrivals"]
    assert result["per_class"]["fetch"]["count"] == result["measured_ops"]


def test_pipelined_vs_serial_is_byte_identical(group):
    async def body(service):
        return await pipelined_vs_serial(
            group, service.host, service.port, workers=4, ops_per_worker=4,
            warmup_ops=1, connections=2, max_inflight=8,
            users=100, records=4, seed=47,
        )

    comparison = _run(_with_service(group, body))
    assert comparison["byte_identical"] is True
    assert comparison["compared_responses"] == 4 * 4
    assert comparison["serial"]["pipelined"] is False
    assert comparison["pipelined"]["pipelined"] is True
    assert comparison["fetch_speedup"] is not None


def test_run_parameters_are_validated(group):
    harness = LoadHarness.__new__(LoadHarness)  # no sockets needed
    with pytest.raises(ValueError):
        _run(LoadHarness.run_closed(harness, 0, 5))
    with pytest.raises(ValueError):
        _run(LoadHarness.run_open(harness, 0.0, 1.0))

"""ClusterClient over a live fleet: replicated writes, failover reads,
digest-verified read-repair, scrub, and the aggregate health view."""

import pytest

from repro.errors import StorageError, UnavailableError

from .conftest import make_cluster, run, start_fleet, stop_fleet


def corrupt_replica(service, record_id):
    """Flip bytes inside a node's on-disk blob for one record."""
    digest = service.store.digest(record_id)
    blob_path = service.store.blobs._path(digest)
    blob = blob_path.read_bytes()
    blob_path.write_bytes(b"bit rot" + blob[7:])
    service.store.blobs._cache_drop(digest)
    return digest


def test_store_lands_on_every_replica(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map)
        record = scenario.make_record("rec-a")
        try:
            result = await cluster.store_record(record)
            replicas = [node.name
                        for node in cluster_map.replicas_for("rec-a")]
            assert sorted(result["acks"]) == sorted(replicas)
            assert not result["failed"]
            digests = {services[name].store.digest("rec-a")
                       for name in replicas}
            assert len(digests) == 1  # byte-identical copies
            for name, service in services.items():
                if name not in replicas:
                    with pytest.raises(StorageError):
                        service.store.digest("rec-a")
            assert cluster.meter.counter_summary("cluster.store-ack.")
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_fetch_fails_over_when_primary_is_down(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        record = scenario.make_record("rec-b")
        try:
            await cluster.store_record(record)
            primary = cluster_map.replicas_for("rec-b")[0].name
            survivor = cluster_map.replicas_for("rec-b")[1].name
            expected = services[survivor].store.digest("rec-b")
            await services[primary].stop()
            fetched = await cluster.fetch_record("rec-b")
            assert fetched.record_id == "rec-b"
            assert cluster.meter.counter(f"cluster.failover.{primary}") >= 1
            assert services[survivor].store.digest("rec-b") == expected
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_corrupted_replica_is_repaired_on_read(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map)
        record = scenario.make_record("rec-c")
        try:
            await cluster.store_record(record)
            primary = cluster_map.replicas_for("rec-c")[0].name
            peer = cluster_map.replicas_for("rec-c")[1].name
            good_digest = services[peer].store.digest("rec-c")
            corrupt_replica(services[primary], "rec-c")
            assert not services[primary].store.verify_record("rec-c")

            fetched = await cluster.fetch_record("rec-c")
            assert fetched.record_id == "rec-c"
            # The damaged copy was rebuilt from the healthy replica's
            # raw bytes, so the fleet is digest-identical again.
            assert services[primary].store.verify_record("rec-c")
            assert services[primary].store.digest("rec-c") == good_digest
            assert cluster.meter.counter(f"cluster.damaged.{primary}") == 1
            assert cluster.meter.counter(f"cluster.repair.{primary}") == 1
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_write_below_quorum_is_unavailable(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        try:
            victim = "node-0"
            await services[victim].stop()
            record_id = next(
                f"quorum-{index}" for index in range(100)
                if victim in {node.name for node
                              in cluster_map.replicas_for(f"quorum-{index}")}
            )
            with pytest.raises(UnavailableError):
                await cluster.store_record(scenario.make_record(record_id))
            assert cluster.meter.counter(f"cluster.store-miss.{victim}") >= 1
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_scrub_repairs_what_reads_never_touched(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map)
        try:
            for index in range(4):
                await cluster.store_record(
                    scenario.make_record(f"rec-{index}")
                )
            clean = await cluster.scrub()
            assert clean["checked"] == 4
            assert not clean["repaired"] and not clean["lost"]

            # Rot a non-primary copy: plain failover reads would never
            # even look at it, but the scrub audits every replica.
            target = cluster_map.replicas_for("rec-0")[1].name
            corrupt_replica(services[target], "rec-0")
            report = await cluster.scrub()
            assert report["repaired"] == {"rec-0": [target]}
            assert services[target].store.verify_record("rec-0")
            assert (await cluster.scrub())["repaired"] == {}
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_health_aggregates_and_degrades(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        try:
            await cluster.store_record(scenario.make_record("rec-h"))
            healthy = await cluster.health_all()
            assert healthy["status"] == "ok"
            assert set(healthy["nodes"]) == set(cluster_map.node_names)
            assert healthy["counters"]  # per-node replication telemetry

            await services["node-2"].stop()
            degraded = await cluster.health_all()
            assert degraded["status"] == "degraded"
            assert degraded["nodes"]["node-2"]["status"] == "down"

            stats = await cluster.stats_all()
            assert "error" in stats["nodes"]["node-2"]
            assert stats["shards"]["node-2"] is None
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_list_records_is_the_fleet_union(group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        try:
            for index in range(5):
                await cluster.store_record(
                    scenario.make_record(f"rec-{index}")
                )
            assert await cluster.list_records() \
                == [f"rec-{index}" for index in range(5)]
            # Still the full union with one node down...
            await services["node-1"].stop()
            assert len(await cluster.list_records()) == 5
            # ...but no listing at all when nobody answers.
            await stop_fleet(services)
            with pytest.raises(UnavailableError):
                await cluster.list_records()
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())

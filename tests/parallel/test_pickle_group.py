"""Pickling a PairingGroup ships parameters, not precomputation.

The process pool sends the group with every job, so the pickle must be
a few ints (curve parameters) — never the megabytes of fixed-base
tables or Miller-line caches, which each worker rebuilds lazily.
"""

import pickle

from repro.ec.params import TOY80
from repro.pairing.group import PairingGroup


def test_pickle_is_parameter_sized(group):
    group.gt  # warm the generator pairing so caches exist to (not) ship
    blob = pickle.dumps(group)
    assert len(blob) < 1024, f"group pickle grew to {len(blob)} bytes"


def test_round_trip_is_usable(group):
    rebuilt = pickle.loads(pickle.dumps(group))
    assert rebuilt.params.r == group.params.r
    assert rebuilt.params.p == group.params.p
    x, y = group.random_g1(), group.random_g1()
    assert rebuilt.pair(x, y).value == group.pair(x, y).value
    # Elements encoded by one instance decode under the other.
    encoded = group.encode_g1(x)
    assert rebuilt.encode_g1(rebuilt.decode_g1(encoded)) == encoded


def test_rebuilds_share_one_registry_instance(group):
    blob = pickle.dumps(group)
    assert pickle.loads(blob) is pickle.loads(blob)


def test_registry_keys_on_parameters_not_instances(group):
    other = PairingGroup(TOY80, seed=9)
    # Same curve parameters -> same registry slot, whichever instance
    # (or seed) produced the pickle.
    assert pickle.loads(pickle.dumps(other)) is pickle.loads(
        pickle.dumps(group)
    )

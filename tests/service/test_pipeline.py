"""Pipelined dispatch: correlation, ordering, and the v1 fallback.

With ``max_inflight > 1`` a version-2 connection multiplexes many
requests; every reply must land on *its* request by sequence number,
no matter how ChaosProxy reorders, delays or duplicates frames on the
wire. These are the seq-mismatch regression tests: a reply delivered
to the wrong caller would hand one record's bytes to another record's
reader, which is exactly the failure byte-identity gating in
``benchmarks/bench_service_load.py`` exists to catch.
"""

import asyncio
import random

from repro.core.revocation import rekey_standard
from repro.service import protocol
from repro.service.client import BaseClient, OwnerClient, ServiceConnection
from repro.service.faults import ChaosProxy, FaultSpec
from repro.service.protocol import MessageType
from repro.system.records import StoredRecord

from .conftest import run, start_service
from .test_faults import quick_retry


def _pipelined_connection(group, host, port, *, max_inflight=8,
                          retry=None, timeout=2.0):
    return ServiceConnection(group, host, port, role="owner",
                             name="owner:alice", retry=retry,
                             timeout=timeout, max_inflight=max_inflight)


async def _upload_pool(owner, count):
    for index in range(count):
        await owner.upload(f"rec-{index}",
                           {"note": (f"body-{index}".encode(),
                                     "hospital:doctor")})


def test_interleaved_requests_correlate_by_seq(group, scenario, store_root):
    """Many concurrent fetches over ONE pipelined connection: each
    caller gets exactly the record it asked for."""
    async def body():
        service = await start_service(group, store_root)
        conn = _pipelined_connection(group, service.host, service.port)
        await conn.connect()
        assert conn.version == 2 and conn.pipelined
        owner = OwnerClient(conn, scenario.owner_core)
        try:
            await _upload_pool(owner, 6)
            order = [index % 6 for index in range(24)]
            random.Random(7).shuffle(order)

            async def fetch(index):
                _, reply = await conn.request(
                    MessageType.FETCH_RECORD,
                    protocol.encode_json({"record": f"rec-{index}"}),
                    expect=MessageType.RECORD,
                )
                return index, StoredRecord.from_bytes(group, reply)

            results = await asyncio.gather(
                *(fetch(index) for index in order), owner.ping()
            )
            for index, record in results[:-1]:
                assert record.record_id == f"rec-{index}"
            assert results[-1] is True
        finally:
            await owner.close()
            await service.stop()

    run(body())


def test_reorder_and_delay_never_miscorrelate(group, scenario, store_root):
    """ChaosProxy reorders and delays RECORD replies on a pipelined
    connection; correlation is by seq, so nobody gets the wrong bytes."""
    async def body():
        service = await start_service(group, store_root)
        proxy = ChaosProxy(
            service.host, service.port,
            spec=FaultSpec(delay_seconds=0.1),
            type_schedule={
                int(MessageType.RECORD): ["reorder", "delay", "reorder"],
            },
        )
        await proxy.start()
        conn = _pipelined_connection(group, proxy.host, proxy.port)
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            await _upload_pool(owner, 8)

            async def fetch(index):
                record = await owner.fetch_record(f"rec-{index}")
                return index, record

            results = await asyncio.gather(*(fetch(i) for i in range(8)))
            for index, record in results:
                assert record.record_id == f"rec-{index}"
            assert proxy.fault_counts() == {"reorder": 2, "delay": 1}
        finally:
            await owner.close()
            await proxy.stop()
            await service.stop()

    run(body())


def test_duplicate_reply_is_discarded_not_miscorrelated(group, store_root):
    """A duplicated PONG arrives under an already-answered seq: the
    reader discards it (and logs the discard) instead of delivering it
    to whoever asks next."""
    async def body():
        service = await start_service(group, store_root)
        proxy = ChaosProxy(service.host, service.port,
                           type_schedule={int(MessageType.PONG):
                                          ["duplicate"]})
        await proxy.start()
        conn = _pipelined_connection(group, proxy.host, proxy.port)
        client = BaseClient(await conn.connect())
        try:
            assert await client.ping()
            await asyncio.sleep(0.05)  # let the duplicate frame arrive
            discards = conn.retry_log.events("discard")
            assert len(discards) == 1
            assert "unmatched reply seq" in discards[0]["cause"]
            # The connection is still healthy and still correlates.
            assert await client.ping()
            assert (await client.health())["status"] in ("ok", "degraded")
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    run(body())


def test_retried_mutation_lands_after_sibling_reply(group, scenario,
                                                    store_root):
    """The nasty interleaving: a STORE_RECORD's OK is withheld, its
    sibling fetch completes first on the SAME still-open connection,
    then the timed-out mutation retries under a fresh seq and the same
    idempotency key — applied exactly once, never mis-correlated."""
    async def body():
        service = await start_service(group, store_root)
        # Populate the sibling's record over a DIRECT connection, so
        # the first OK crossing the proxy is the store under test.
        setup_conn = _pipelined_connection(group, service.host,
                                           service.port)
        setup_owner = OwnerClient(await setup_conn.connect(),
                                  scenario.owner_core)
        await _upload_pool(setup_owner, 1)
        await setup_owner.close()
        proxy = ChaosProxy(service.host, service.port,
                           type_schedule={int(MessageType.OK):
                                          ["withhold"]})
        await proxy.start()
        conn = _pipelined_connection(group, proxy.host, proxy.port,
                                     retry=quick_retry(), timeout=0.3)
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        reader_task = conn._reader_task
        finished = []
        try:
            async def store():
                await owner.upload("r", {"note": (b"exactly once",
                                                  "hospital:doctor")})
                finished.append("store")

            async def sibling():
                record = await owner.fetch_record("rec-0")
                assert record.record_id == "rec-0"
                finished.append("fetch")

            await asyncio.gather(store(), sibling())
            # The sibling's reply landed while the mutation was still
            # waiting out its withheld OK; the retry resolved it later.
            assert finished == ["fetch", "store"]
            retried = [e["request"] for e in conn.retry_log.events("retry")]
            assert "STORE_RECORD" in retried
            # Same connection throughout: the reader never restarted.
            assert conn._reader_task is reader_task
        finally:
            await owner.close()
            await proxy.stop()
            await service.stop()
        return service, proxy

    service, proxy = run(body())
    assert {f["fault"] for f in proxy.injected} == {"withhold"}
    assert sorted(service.store.record_ids()) == ["r", "rec-0"]
    assert service.dedup.hits == 1  # the retry was a replay, not a re-apply


def test_cheap_request_is_not_stuck_behind_slow_sweep(group, scenario,
                                                      store_root):
    """Server-side pipelining: while a REENCRYPT_SWEEP grinds through
    its chunks, a PING on the same session is answered immediately."""
    async def body():
        service = await start_service(group, store_root, sweep_chunk=1)
        conn = _pipelined_connection(group, service.host, service.port,
                                     timeout=30.0)
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            await _upload_pool(owner, 12)
            started = asyncio.Event()
            result = rekey_standard(scenario.aa, "bob", ["doctor"])

            sweep_task = asyncio.ensure_future(owner.sweep_revocation(
                result.update_key,
                on_progress=lambda payload: started.set(),
            ))
            await started.wait()  # first chunk done, many more to go
            assert await owner.ping()
            pinged_mid_sweep = not sweep_task.done()
            summary = await sweep_task
            assert len(summary["updated"]) == 12
            return pinged_mid_sweep
        finally:
            await owner.close()
            await service.stop()

    assert run(body())


def test_v1_peer_falls_back_to_serial(group, scenario, store_root,
                                      monkeypatch):
    """A peer that only speaks version 1 gets the original serial
    behaviour even when the client asked for a pipelining window."""
    real_hello = protocol.hello_body

    def v1_hello(preset, role, name, versions=None):
        return real_hello(preset, role, name, versions=(1,))

    monkeypatch.setattr("repro.service.protocol.hello_body", v1_hello)

    async def body():
        service = await start_service(group, store_root)
        conn = _pipelined_connection(group, service.host, service.port)
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            assert conn.version == 1
            assert not conn.pipelined  # no reader task, serial roundtrips
            await owner.upload("r", {"note": (b"v1", "hospital:doctor")})
            record = await owner.fetch_record("r")
            assert record.record_id == "r"
            assert await owner.ping()
        finally:
            await owner.close()
            await service.stop()

    run(body())

"""Supersingular elliptic curve y² = x³ + x over F_p with p ≡ 3 (mod 4).

This is the curve family behind PBC's "type A" pairing parameters used by
the paper's evaluation. For p ≡ 3 (mod 4) the curve is supersingular with
exactly ``p + 1`` points over F_p, its embedding degree is 2, and the
distortion map ``(x, y) ↦ (-x, i·y)`` (with i² = -1 in F_p²) turns the
Weil/Tate pairing into a *symmetric* pairing on the order-r subgroup.

Points are affine tuples ``(x, y)`` of ints; the point at infinity is
``None``. The curve object is a context providing the group law.
"""

from __future__ import annotations

import random

from repro.errors import MathError, ParameterError
from repro.math.field import PrimeField

Point = tuple  # (x, y) affine coordinates; None is the point at infinity
INFINITY = None


class SupersingularCurve:
    """The curve E: y² = x³ + x over F_p (coefficient a = 1, b = 0)."""

    __slots__ = ("field", "p")

    def __init__(self, field: PrimeField):
        if field.p % 4 != 3:
            raise ParameterError("type-A curves require p ≡ 3 (mod 4)")
        self.field = field
        self.p = field.p

    # -- membership ------------------------------------------------------------

    def is_on_curve(self, point) -> bool:
        """True iff the point satisfies y² = x³ + x (infinity included)."""
        if point is INFINITY:
            return True
        x, y = point
        p = self.p
        return (y * y - (x * x * x + x)) % p == 0

    def check(self, point) -> Point:
        """Validate a point, returning it; raises :class:`MathError` if invalid."""
        if not self.is_on_curve(point):
            raise MathError(f"point {point} is not on the curve")
        return point

    # -- group law ---------------------------------------------------------------

    def neg(self, point):
        if point is INFINITY:
            return INFINITY
        x, y = point
        return (x, -y % self.p)

    def add(self, point1, point2):
        """Affine chord-and-tangent addition."""
        if point1 is INFINITY:
            return point2
        if point2 is INFINITY:
            return point1
        p = self.p
        x1, y1 = point1
        x2, y2 = point2
        if x1 == x2:
            if (y1 + y2) % p == 0:
                return INFINITY
            return self.double(point1)
        slope = (y2 - y1) * pow(x2 - x1, -1, p) % p
        x3 = (slope * slope - x1 - x2) % p
        y3 = (slope * (x1 - x3) - y1) % p
        return (x3, y3)

    def double(self, point):
        if point is INFINITY:
            return INFINITY
        p = self.p
        x, y = point
        if y == 0:
            return INFINITY
        slope = (3 * x * x + 1) * pow(2 * y, -1, p) % p
        x3 = (slope * slope - 2 * x) % p
        y3 = (slope * (x - x3) - y) % p
        return (x3, y3)

    def sub(self, point1, point2):
        return self.add(point1, self.neg(point2))

    def mul(self, point, scalar: int):
        """Scalar multiplication in Jacobian coordinates.

        Projective (Jacobian) doubling and mixed addition avoid the
        per-step modular inversion of affine arithmetic; a single
        inversion converts back at the end. 3-4× faster than affine
        double-and-add at 512-bit field sizes.
        """
        if point is INFINITY or scalar == 0:
            return INFINITY
        if scalar < 0:
            point = self.neg(point)
            scalar = -scalar
        p = self.p
        ax, ay = point  # affine base for mixed additions
        # Accumulator in Jacobian coordinates; Z == 0 encodes infinity.
        rx, ry, rz = 0, 1, 0
        for bit_index in range(scalar.bit_length() - 1, -1, -1):
            # Double the accumulator.
            if rz != 0:
                if ry == 0:
                    rx, ry, rz = 0, 1, 0
                else:
                    yy = ry * ry % p
                    s = 4 * rx * yy % p
                    zz = rz * rz % p
                    m = (3 * rx * rx + zz * zz) % p  # a = 1
                    nx = (m * m - 2 * s) % p
                    ny = (m * (s - nx) - 8 * yy * yy) % p
                    nz = 2 * ry * rz % p
                    rx, ry, rz = nx, ny, nz
            if (scalar >> bit_index) & 1:
                if rz == 0:
                    rx, ry, rz = ax, ay, 1
                else:
                    # Mixed addition: accumulator (Jacobian) + base (affine).
                    zz = rz * rz % p
                    u2 = ax * zz % p
                    s2 = ay * zz * rz % p
                    h = (u2 - rx) % p
                    r = (s2 - ry) % p
                    if h == 0:
                        if r == 0:
                            # Doubling case: P + P.
                            yy = ry * ry % p
                            s = 4 * rx * yy % p
                            m = (3 * rx * rx + zz * zz) % p
                            nx = (m * m - 2 * s) % p
                            ny = (m * (s - nx) - 8 * yy * yy) % p
                            nz = 2 * ry * rz % p
                            rx, ry, rz = nx, ny, nz
                        else:
                            rx, ry, rz = 0, 1, 0  # P + (-P) = O
                    else:
                        hh = h * h % p
                        hhh = h * hh % p
                        v = rx * hh % p
                        nx = (r * r - hhh - 2 * v) % p
                        ny = (r * (v - nx) - ry * hhh) % p
                        nz = rz * h % p
                        rx, ry, rz = nx, ny, nz
        if rz == 0:
            return INFINITY
        z_inv = pow(rz, -1, p)
        z_inv2 = z_inv * z_inv % p
        return (rx * z_inv2 % p, ry * z_inv2 * z_inv % p)

    # -- point construction ---------------------------------------------------

    def lift_x(self, x: int, parity: int = 0):
        """A point with the given x-coordinate, or None if x³+x is a non-residue.

        ``parity`` selects which of the two roots to take (y ≡ parity mod 2),
        which makes the lift deterministic for serialization.
        """
        p = self.p
        x %= p
        rhs = (x * x * x + x) % p
        if not self.field.is_square(rhs):
            return None
        y = self.field.sqrt(rhs)
        if y % 2 != parity % 2:
            y = (-y) % p
        return (x, y)

    def random_point(self, rng: random.Random) -> Point:
        """A uniformly-ish random point on the full curve (order p+1 group)."""
        while True:
            x = rng.randrange(self.p)
            point = self.lift_x(x, rng.randrange(2))
            if point is not None:
                return point

    def __eq__(self, other) -> bool:
        return isinstance(other, SupersingularCurve) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("SupersingularCurve", self.p))

    def __repr__(self) -> str:
        return f"SupersingularCurve(y²=x³+x over F_p, p~2^{self.p.bit_length()})"

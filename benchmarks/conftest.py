"""Benchmark-harness configuration.

By default the benchmarks run on the SS512 preset — the same element
sizes as the paper's PBC α-curve (512-bit base field, 160-bit order) —
with the paper's workload shapes. Two environment knobs:

* ``REPRO_BENCH_PRESET=TOY80`` switches to the fast toy curve (useful
  for smoke-testing the harness);
* ``REPRO_BENCH_FULL=1`` sweeps every point the paper plots (2..20)
  instead of the default 5-point skeleton that preserves the shape.

Workload construction (key generation for up to 100 attributes) is
cached per (scheme, shape) so each benchmark body times exactly one
Encrypt or Decrypt.
"""

import os

import pytest

from repro.analysis.timing import build_lewko, build_ours
from repro.ec.params import PRESETS

PRESET_NAME = os.environ.get("REPRO_BENCH_PRESET", "SS512")
PRESET = PRESETS[PRESET_NAME]

if os.environ.get("REPRO_BENCH_FULL"):
    AUTHORITY_SWEEP = list(range(2, 21, 2))
    ATTRIBUTE_SWEEP = list(range(2, 21, 2))
else:
    AUTHORITY_SWEEP = [2, 5, 10, 15, 20]
    ATTRIBUTE_SWEEP = [2, 5, 10, 15, 20]

# Fixed counts from the paper: "the involved number of attributes per
# authority is set to be 5" / "the number of authority ... fixed to be 5".
FIXED_ATTRS = 5
FIXED_AUTHORITIES = 5

_ours_cache = {}
_lewko_cache = {}


def ours_workload(n_authorities, attrs_per_authority):
    key = (n_authorities, attrs_per_authority)
    if key not in _ours_cache:
        _ours_cache[key] = build_ours(PRESET, *key, seed=42)
    return _ours_cache[key]


def lewko_workload(n_authorities, attrs_per_authority):
    key = (n_authorities, attrs_per_authority)
    if key not in _lewko_cache:
        _lewko_cache[key] = build_lewko(PRESET, *key, seed=42)
    return _lewko_cache[key]


_ciphertext_cache = {}


def ours_ciphertext(n_authorities, attrs_per_authority):
    key = ("ours", n_authorities, attrs_per_authority)
    if key not in _ciphertext_cache:
        _ciphertext_cache[key] = ours_workload(
            n_authorities, attrs_per_authority
        ).encrypt()
    return _ciphertext_cache[key]


def lewko_ciphertext(n_authorities, attrs_per_authority):
    key = ("lewko", n_authorities, attrs_per_authority)
    if key not in _ciphertext_cache:
        _ciphertext_cache[key] = lewko_workload(
            n_authorities, attrs_per_authority
        ).encrypt()
    return _ciphertext_cache[key]


def run_once(benchmark, fn, *args):
    """One timed round: crypto at these sizes is slow and deterministic
    enough that single-shot timing preserves the paper's curves."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture(scope="session", autouse=True)
def _announce():
    print(f"\n[repro-bench] preset={PRESET_NAME} "
          f"authority sweep={AUTHORITY_SWEEP} attribute sweep={ATTRIBUTE_SWEEP}")
    yield

"""Byte-metered message passing between simulated entities.

:class:`Network` is the single chokepoint every cross-entity transfer
goes through in the in-process simulation: it hands the payload to the
recipient and records the transfer on a :class:`repro.system.meter.
Meter` — the same accounting object the asyncio service deployment
(:mod:`repro.service`) uses, so the Table IV role-pair counters are
directly comparable between the two modes.

The network is synchronous and lossless — the paper measures sizes and
local crypto time, not latency or loss (see DESIGN.md §2).
"""

from __future__ import annotations

from repro.pairing.group import PairingGroup
from repro.system.meter import (  # noqa: F401  (re-exported legacy names)
    ROLE_AA,
    ROLE_CA,
    ROLE_OWNER,
    ROLE_SERVER,
    ROLE_USER,
    ChannelStats,
    MessageLogEntry,
    Meter,
    role_pair,
)


class Network:
    """The metering fabric all simulated entities share."""

    def __init__(self, group: PairingGroup, meter: Meter = None):
        self.group = group
        self.meter = meter if meter is not None else Meter(group)

    def send(self, sender, recipient, kind: str, payload):
        """Record a transfer and return the payload (synchronous delivery)."""
        self.meter.record(
            sender.name, sender.role, recipient.name, recipient.role,
            kind, payload,
        )
        return payload

    # -- reporting (delegates to the meter) ------------------------------------

    @property
    def log(self) -> list:
        return self.meter.log

    @property
    def channels(self) -> dict:
        return self.meter.channels

    def bytes_between(self, role_a: str, role_b: str) -> int:
        return self.meter.bytes_between(role_a, role_b)

    def messages_between(self, role_a: str, role_b: str) -> int:
        return self.meter.messages_between(role_a, role_b)

    def bytes_by_kind(self) -> dict:
        return self.meter.bytes_by_kind()

    def total_bytes(self) -> int:
        return self.meter.total_bytes()

    def reset(self) -> None:
        """Clear counters (e.g. after setup, before the measured phase)."""
        self.meter.reset()

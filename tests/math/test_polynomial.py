"""Tests for polynomials over Z_mod and Lagrange interpolation."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.polynomial import (
    Polynomial,
    interpolate_at_zero,
    lagrange_coefficients_at_zero,
)

MOD = 0x8BE5EA5F01D1943560CD


class TestPolynomial:
    @given(st.integers(0, MOD - 1), st.integers(0, 6), st.integers(0, 2**32))
    def test_constant_term(self, constant, degree, seed):
        polynomial = Polynomial.random_with_constant(
            constant, degree, MOD, random.Random(seed)
        )
        assert polynomial.evaluate(0) == constant
        assert polynomial.constant == constant
        assert polynomial.degree == degree

    def test_horner_matches_naive(self):
        polynomial = Polynomial(coefficients=(3, 1, 4, 1, 5), mod=MOD)
        x = 0xABCDEF
        naive = sum(
            coefficient * pow(x, power, MOD)
            for power, coefficient in enumerate(polynomial.coefficients)
        ) % MOD
        assert polynomial.evaluate(x) == naive

    def test_shares(self):
        polynomial = Polynomial(coefficients=(7, 2), mod=MOD)
        shares = polynomial.shares([1, 2, 3])
        assert shares == {1: 9, 2: 11, 3: 13}

    def test_empty_rejected(self):
        with pytest.raises(MathError):
            Polynomial(coefficients=(), mod=MOD)

    def test_negative_degree_rejected(self):
        with pytest.raises(MathError):
            Polynomial.random_with_constant(1, -1, MOD, random.Random(0))


class TestInterpolation:
    @given(
        st.integers(0, MOD - 1),
        st.integers(1, 5),
        st.integers(0, 2**32),
    )
    def test_threshold_reconstruction(self, secret, degree, seed):
        rng = random.Random(seed)
        polynomial = Polynomial.random_with_constant(secret, degree, MOD, rng)
        xs = rng.sample(range(1, 100), degree + 1)
        points = polynomial.shares(xs)
        assert interpolate_at_zero(points, MOD) == secret

    def test_coefficients_sum_property(self):
        weights = lagrange_coefficients_at_zero([1, 2, 3], MOD)
        # Interpolating the constant polynomial f ≡ 1 must give 1.
        assert sum(weights.values()) % MOD == 1

    def test_too_few_points_give_wrong_answer(self):
        rng = random.Random(5)
        polynomial = Polynomial.random_with_constant(123, 3, MOD, rng)
        points = polynomial.shares([1, 2, 3])  # need 4 for degree 3
        assert interpolate_at_zero(points, MOD) != 123

    def test_duplicate_points_rejected(self):
        with pytest.raises(MathError):
            lagrange_coefficients_at_zero([1, 1, 2], MOD)

    def test_zero_point_rejected(self):
        with pytest.raises(MathError):
            lagrange_coefficients_at_zero([0, 1], MOD)

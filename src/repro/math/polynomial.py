"""Polynomials over Z_mod and Lagrange interpolation.

The Shamir machinery shared by the threshold access trees (BSW), the
Chase baseline, and any future threshold construction: random
polynomials with a fixed constant term, Horner evaluation, and
interpolation at zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import MathError
from repro.math.integers import invmod


@dataclass(frozen=True)
class Polynomial:
    """A polynomial over Z_mod, coefficients lowest-degree first."""

    coefficients: tuple
    mod: int

    def __post_init__(self):
        if not self.coefficients:
            raise MathError("a polynomial needs at least one coefficient")

    @classmethod
    def random_with_constant(cls, constant: int, degree: int, mod: int,
                             rng: random.Random) -> "Polynomial":
        """Uniform polynomial of the given degree with f(0) = constant."""
        if degree < 0:
            raise MathError("degree must be non-negative")
        coefficients = [constant % mod] + [
            rng.randrange(mod) for _ in range(degree)
        ]
        return cls(coefficients=tuple(coefficients), mod=mod)

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    @property
    def constant(self) -> int:
        return self.coefficients[0]

    def evaluate(self, x: int) -> int:
        """Horner evaluation of f(x) mod mod."""
        result = 0
        for coefficient in reversed(self.coefficients):
            result = (result * x + coefficient) % self.mod
        return result

    def shares(self, xs) -> dict:
        """{x: f(x)} for each evaluation point."""
        return {x: self.evaluate(x) for x in xs}


def lagrange_coefficients_at_zero(xs, mod: int) -> dict:
    """{x_j: Δ_j(0)} such that Σ Δ_j(0)·f(x_j) = f(0) for deg f < |xs|.

    The points must be distinct and nonzero modulo ``mod``.
    """
    xs = list(xs)
    if len(set(x % mod for x in xs)) != len(xs):
        raise MathError("interpolation points must be distinct mod mod")
    coefficients = {}
    for x_j in xs:
        if x_j % mod == 0:
            raise MathError("interpolation points must be nonzero")
        numerator, denominator = 1, 1
        for x_m in xs:
            if x_m == x_j:
                continue
            numerator = numerator * (-x_m) % mod
            denominator = denominator * (x_j - x_m) % mod
        coefficients[x_j] = numerator * invmod(denominator, mod) % mod
    return coefficients


def interpolate_at_zero(points: dict, mod: int) -> int:
    """Recover f(0) from {x: f(x)} samples (|points| > deg f)."""
    weights = lagrange_coefficients_at_zero(points.keys(), mod)
    return sum(weights[x] * y for x, y in points.items()) % mod

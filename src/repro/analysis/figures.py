"""Programmatic regeneration of the paper's Figures 3 and 4.

The pytest-benchmark harness gives statistically careful per-point
timings; this module gives the *figure* — the full (x, ours, lewko)
series plus a terminal-friendly ASCII chart and CSV export — in one
call, for scripts and notebooks::

    from repro.analysis.figures import figure_series, render_ascii
    series = figure_series("3a", preset=TOY80, sweep=[2, 4, 6])
    print(render_ascii(series))

Figure ids follow the paper: ``3a``/``3b`` sweep the number of
authorities at 5 attributes each; ``4a``/``4b`` sweep attributes per
authority at 5 authorities; ``a`` = encryption, ``b`` = decryption.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.timing import build_lewko, build_ours
from repro.ec.params import TypeAParams

FIGURES = {
    "3a": ("encrypt", "authorities", "Fig 3(a): encryption vs #authorities"),
    "3b": ("decrypt", "authorities", "Fig 3(b): decryption vs #authorities"),
    "4a": ("encrypt", "attributes", "Fig 4(a): encryption vs attrs/authority"),
    "4b": ("decrypt", "attributes", "Fig 4(b): decryption vs attrs/authority"),
}

FIXED = 5  # the paper fixes the non-swept parameter at 5


@dataclass(frozen=True)
class FigurePoint:
    x: int
    ours_seconds: float
    lewko_seconds: float
    #: Amortized per-ciphertext cost through a warm
    #: :class:`repro.fastpath.DecryptionSession` — decrypt figures only.
    session_seconds: float = None


@dataclass(frozen=True)
class FigureSeries:
    figure_id: str
    title: str
    x_label: str
    points: tuple

    @property
    def has_session(self) -> bool:
        return any(p.session_seconds is not None for p in self.points)

    def to_csv(self) -> str:
        header = f"{self.x_label},ours_seconds,lewko_seconds"
        if self.has_session:
            header += ",session_seconds"
        lines = [header]
        for point in self.points:
            row = (f"{point.x},{point.ours_seconds:.6f},"
                   f"{point.lewko_seconds:.6f}")
            if self.has_session:
                row += f",{(point.session_seconds or 0.0):.6f}"
            lines.append(row)
        return "\n".join(lines) + "\n"


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def figure_series(figure_id: str, preset: TypeAParams, sweep,
                  seed: int = 42, repeats: int = 1) -> FigureSeries:
    """Measure one figure's two curves over the given sweep.

    ``repeats`` > 1 takes the minimum of several runs per point (the
    usual noise-reduction for wall-clock microbenchmarks).
    """
    try:
        operation, axis, title = FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    points = []
    for x in sweep:
        if axis == "authorities":
            n_authorities, attrs = x, FIXED
        else:
            n_authorities, attrs = FIXED, x
        ours = build_ours(preset, n_authorities, attrs, seed=seed)
        lewko = build_lewko(preset, n_authorities, attrs, seed=seed)
        session_time = None
        if operation == "encrypt":
            ours_time = min(
                _time_once(ours.encrypt) for _ in range(repeats)
            )
            lewko_time = min(
                _time_once(lewko.encrypt) for _ in range(repeats)
            )
        else:
            from repro.fastpath import DecryptionSession

            ours_ct = ours.encrypt()
            lewko_ct = lewko.encrypt()
            ours_time = min(
                _time_once(lambda: ours.decrypt(ours_ct))
                for _ in range(repeats)
            )
            lewko_time = min(
                _time_once(lambda: lewko.decrypt(lewko_ct))
                for _ in range(repeats)
            )
            # The amortized third curve: a warm session replaying its
            # prepared Miller chains (setup excluded — it is paid once
            # per (user, policy) and amortizes across the record class).
            session = DecryptionSession(
                ours.group, ours_ct, ours.user_public_key, ours.secret_keys
            )
            session_time = min(
                _time_once(lambda: session.decrypt(ours_ct))
                for _ in range(repeats)
            )
        points.append(
            FigurePoint(x=x, ours_seconds=ours_time,
                        lewko_seconds=lewko_time,
                        session_seconds=session_time)
        )
    x_label = ("n_authorities" if axis == "authorities"
               else "attrs_per_authority")
    return FigureSeries(
        figure_id=figure_id, title=title, x_label=x_label,
        points=tuple(points),
    )


def render_ascii(series: FigureSeries, width: int = 60) -> str:
    """A horizontal bar chart for terminals.

    ``o`` bars are our scheme, ``L`` bars the Lewko baseline, and — on
    decrypt figures — ``s`` bars the warm-session amortized path; all
    are scaled to the slowest measurement in the series.
    """
    peak = max(
        max(point.ours_seconds, point.lewko_seconds)
        for point in series.points
    )
    scale = (width - 1) / peak if peak > 0 else 0
    pad = len(series.x_label) + 5
    lines = [series.title, ""]
    for point in series.points:
        ours_bar = "o" * max(1, int(point.ours_seconds * scale))
        lewko_bar = "L" * max(1, int(point.lewko_seconds * scale))
        lines.append(
            f"{series.x_label}={point.x:<3} "
            f"ours    {point.ours_seconds * 1000:9.1f} ms |{ours_bar}"
        )
        lines.append(
            f"{'':<{pad}}"
            f"lewko   {point.lewko_seconds * 1000:9.1f} ms |{lewko_bar}"
        )
        if point.session_seconds is not None:
            session_bar = "s" * max(1, int(point.session_seconds * scale))
            lines.append(
                f"{'':<{pad}}"
                f"session {point.session_seconds * 1000:9.1f} ms "
                f"|{session_bar}"
            )
    return "\n".join(lines)

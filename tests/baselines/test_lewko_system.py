"""Tests for the Lewko baseline deployment (Table IV measurement rig)."""

import pytest

from repro.baselines.lewko_system import LewkoCloudSystem
from repro.ec.params import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
    StorageError,
)


@pytest.fixture()
def system():
    deployment = LewkoCloudSystem(TOY80, seed=66)
    deployment.add_authority("hospital", ["doctor", "nurse"])
    deployment.add_authority("trial", ["researcher"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.issue_keys("bob", "hospital", ["doctor"])
    deployment.issue_keys("bob", "trial", ["researcher"])
    deployment.upload(
        "alice", "rec",
        {"c": (b"payload", "hospital:doctor AND trial:researcher")},
    )
    return deployment


class TestDataPath:
    def test_roundtrip(self, system):
        assert system.read("bob", "rec", "c") == b"payload"

    def test_unauthorized_denied(self, system):
        system.add_user("eve")
        system.issue_keys("eve", "hospital", ["nurse"])
        with pytest.raises(PolicyNotSatisfiedError):
            system.read("eve", "rec", "c")

    def test_keyless_user_denied(self, system):
        system.add_user("mallory")
        with pytest.raises(AuthorizationError):
            system.read("mallory", "rec", "c")

    def test_unknown_record(self, system):
        with pytest.raises(StorageError):
            system.read("bob", "ghost", "c")

    def test_foreign_key_rejected(self, system):
        system.add_user("eve")
        bob_key = system.users["bob"]._keys["hospital"]
        with pytest.raises(SchemeError):
            system.users["eve"].receive_key(bob_key)

    def test_partial_or_policy_works_without_all_authorities(self, system):
        """The baseline's structural difference from the reproduced
        scheme: an OR branch decrypts without keys from the other AA."""
        system.upload(
            "alice", "rec2",
            {"c": (b"either", "hospital:doctor OR trial:researcher")},
        )
        system.add_user("solo")
        system.issue_keys("solo", "hospital", ["doctor"])
        assert system.read("solo", "rec2", "c") == b"either"


class TestMetering:
    def test_channels_active(self, system):
        system.read("bob", "rec", "c")
        network = system.network
        assert network.bytes_between("aa", "user") > 0
        assert network.bytes_between("aa", "owner") > 0
        assert network.bytes_between("owner", "server") > 0
        assert network.bytes_between("server", "user") > 0

    def test_ciphertext_dominates_storage(self, system):
        group = system.group
        record = system.server.record("rec")
        ct = record.component("c").abe_ciphertext
        assert (
            ct.element_size_bytes(group)
            == 3 * group.gt_bytes + 4 * group.g1_bytes  # l=2 rows
        )
        assert system.server.storage_bytes() > ct.element_size_bytes(group)

    def test_bigger_than_ours_on_the_wire(self, system):
        """The Table IV headline, measured end-to-end: the baseline's
        server<->user traffic exceeds ours for the same read."""
        from repro.system.workflow import CloudStorageSystem

        ours = CloudStorageSystem(TOY80, seed=66)
        ours.add_authority("hospital", ["doctor", "nurse"])
        ours.add_authority("trial", ["researcher"])
        ours.add_owner("alice")
        ours.add_user("bob")
        ours.issue_keys("bob", "hospital", ["doctor"], "alice")
        ours.issue_keys("bob", "trial", ["researcher"], "alice")
        ours.upload(
            "alice", "rec",
            {"c": (b"payload", "hospital:doctor AND trial:researcher")},
        )
        ours.read("bob", "rec", "c")
        system.read("bob", "rec", "c")
        ours_bytes = ours.network.bytes_between("server", "user")
        lewko_bytes = system.network.bytes_between("server", "user")
        assert ours_bytes < lewko_bytes

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``       — run an end-to-end multi-authority access-control demo
* ``tables``     — print the Table I-IV cost models for a given shape
* ``primitives`` — time the pairing substrate's primitive operations
* ``params``     — generate fresh type-A pairing parameters
* ``serve``      — run the networked cloud-storage service (asyncio TCP)
* ``load``       — run the fleet-scale load harness (closed/open loop,
  capacity sweep with knee detection, serial-vs-pipelined comparison)
* ``client``     — talk to a running service (ping / stats / list /
  smoke / sweep / bench-encrypt / bench-decrypt)
* ``cluster``    — drive a sharded multi-node fleet (smoke / health /
  stats / scrub / list)
* ``adversary``  — run the adversarial scenario engine (list / run /
  matrix): scripted semantic attacks with machine-checked invariants
* ``info``       — show the built-in parameter presets

Everything the CLI does is also available (with more control) through
the library API; the CLI exists so a new user can see the system work
before writing any code.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.costmodel import (
    SystemShape,
    table2_lewko,
    table2_ours,
    table3_lewko,
    table3_ours,
    table4_lewko,
    table4_ours,
)
from repro.analysis.scalability import render_table1
from repro.ec.params import PRESETS, generate_type_a
from repro.pairing.group import PairingGroup
from repro.pairing.serialize import element_sizes


def _add_preset_argument(parser):
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="TOY80",
        help="pairing parameter preset (default: TOY80)",
    )


def _add_chaos_arguments(parser):
    chaos = parser.add_argument_group(
        "chaos", "seeded fault injection for the smoke/sweep cycles "
                 "(enabled by --chaos-seed)"
    )
    chaos.add_argument("--chaos-seed", type=int, default=None,
                       help="run smoke through a ChaosProxy with this seed")
    chaos.add_argument("--chaos-drop", type=float, default=0.06,
                       help="per-reply-frame connection-drop rate")
    chaos.add_argument("--chaos-delay", type=float, default=0.04,
                       help="per-reply-frame delay rate (past the timeout)")
    chaos.add_argument("--chaos-corrupt", type=float, default=0.04,
                       help="per-reply-frame corruption rate")
    chaos.add_argument("--chaos-truncate", type=float, default=0.03,
                       help="per-reply-frame truncation rate")
    chaos.add_argument("--chaos-duplicate", type=float, default=0.05,
                       help="per-reply-frame duplication rate")
    chaos.add_argument("--chaos-delay-seconds", type=float, default=1.0,
                       help="how long a delayed reply is held back")
    chaos.add_argument("--chaos-trace", default=None, metavar="FILE",
                       help="replay a recorded fault trace (JSON from "
                            "--chaos-trace-out) instead of rolling new "
                            "dice; exact same faults on the same frames")
    chaos.add_argument("--chaos-trace-out", default=None, metavar="FILE",
                       dest="chaos_trace_out",
                       help="record this run's injected faults as a "
                            "replayable JSON trace")


def _cmd_demo(args) -> int:
    from repro.errors import PolicyNotSatisfiedError
    from repro.system.workflow import CloudStorageSystem

    out = args.out
    system = CloudStorageSystem(PRESETS[args.preset], seed=args.seed)
    system.add_authority("hospital", ["doctor", "nurse"])
    system.add_authority("trial", ["researcher"])
    system.add_owner("alice")
    system.add_user("bob")
    system.issue_keys("bob", "hospital", ["doctor"], "alice")
    system.issue_keys("bob", "trial", ["researcher"], "alice")
    system.add_user("eve")
    system.issue_keys("eve", "hospital", ["nurse"], "alice")
    system.issue_keys("eve", "trial", ["researcher"], "alice")
    system.upload(
        "alice", "record",
        {"secret": (b"the plan", "hospital:doctor AND trial:researcher")},
    )
    print(f"preset           : {args.preset}", file=out)
    print(f"policy           : hospital:doctor AND trial:researcher", file=out)
    print(f"bob reads        : {system.read('bob', 'record', 'secret')!r}",
          file=out)
    try:
        system.read("eve", "record", "secret")
        print("eve reads        : !! policy failed", file=out)
        return 1
    except PolicyNotSatisfiedError:
        print("eve reads        : denied (PolicyNotSatisfiedError)", file=out)
    system.revoke("hospital", "bob", ["doctor"])
    try:
        system.read("bob", "record", "secret")
        print("bob post-revoke  : !! revocation failed", file=out)
        return 1
    except Exception as exc:
        print(f"bob post-revoke  : denied ({type(exc).__name__})", file=out)
    print(f"storage used     : {system.server.storage_bytes()} bytes", file=out)
    print(f"messages metered : {len(system.network.log)}", file=out)
    return 0


def _cmd_tables(args) -> int:
    out = args.out
    shape = SystemShape(
        n_authorities=args.authorities,
        attrs_per_authority=args.attributes,
        user_attrs_per_authority=args.user_attributes or args.attributes,
        policy_rows=args.rows or args.authorities * args.attributes,
    )
    sizes = element_sizes(PRESETS[args.preset])
    print("Table I — scalability comparison", file=out)
    print(render_table1(), file=out)

    def show(title, ours, lewko, keys):
        print(f"\n{title} (bytes, preset {args.preset})", file=out)
        print(f"{'':<16}{'ours':>10}{'lewko':>10}", file=out)
        for key in keys:
            label = key if isinstance(key, str) else f"{key[0]}<->{key[1]}"
            print(
                f"{label:<16}{ours[key].bytes(sizes):>10}"
                f"{lewko[key].bytes(sizes):>10}",
                file=out,
            )

    show("Table II — component sizes", table2_ours(shape),
         table2_lewko(shape),
         ["authority_key", "public_key", "secret_key", "ciphertext"])
    show("Table III — storage overhead", table3_ours(shape),
         table3_lewko(shape), ["authority", "owner", "user", "server"])
    show("Table IV — communication cost", table4_ours(shape),
         table4_lewko(shape),
         [("aa", "user"), ("aa", "owner"), ("server", "user"),
          ("owner", "server")])
    return 0


def _cmd_primitives(args) -> int:
    out = args.out
    group = PairingGroup(PRESETS[args.preset], seed=args.seed)
    group.gt  # warm the cached generator
    samples = args.samples

    def clock(label, fn):
        start = time.perf_counter()
        for _ in range(samples):
            fn()
        elapsed = (time.perf_counter() - start) / samples
        print(f"{label:<22} {elapsed * 1000:9.3f} ms", file=out)

    x, y = group.random_g1(), group.random_g1()
    exponent = group.random_scalar()
    counter = [0]

    def fresh_hash():
        counter[0] += 1
        group.hash_to_g1(f"gid{counter[0]}")

    print(f"primitive timings, preset {args.preset}, "
          f"mean of {samples} runs", file=out)
    clock("pairing", lambda: group.pair(x, y))
    clock("G exponentiation", lambda: group.g ** exponent)
    clock("GT exponentiation", lambda: group.gt ** exponent)
    clock("hash to Z_r", lambda: group.hash_to_scalar("attribute"))
    clock("hash to G", fresh_hash)
    return 0


def _cmd_figures(args) -> int:
    from repro.analysis.figures import FIGURES, figure_series, render_ascii

    out = args.out
    sweep = [int(x) for x in args.sweep.split(",")]
    for figure_id in (args.only.split(",") if args.only else sorted(FIGURES)):
        series = figure_series(
            figure_id, PRESETS[args.preset], sweep, repeats=args.repeats
        )
        print(render_ascii(series), file=out)
        print("", file=out)
    return 0


def _cmd_params(args) -> int:
    out = args.out
    params = generate_type_a(args.rbits, args.pbits, seed=args.seed)
    print(f"r = {hex(params.r)}", file=out)
    print(f"p = {hex(params.p)}", file=out)
    print(f"h = (p+1)/r = {hex(params.h)}", file=out)
    print(f"g = ({hex(params.generator[0])},", file=out)
    print(f"     {hex(params.generator[1])})", file=out)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    shape = SystemShape(
        n_authorities=args.authorities,
        attrs_per_authority=args.attributes,
        user_attrs_per_authority=args.attributes,
        policy_rows=args.authorities * args.attributes,
    )
    text = generate_report(PRESETS[args.preset], shape)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=args.out)
    else:
        print(text, file=args.out)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    out = args.out
    group = PairingGroup(PRESETS[args.preset], seed=args.seed)

    async def run() -> int:
        store = RecordStore(args.root, group,
                            cache_entries=args.cache_entries,
                            cache_bytes=args.cache_bytes)
        service = StorageService(
            group, store, host=args.host, port=args.port,
            name=args.cluster_node or "cloud",
            idle_timeout=args.idle_timeout, read_only=args.read_only,
            workers=args.workers, sweep_chunk=args.sweep_chunk,
            max_inflight=args.max_inflight,
        )
        await service.start()
        mode = " [read-only]" if args.read_only else ""
        if args.workers:
            mode += f" [{args.workers} crypto workers]"
        if args.cluster_node:
            mode += f" [cluster node {args.cluster_node}]"
        print(
            f"repro service listening on {service.host}:{service.port} "
            f"(preset {args.preset}, root {args.root}){mode}",
            file=out, flush=True,
        )
        try:
            if args.max_seconds > 0:
                await asyncio.wait_for(service.serve_forever(),
                                       args.max_seconds)
            else:
                await service.serve_forever()
        except asyncio.TimeoutError:
            print("max runtime reached; shutting down", file=out, flush=True)
        finally:
            await service.stop()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shut down", file=out, flush=True)
        return 0


def _cmd_load(args) -> int:
    import asyncio
    import json as json_module
    import tempfile

    from repro.loadgen import (
        LoadHarness,
        OpMix,
        capacity_model,
        pipelined_vs_serial,
        start_local_service,
    )

    out = args.out
    group = PairingGroup(PRESETS[args.preset], seed=args.seed)
    mix = OpMix.parse(args.mix) if args.mix else OpMix.default()
    records = args.records
    ops = args.ops
    levels = tuple(int(part) for part in args.levels.split(","))
    duration = args.duration
    if args.smoke:
        # Seconds, not minutes: shrink pools and op counts, keep the
        # worker shape (the compare mode still runs 32 workers, just
        # briefly) — byte-identity checking is never relaxed.
        records = min(records, 12)
        ops = min(ops, 6)
        levels = tuple(level for level in levels if level <= 8) or (2, 4, 8)
        duration = min(duration, 1.0)

    async def run() -> int:
        service = None
        tmp = None
        host, port = args.host, args.port
        if host is None:
            tmp = tempfile.TemporaryDirectory()
            service = await start_local_service(
                group, tmp.name, max_inflight=args.server_max_inflight,
                cache_entries=args.cache_entries,
                cache_bytes=args.cache_bytes,
            )
            host, port = service.host, service.port
            print(f"self-hosted service on {host}:{port} "
                  f"(max_inflight {args.server_max_inflight})",
                  file=out, flush=True)
        status = 0
        try:
            if args.mode == "compare":
                result = await pipelined_vs_serial(
                    group, host, port, workers=args.concurrency,
                    ops_per_worker=ops, warmup_ops=args.warmup_ops,
                    connections=args.connections,
                    max_inflight=args.max_inflight, rtt=args.rtt,
                    users=args.users, records=records, alpha=args.alpha,
                    seed=args.seed or 0,
                )
                if not result["byte_identical"]:
                    print("FAIL: pipelined responses are NOT "
                          "byte-identical to serial", file=out, flush=True)
                    status = 1
            else:
                harness = LoadHarness(
                    group, host, port, users=args.users, records=records,
                    alpha=args.alpha, seed=args.seed or 0,
                    connections=args.connections,
                    max_inflight=args.max_inflight,
                )
                await harness.setup()
                try:
                    if args.mode == "capacity":
                        result = await capacity_model(
                            harness, levels=levels, ops_per_worker=ops,
                            warmup_ops=args.warmup_ops, mix=mix,
                        )
                    elif args.mode == "open":
                        result = await harness.run_open(
                            args.rate, duration, warmup=args.warmup,
                            max_outstanding=args.max_outstanding, mix=mix,
                        )
                    else:  # closed
                        result = await harness.run_closed(
                            args.concurrency, ops,
                            warmup_ops=args.warmup_ops, mix=mix,
                        )
                finally:
                    await harness.close()
        finally:
            if service is not None:
                await service.stop()
            if tmp is not None:
                tmp.cleanup()
        payload = json_module.dumps(result, indent=2, sort_keys=True)
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"report written to {args.json_out}", file=out,
                  flush=True)
        else:
            print(payload, file=out)
        return status

    return asyncio.run(run())


def _chaos_from_args(args):
    """FaultSpec + effective timeout from the shared chaos flag group."""
    chaos = None
    timeout = args.timeout
    if args.chaos_seed is not None:
        from repro.service.faults import FaultSpec

        chaos = FaultSpec(
            drop=args.chaos_drop, delay=args.chaos_delay,
            corrupt=args.chaos_corrupt, truncate=args.chaos_truncate,
            duplicate=args.chaos_duplicate,
            delay_seconds=args.chaos_delay_seconds,
        )
        if timeout is None:
            # The injected delays must overrun the client timeout,
            # or the delay fault would never be visible.
            timeout = max(0.25, args.chaos_delay_seconds / 2)
    return chaos, timeout


def _cmd_client(args) -> int:
    import asyncio
    import json as json_module

    from repro.service.client import BaseClient, ServiceConnection

    out = args.out
    params = PRESETS[args.preset]
    if args.action == "bench-encrypt":
        from repro.service.smoke import run_bench_encrypt

        return asyncio.run(run_bench_encrypt(
            params, args.host, args.port, out=out, seed=args.seed,
            components=args.components,
            timeout=30.0 if args.timeout is None else args.timeout,
        ))
    if args.action == "bench-decrypt":
        from repro.service.smoke import run_bench_decrypt

        return asyncio.run(run_bench_decrypt(
            params, args.host, args.port, out=out, seed=args.seed,
            components=args.components,
            timeout=30.0 if args.timeout is None else args.timeout,
        ))
    if args.action in ("smoke", "sweep"):
        from repro.service.smoke import run_smoke, run_sweep_cycle

        chaos, timeout = _chaos_from_args(args)
        chaos_replay = None
        if args.chaos_trace:
            with open(args.chaos_trace, "r", encoding="utf-8") as handle:
                chaos_replay = json_module.load(handle)
            chaos = None  # a replayed trace IS the fault plan
        report = {}
        if args.action == "sweep":
            status = asyncio.run(run_sweep_cycle(
                params, args.host, args.port, out=out, seed=args.seed,
                records=args.records,
                chaos=chaos, chaos_seed=args.chaos_seed or 0,
                chaos_replay=chaos_replay,
                timeout=30.0 if timeout is None else timeout,
                report=report,
            ))
        else:
            status = asyncio.run(run_smoke(
                params, args.host, args.port, out=out, seed=args.seed,
                chaos=chaos, chaos_seed=args.chaos_seed or 0,
                chaos_replay=chaos_replay,
                timeout=30.0 if timeout is None else timeout,
                report=report,
            ))
        if args.chaos_trace_out:
            trace = report.get("chaos_trace")
            if trace is None:
                print("no chaos proxy ran; nothing to record "
                      "(--chaos-trace-out needs --chaos-seed or "
                      "--chaos-trace)", file=out)
                return status or 2
            with open(args.chaos_trace_out, "w",
                      encoding="utf-8") as handle:
                json_module.dump(trace, handle, indent=1)
            print(f"chaos trace ({len(trace.get('injected', []))} "
                  f"recorded faults) written to {args.chaos_trace_out}",
                  file=out)
        return status

    group = PairingGroup(params, seed=args.seed)

    async def run() -> int:
        connection = ServiceConnection(
            group, args.host, args.port, role="user", name="cli",
            timeout=30.0 if args.timeout is None else args.timeout,
        )
        client = BaseClient(await connection.connect())
        try:
            if args.action == "ping":
                print("pong" if await client.ping() else "no pong",
                      file=out)
            elif args.action == "stats":
                print(json_module.dumps(await client.stats(), indent=2),
                      file=out)
            elif args.action == "health":
                print(json_module.dumps(await client.health(), indent=2),
                      file=out)
            else:  # list
                for record_id in await client.list_records():
                    print(record_id, file=out)
        finally:
            await client.close()
        return 0

    return asyncio.run(run())


def _cmd_cluster(args) -> int:
    import asyncio
    import json as json_module

    out = args.out
    params = PRESETS[args.preset]
    if args.action == "smoke":
        from repro.cluster.smoke import run_cluster_smoke

        chaos, timeout = _chaos_from_args(args)
        return asyncio.run(run_cluster_smoke(
            params, nodes=args.nodes, replication=args.replication,
            records=args.records, out=out,
            seed=1 if args.seed is None else args.seed,
            chaos=chaos, chaos_seed=args.chaos_seed or 0,
            ring_seed=args.ring_seed,
            timeout=30.0 if timeout is None else timeout,
        ))

    from repro.cluster import ClusterClient, ClusterMap, parse_node_spec

    if not args.node:
        print(f"cluster {args.action} needs at least one "
              f"--node [name=]host:port", file=out)
        return 2
    try:
        nodes = [parse_node_spec(spec) for spec in args.node]
        cluster_map = ClusterMap(
            nodes, replication=min(args.replication, len(nodes)),
            write_quorum=args.write_quorum, ring_seed=args.ring_seed,
        )
    except ValueError as exc:
        print(f"bad cluster topology: {exc}", file=out)
        return 2
    group = PairingGroup(params, seed=args.seed)

    async def run() -> int:
        cluster = ClusterClient(
            group, cluster_map, role="user", name="cli",
            timeout=30.0 if args.timeout is None else args.timeout,
        )
        try:
            if args.action == "health":
                report = await cluster.health_all()
                print(json_module.dumps(report, indent=2), file=out)
                return 0 if report["status"] == "ok" else 1
            if args.action == "stats":
                print(json_module.dumps(await cluster.stats_all(),
                                        indent=2), file=out)
                return 0
            if args.action == "list":
                for record_id in await cluster.list_records():
                    print(record_id, file=out)
                return 0
            report = await cluster.scrub()
            print(json_module.dumps(report, indent=2), file=out)
            return 0 if not report["lost"] else 1
        finally:
            await cluster.close()

    return asyncio.run(run())


def _cmd_adversary(args) -> int:
    import json as json_module

    from repro.adversary.engine import (
        get_scenario,
        run_matrix,
        run_scenario,
        scenario_names,
    )

    out = args.out
    if args.action == "list":
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name}: {spec.title}", file=out)
            print(f"    claim   : {spec.claim}", file=out)
            print(f"    control : {spec.control} "
                  f"(must fail {spec.control_invariant!r})", file=out)
        return 0

    params = {}
    for item in args.param:
        key, _, value = item.partition("=")
        if not _:
            print(f"bad --param {item!r} (want KEY=VALUE)", file=out)
            return 2
        try:
            params[key] = json_module.loads(value)
        except ValueError:
            params[key] = value

    if args.action == "run":
        if not args.scenario:
            print("adversary run needs --scenario NAME "
                  "(see: repro adversary list)", file=out)
            return 2
        try:
            report = run_scenario(
                args.scenario, preset=args.preset, seed=args.seed,
                control=args.control, params=params or None,
                out=out if args.verbose else None,
            )
        except KeyError as exc:
            print(exc.args[0], file=out)
            return 2
        verdicts = [report]
    else:  # matrix
        seeds = [int(x) for x in args.seeds.split(",")] \
            if args.seeds else [args.seed]
        names = args.scenario.split(",") if args.scenario else None
        try:
            report = run_matrix(
                names, preset=args.preset, seeds=seeds,
                modes=("control",) if args.control
                else ("honest", "control"),
                params=params or None, out=out if args.verbose else None,
            )
        except KeyError as exc:
            print(exc.args[0], file=out)
            return 2
        verdicts = report["verdicts"]

    for verdict in verdicts:
        status = "ok" if verdict["ok"] else "NOT OK"
        failed = [inv["name"] for inv in verdict["invariants"]
                  if not inv["ok"]]
        line = (f"{status:>6}  {verdict['scenario']:<20} "
                f"[{verdict['mode']}] seed {verdict['seed']} "
                f"({verdict['seconds']}s)")
        if verdict["error"]:
            line += f" error: {verdict['error']}"
        elif failed:
            line += f" failed: {', '.join(failed)}"
        print(line, file=out)
    ok = (report["ok"] if args.action == "matrix"
          else all(v["ok"] for v in verdicts))
    print(f"adversary {args.action}: "
          f"{'ok' if ok else 'FAILED'}", file=out)
    if args.out_json:
        with open(args.out_json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=1)
        print(f"verdicts written to {args.out_json}", file=out)
    return 0 if ok else 1


def _cmd_info(args) -> int:
    out = args.out
    for name, params in sorted(PRESETS.items()):
        sizes = element_sizes(params)
        print(f"{name}: r={params.r_bits} bits, p={params.p_bits} bits, "
              f"|Zr|={sizes.zr}B |G|={sizes.g1}B |GT|={sizes.gt}B", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-authority CP-ABE access control (Yang-Jia, "
                    "ICDCS 2012) — reproduction toolkit",
    )
    parser.add_argument(
        "--arith-backend", choices=("auto", "pure", "gmpy2"), default=None,
        help="big-integer arithmetic core (default: REPRO_ARITH_BACKEND "
             "env, else auto — gmpy2 when installed, pure otherwise; "
             "requesting gmpy2 explicitly fails if it is not installed)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run an end-to-end demo")
    _add_preset_argument(demo)
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(handler=_cmd_demo)

    tables = subparsers.add_parser("tables", help="print Table I-IV models")
    _add_preset_argument(tables)
    tables.add_argument("--authorities", type=int, default=5)
    tables.add_argument("--attributes", type=int, default=5)
    tables.add_argument("--user-attributes", type=int, default=0,
                        dest="user_attributes")
    tables.add_argument("--rows", type=int, default=0)
    tables.set_defaults(handler=_cmd_tables)

    primitives = subparsers.add_parser(
        "primitives", help="time pairing substrate primitives"
    )
    _add_preset_argument(primitives)
    primitives.add_argument("--samples", type=int, default=10)
    primitives.add_argument("--seed", type=int, default=1)
    primitives.set_defaults(handler=_cmd_primitives)

    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's timing figures (ASCII)"
    )
    _add_preset_argument(figures)
    figures.add_argument("--sweep", default="2,5,10",
                         help="comma-separated x values (default 2,5,10)")
    figures.add_argument("--only", default="",
                         help="comma-separated figure ids, e.g. 3a,4b")
    figures.add_argument("--repeats", type=int, default=1)
    figures.set_defaults(handler=_cmd_figures)

    params = subparsers.add_parser(
        "params", help="generate fresh type-A pairing parameters"
    )
    params.add_argument("--rbits", type=int, default=80)
    params.add_argument("--pbits", type=int, default=160)
    params.add_argument("--seed", type=int, default=None)
    params.set_defaults(handler=_cmd_params)

    report = subparsers.add_parser(
        "report", help="write the full analytic-evaluation report (markdown)"
    )
    _add_preset_argument(report)
    report.add_argument("--authorities", type=int, default=5)
    report.add_argument("--attributes", type=int, default=5)
    report.add_argument("--output", default="",
                        help="file path (default: stdout)")
    report.set_defaults(handler=_cmd_report)

    serve = subparsers.add_parser(
        "serve", help="run the cloud-storage service on a TCP socket"
    )
    _add_preset_argument(serve)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7468,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--root", default="repro-data",
                       help="record-store directory (created if absent)")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       dest="idle_timeout",
                       help="per-connection idle timeout in seconds")
    serve.add_argument("--read-only", action="store_true",
                       help="refuse writes (typed, retryable errors) while "
                            "serving reads")
    serve.add_argument("--workers", type=int, default=0,
                       help="crypto process-pool size for bulk sweeps "
                            "(0 = run sweeps inline on the offload thread)")
    serve.add_argument("--sweep-chunk", type=int, default=16,
                       dest="sweep_chunk",
                       help="records re-encrypted per sweep chunk / "
                            "progress frame (default 16)")
    serve.add_argument("--cluster-node", default=None, dest="cluster_node",
                       metavar="NAME",
                       help="serve as the named node of a storage cluster "
                            "(the name clients place records by)")
    serve.add_argument("--max-seconds", type=float, default=0,
                       dest="max_seconds",
                       help="auto-shutdown after this many seconds (0 = run "
                            "until interrupted; useful for CI)")
    serve.add_argument("--cache-entries", type=int, default=128,
                       dest="cache_entries",
                       help="BlobStore read-cache entry bound (default 128)")
    serve.add_argument("--cache-bytes", type=int, default=32 * 1024 * 1024,
                       dest="cache_bytes",
                       help="BlobStore read-cache byte bound (default "
                            "32 MiB)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       dest="max_inflight",
                       help="pipelined requests dispatched concurrently per "
                            "session (1 = serial dispatch, default 32)")
    serve.set_defaults(handler=_cmd_serve)

    load = subparsers.add_parser(
        "load", help="run the fleet-scale load harness against a service"
    )
    _add_preset_argument(load)
    load.add_argument("--seed", type=int, default=None)
    load.add_argument("--mode",
                      choices=["closed", "open", "capacity", "compare"],
                      default="capacity",
                      help="closed = one closed-loop run; open = Poisson "
                           "arrivals at --rate; capacity = closed-loop "
                           "sweep over --levels with knee detection; "
                           "compare = serial vs pipelined with "
                           "byte-identity checking (exit 1 on mismatch)")
    load.add_argument("--host", default=None,
                      help="target service host (default: self-host an "
                           "in-process server on a temporary store)")
    load.add_argument("--port", type=int, default=7468)
    load.add_argument("--users", type=int, default=100_000,
                      help="simulated registered-user population (shapes "
                           "the record-id namespace)")
    load.add_argument("--records", type=int, default=48,
                      help="physical record pool size")
    load.add_argument("--alpha", type=float, default=1.1,
                      help="Zipf popularity exponent (0 = uniform)")
    load.add_argument("--mix", default=None,
                      help='op mix over fetch/decrypt/upload/replace/'
                           'sweep, e.g. "fetch=0.55,decrypt=0.25,'
                           'upload=0.1,replace=0.08,sweep=0.02" '
                           '(decrypt = full user read: download + '
                           'session-cached ABE decryption)')
    load.add_argument("--concurrency", type=int, default=32,
                      help="workers (closed/compare modes)")
    load.add_argument("--ops", type=int, default=40,
                      help="measured ops per worker (closed loops)")
    load.add_argument("--warmup-ops", type=int, default=5,
                      dest="warmup_ops")
    load.add_argument("--levels", default="4,16,32",
                      help="comma-separated concurrency levels for "
                           "--mode capacity")
    load.add_argument("--rate", type=float, default=400.0,
                      help="open-loop arrival rate (ops/sec)")
    load.add_argument("--duration", type=float, default=3.0,
                      help="open-loop measure window (seconds)")
    load.add_argument("--warmup", type=float, default=0.5,
                      help="open-loop warmup window (seconds)")
    load.add_argument("--max-outstanding", type=int, default=256,
                      dest="max_outstanding",
                      help="open-loop in-flight bound; arrivals past it "
                           "are shed and counted")
    load.add_argument("--connections", type=int, default=4,
                      help="physical connections the workers share")
    load.add_argument("--max-inflight", type=int, default=32,
                      dest="max_inflight",
                      help="client pipeline window per connection "
                           "(1 = serial client)")
    load.add_argument("--rtt", type=float, default=0.004,
                      help="emulated round trip for --mode compare "
                           "(seconds; 0 = raw loopback)")
    load.add_argument("--server-max-inflight", type=int, default=64,
                      dest="server_max_inflight",
                      help="self-hosted server's per-session window "
                           "(1 = serial server; ignored with --host)")
    load.add_argument("--cache-entries", type=int, default=128,
                      dest="cache_entries",
                      help="self-hosted server's blob-cache entry bound")
    load.add_argument("--cache-bytes", type=int, default=32 * 1024 * 1024,
                      dest="cache_bytes",
                      help="self-hosted server's blob-cache byte bound")
    load.add_argument("--smoke", action="store_true",
                      help="shrink pools/op counts to run in seconds; "
                           "byte-identity checking is never relaxed")
    load.add_argument("--json-out", default=None, dest="json_out",
                      metavar="FILE",
                      help="write the result JSON here instead of stdout")
    load.set_defaults(handler=_cmd_load)

    client = subparsers.add_parser(
        "client", help="talk to a running repro service"
    )
    _add_preset_argument(client)
    client.add_argument("action",
                        choices=["ping", "stats", "health", "list", "smoke",
                                 "sweep", "bench-encrypt", "bench-decrypt"],
                        help="smoke runs the full upload/read/revoke cycle; "
                             "sweep bulk-revokes many records in one "
                             "REENCRYPT_SWEEP request; bench-encrypt times "
                             "the session engine against the cold Encrypt "
                             "path over a live upload; bench-decrypt times "
                             "cold vs session vs server-transformed reads "
                             "(and checks the outsourced path costs zero "
                             "client pairings)")
    client.add_argument("--seed", type=int, default=None)
    client.add_argument("--records", type=int, default=24,
                        help="records to populate for the sweep cycle "
                             "(default 24)")
    client.add_argument("--components", type=int, default=8,
                        help="components to encrypt/decrypt in the "
                             "bench-encrypt/bench-decrypt cycles "
                             "(default 8)")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7468)
    client.add_argument("--timeout", type=float, default=None,
                        help="per-request client timeout in seconds")
    _add_chaos_arguments(client)
    client.set_defaults(handler=_cmd_client)

    cluster = subparsers.add_parser(
        "cluster", help="drive a sharded multi-node storage fleet"
    )
    _add_preset_argument(cluster)
    cluster.add_argument(
        "action", choices=["smoke", "health", "stats", "scrub", "list"],
        help="smoke starts its own N-node fleet and runs the full "
             "replicate/repair/kill/fleet-sweep acceptance cycle; "
             "health/stats/scrub/list talk to running nodes named by "
             "--node"
    )
    cluster.add_argument("--seed", type=int, default=None)
    cluster.add_argument("--node", action="append", default=[],
                         metavar="[NAME=]HOST:PORT",
                         help="a running node (repeatable); names must "
                              "match the ones the fleet was built with")
    cluster.add_argument("--nodes", type=int, default=3,
                         help="fleet size for the smoke cycle (default 3)")
    cluster.add_argument("--records", type=int, default=6,
                         help="records uploaded by the smoke cycle "
                              "(default 6)")
    cluster.add_argument("--replication", type=int, default=2,
                         help="replicas per record (default 2; clamped to "
                              "the node count for live-fleet actions)")
    cluster.add_argument("--write-quorum", type=int, default=None,
                         dest="write_quorum",
                         help="write acks required (default: majority of "
                              "replicas)")
    cluster.add_argument("--ring-seed", type=int, default=0,
                         dest="ring_seed",
                         help="consistent-hash ring seed (must match "
                              "across every client of the same fleet)")
    cluster.add_argument("--timeout", type=float, default=None,
                         help="per-request client timeout in seconds")
    _add_chaos_arguments(cluster)
    cluster.set_defaults(handler=_cmd_cluster)

    adversary = subparsers.add_parser(
        "adversary",
        help="run scripted semantic attacks with machine-checked "
             "security invariants",
    )
    _add_preset_argument(adversary)
    adversary.add_argument(
        "action", choices=["list", "run", "matrix"],
        help="list the registered scenarios; run one scenario in one "
             "mode; matrix runs scenarios x modes x seeds and fails "
             "unless every honest run passes AND every control run "
             "fails its declared invariant",
    )
    adversary.add_argument("--scenario", default="",
                           help="scenario name for run (one) or matrix "
                                "(comma-separated; default all)")
    adversary.add_argument("--seed", type=int, default=1,
                           help="scenario seed (default 1)")
    adversary.add_argument("--seeds", default="",
                           help="comma-separated seed list for matrix "
                                "(overrides --seed)")
    adversary.add_argument("--control", action="store_true",
                           help="run with the scenario's defense "
                                "disabled; the declared invariant must "
                                "FAIL for the run to count as ok")
    adversary.add_argument("--param", action="append", default=[],
                           metavar="KEY=VALUE",
                           help="scenario tuning knob, repeatable "
                                "(e.g. records=4)")
    adversary.add_argument("--verbose", action="store_true",
                           help="stream per-invariant PASS/FAIL notes")
    adversary.add_argument("--out-json", default="", dest="out_json",
                           help="write the full verdict JSON to this file")
    adversary.set_defaults(handler=_cmd_adversary)

    info = subparsers.add_parser("info", help="show built-in presets")
    info.set_defaults(handler=_cmd_info)

    return parser


def main(argv=None, out=None) -> int:
    """Entry point; ``out`` overrides stdout for testing."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.arith_backend is not None:
        from repro.errors import MathError
        from repro.math.backend import resolve_backend, set_backend
        set_backend(args.arith_backend)
        try:
            resolve_backend()  # fail fast on a hard gmpy2 request
        except MathError as exc:
            set_backend(None)
            parser.error(str(exc))
    args.out = out or sys.stdout
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Shared reporting helpers for the ``BENCH_*.json`` writers.

Every bench records WHICH arithmetic core produced its numbers — a
``BENCH_*.json`` regenerated under gmpy2 is not comparable to one from
the pure-Python backend, and the Montgomery toggle changes the REDC
column of the op counters. :func:`arith_metadata` captures the active
backend configuration; :func:`counter_summary` routes the group's
operation counters through a :class:`repro.system.meter.Meter` under
backend-namespaced keys (``pure.fp_muls``, ``gmpy2.mont.redcs``, …) so
cross-backend runs land in distinct columns of the same report.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.math.backend import available_backends, gmpy2_available
from repro.system.meter import Meter


def arith_metadata(group) -> dict:
    """The arithmetic-core block every ``BENCH_*.json`` embeds."""
    return {
        "backend": group.backend_name,
        "montgomery": group.montgomery,
        "gmpy2_available": gmpy2_available(),
        "backends_available": list(available_backends()),
    }


def counter_summary(group, meter: Meter = None) -> dict:
    """Backend-namespaced operation counts via ``Meter.counter_summary``.

    Each non-zero counter from :meth:`PairingGroup.op_counts` is bumped
    into ``meter`` under ``<backend>[.mont].<op>``, and the meter's
    counter summary is returned — benches that already carry a
    :class:`Meter` pass it in so crypto-op tallies and byte counters
    share one report block.
    """
    if meter is None:
        meter = Meter(group)
    prefix = group.backend_name
    if group.montgomery:
        prefix += ".mont"
    for op, value in group.op_counts().items():
        if value:
            meter.bump(f"{prefix}.{op}", value)
    return meter.counter_summary()

"""Waters CP-ABE (PKC 2011) — the paper's security-reduction target.

Reference [3] of the paper. Theorem 2's proof "build[s] a simulator B
that plays the decisional q-BDHE problem … as the construction in [3]";
implementing Waters' single-authority LSSS scheme alongside the
multi-authority one makes that lineage concrete: the reproduced scheme
is structurally Waters' construction with the per-user randomness ``t``
replaced by the CA-issued identity exponent ``u`` and the master secret
split across authorities' version keys.

Construction (symmetric pairing, LSSS policies, H : attribute → G):

* Setup: ``α, a ← Z_r``; PK = ``(g, e(g,g)^α, g^a)``; MSK = ``g^α``.
* KeyGen(S): ``t ← Z_r``; ``K = g^α·g^{at}``, ``L = g^t``,
  ``K_x = H(x)^t`` for ``x ∈ S``.
* Encrypt(M, (A, ρ)): share ``s`` via ``v``; per row ``r_i ← Z_r``;
  ``C = M·e(g,g)^{αs}``, ``C' = g^s``,
  ``C_i = g^{a·λ_i}·H(ρ(i))^{-r_i}``, ``D_i = g^{r_i}``.
* Decrypt: ``e(C', K) / ∏_i (e(C_i, L)·e(D_i, K_{ρ(i)}))^{w_i}
  = e(g,g)^{αs}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemeError
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.lsss import LsssMatrix, lsss_from_policy


@dataclass(frozen=True)
class WatersPublicKey:
    e_gg_alpha: GTElement   # e(g,g)^α
    g_a: G1Element          # g^a


@dataclass(frozen=True)
class WatersUserKey:
    k: G1Element            # g^α · g^{at}
    l: G1Element            # g^t
    components: dict        # attribute -> H(x)^t

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.components)


@dataclass(frozen=True)
class WatersCiphertextRow:
    c: G1Element            # g^{aλ_i} · H(ρ(i))^{-r_i}
    d: G1Element            # g^{r_i}


@dataclass(frozen=True)
class WatersCiphertext:
    c0: GTElement           # M · e(g,g)^{αs}
    c_prime: G1Element      # g^s
    rows: tuple
    matrix: LsssMatrix

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def element_size_bytes(self, group: PairingGroup) -> int:
        """|GT| + (2l + 1)·|G| — between ours and Lewko's in size."""
        return group.gt_bytes + (2 * self.n_rows + 1) * group.g1_bytes


class WatersScheme:
    """One Waters deployment: a single authority over all attributes."""

    def __init__(self, group: PairingGroup):
        self.group = group
        alpha = group.random_scalar()
        self._a = group.random_scalar()
        self._g_alpha = group.g ** alpha
        self.public_key = WatersPublicKey(
            e_gg_alpha=group.gt ** alpha, g_a=group.g ** self._a
        )

    def _hash_attribute(self, attribute: str) -> G1Element:
        return self.group.hash_to_g1(attribute, domain=b"repro.waters.attr")

    def keygen(self, attributes) -> WatersUserKey:
        group = self.group
        t = group.random_scalar()
        components = {
            attribute: self._hash_attribute(attribute) ** t
            for attribute in set(attributes)
        }
        if not components:
            raise SchemeError("Waters keys need at least one attribute")
        return WatersUserKey(
            k=self._g_alpha * (self.public_key.g_a ** t),
            l=group.g ** t,
            components=components,
        )

    def encrypt(self, message: GTElement, policy,
                threshold_method: str = "expand") -> WatersCiphertext:
        group = self.group
        matrix = lsss_from_policy(policy, threshold_method=threshold_method)
        order = group.order
        s = group.random_scalar()
        shares = matrix.share(s, order, group.rng)
        rows = []
        for index, label in enumerate(matrix.row_labels):
            r_i = group.random_scalar()
            rows.append(WatersCiphertextRow(
                c=(self.public_key.g_a ** shares[index])
                * (self._hash_attribute(label) ** (-r_i % order)),
                d=group.g ** r_i,
            ))
        return WatersCiphertext(
            c0=message * (self.public_key.e_gg_alpha ** s),
            c_prime=group.g ** s,
            rows=tuple(rows),
            matrix=matrix,
        )

    def decrypt(self, ciphertext: WatersCiphertext,
                key: WatersUserKey) -> GTElement:
        group = self.group
        order = group.order
        coefficients = ciphertext.matrix.reconstruction_coefficients(
            key.attributes, order
        )
        denominator = group.identity_gt()
        for index, w in coefficients.items():
            label = ciphertext.matrix.row_labels[index]
            row = ciphertext.rows[index]
            term = group.pair(row.c, key.l) * group.pair(
                row.d, key.components[label]
            )
            denominator = denominator * (term ** w)
        blinding = group.pair(ciphertext.c_prime, key.k) / denominator
        return ciphertext.c0 / blinding

"""LatencyProxy: adds distance, never reorders or corrupts bytes."""

import asyncio
import time

import pytest

from repro.loadgen.netem import LatencyProxy


async def _echo_server():
    async def handle(reader, writer):
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def test_bytes_pass_through_unchanged_and_in_order():
    async def body():
        server, port = await _echo_server()
        proxy = await LatencyProxy("127.0.0.1", port, rtt=0.02).start()
        try:
            reader, writer = await asyncio.open_connection(
                proxy.host, proxy.port
            )
            payloads = [bytes([n]) * (n + 1) for n in range(10)]
            for payload in payloads:
                writer.write(payload)
            await writer.drain()
            expected = b"".join(payloads)
            echoed = await asyncio.wait_for(
                reader.readexactly(len(expected)), 5.0
            )
            writer.close()
            return expected, echoed
        finally:
            await proxy.stop()
            server.close()
            await server.wait_closed()

    expected, echoed = asyncio.run(body())
    assert echoed == expected


def test_round_trip_pays_the_configured_rtt():
    async def body():
        server, port = await _echo_server()
        rtt = 0.08
        proxy = await LatencyProxy("127.0.0.1", port, rtt=rtt).start()
        try:
            reader, writer = await asyncio.open_connection(
                proxy.host, proxy.port
            )
            started = time.perf_counter()
            writer.write(b"ping")
            await writer.drain()
            await asyncio.wait_for(reader.readexactly(4), 5.0)
            elapsed = time.perf_counter() - started
            writer.close()
            return rtt, elapsed
        finally:
            await proxy.stop()
            server.close()
            await server.wait_closed()

    rtt, elapsed = asyncio.run(body())
    # One request + one reply crosses the proxy twice: >= rtt total.
    assert elapsed >= rtt * 0.9


def test_negative_rtt_is_rejected():
    with pytest.raises(ValueError):
        LatencyProxy("127.0.0.1", 1, rtt=-0.001)

"""Tests for type-A parameter generation and the frozen presets."""

import pytest

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.params import PRESETS, SS512, TOY80, TypeAParams, generate_type_a
from repro.errors import ParameterError
from repro.math.field import PrimeField
from repro.math.primes import is_prime


class TestPresets:
    @pytest.mark.parametrize("params", [TOY80, SS512], ids=["TOY80", "SS512"])
    def test_structure(self, params):
        assert is_prime(params.r)
        assert is_prime(params.p)
        assert params.p % 4 == 3
        assert (params.p + 1) % params.r == 0
        assert params.h == (params.p + 1) // params.r

    def test_bit_sizes_match_names(self):
        assert TOY80.r_bits == 80 and TOY80.p_bits == 160
        assert SS512.r_bits == 160 and SS512.p_bits == 512

    @pytest.mark.parametrize("params", [TOY80, SS512], ids=["TOY80", "SS512"])
    def test_generator_order(self, params):
        curve = SupersingularCurve(PrimeField(params.p, check_prime=False))
        assert curve.is_on_curve(params.generator)
        assert curve.mul(params.generator, params.r) is INFINITY

    def test_registry(self):
        assert PRESETS["TOY80"] is TOY80
        assert PRESETS["SS512"] is SS512


class TestValidation:
    def test_rejects_composite_r(self):
        with pytest.raises(ParameterError):
            TypeAParams(r=TOY80.r + 1, p=TOY80.p, generator=TOY80.generator)

    def test_rejects_wrong_cofactor(self):
        with pytest.raises(ParameterError):
            TypeAParams(r=5, p=TOY80.p, generator=TOY80.generator)

    def test_rejects_off_curve_generator(self):
        with pytest.raises(ParameterError):
            TypeAParams(r=TOY80.r, p=TOY80.p, generator=(1, 1))

    def test_rejects_wrong_order_generator(self):
        # A random full-group point is (overwhelmingly) not killed by r.
        curve = SupersingularCurve(PrimeField(TOY80.p, check_prime=False))
        import random

        point = curve.random_point(random.Random(1))
        if curve.mul(point, TOY80.r) is INFINITY:  # pragma: no cover
            pytest.skip("improbable: random point landed in subgroup")
        with pytest.raises(ParameterError):
            TypeAParams(r=TOY80.r, p=TOY80.p, generator=point)


class TestGeneration:
    def test_generate_small(self):
        params = generate_type_a(24, 48, seed=77)
        assert params.r_bits == 24
        assert params.p_bits == 48
        curve = SupersingularCurve(PrimeField(params.p, check_prime=False))
        assert curve.mul(params.generator, params.r) is INFINITY

    def test_deterministic_with_seed(self):
        a = generate_type_a(20, 40, seed=3)
        b = generate_type_a(20, 40, seed=3)
        assert (a.r, a.p, a.generator) == (b.r, b.p, b.generator)

    def test_rejects_tight_sizes(self):
        with pytest.raises(ParameterError):
            generate_type_a(20, 22, seed=1)

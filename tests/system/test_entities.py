"""Unit tests for individual entity actors."""

import pytest

from repro.ec.params import TOY80
from repro.errors import SchemeError, StorageError
from repro.system.workflow import CloudStorageSystem


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=31)
    deployment.add_authority("hospital", ["doctor"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    return deployment


class TestUserEntity:
    def test_rejects_foreign_public_key(self, system):
        bob = system.users["bob"]
        system.add_user("eve")
        eve_pk = system.users["eve"].public_key
        with pytest.raises(SchemeError):
            bob.receive_public_key(eve_pk)

    def test_rejects_foreign_secret_key(self, system):
        system.add_user("eve")
        system.issue_keys("eve", "hospital", ["doctor"], "alice")
        eve_key = system.users["eve"].secret_keys_for("alice")["hospital"]
        with pytest.raises(SchemeError):
            system.users["bob"].receive_secret_key(eve_key)

    def test_key_bookkeeping(self, system):
        system.issue_keys("bob", "hospital", ["doctor"], "alice")
        bob = system.users["bob"]
        assert bob.has_keys_from("hospital")
        assert not bob.has_keys_from("trial")
        assert set(bob.secret_keys_for("alice")) == {"hospital"}
        bob.drop_keys("hospital", "alice")
        assert not bob.has_keys_from("hospital")


class TestServerEntity:
    def test_unknown_record(self, system):
        with pytest.raises(StorageError):
            system.server.record("nope")

    def test_record_ids(self, system):
        system.issue_keys("bob", "hospital", ["doctor"], "alice")
        system.upload("alice", "r1", {"c": (b"x", "hospital:doctor")})
        assert system.server.record_ids == {"r1"}

    def test_duplicate_record_id_rejected(self, system):
        system.issue_keys("bob", "hospital", ["doctor"], "alice")
        system.upload("alice", "r1", {"c": (b"x", "hospital:doctor")})
        record = system.server.record("r1")
        with pytest.raises(StorageError, match="already exists"):
            system.server.store(record)
        # Explicit replacement is allowed.
        system.server.store(record, replace=True)
        assert system.server.record("r1") is record

    def test_reencrypt_unknown_ciphertext(self, system):
        system.issue_keys("bob", "hospital", ["doctor"], "alice")
        system.upload("alice", "r1", {"c": (b"x", "hospital:doctor")})
        result = system.authorities["hospital"].core.rekey("bob", ["doctor"])
        _, update_key = result
        with pytest.raises(StorageError):
            system.server.reencrypt("ghost-ct", update_key, None)


class TestAuthorityEntity:
    def test_issue_key_routes_through_network(self, system):
        before = system.network.messages_between("aa", "user")
        system.issue_keys("bob", "hospital", ["doctor"], "alice")
        assert system.network.messages_between("aa", "user") == before + 1

    def test_entity_names_and_roles(self, system):
        assert system.authorities["hospital"].role == "aa"
        assert system.owners["alice"].role == "owner"
        assert system.users["bob"].role == "user"
        assert system.server.role == "server"
        assert system.ca.role == "ca"
        assert repr(system.server) == "ServerEntity('cloud')"

"""Table I — scalability comparison of multi-authority ABE schemes.

A static feature matrix (the paper's Table I), encoded as data so the
benchmark harness can print it and the tests can assert the claims that
are *checkable against our implementations*:

* our scheme needs no global authority — checked: the CA issues only
  identifiers, never key material that decrypts;
* our scheme supports any LSSS policy — checked: AND/OR/threshold
  policies all round-trip through encryption;
* collusion of any number of users fails — checked by the adversarial
  tests pooling keys across UIDs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchemeScalability:
    scheme: str
    reference: str
    requires_global_authority: bool
    policy_type: str           # "any LSSS" or "AND only"
    collusion_bound: str       # "any" or "up to m"
    implemented_here: str      # module path, or "" if analysis-only


TABLE1 = (
    SchemeScalability(
        scheme="Ours (Yang-Jia 2012)",
        reference="this paper",
        requires_global_authority=False,
        policy_type="any LSSS",
        collusion_bound="any",
        implemented_here="repro.core",
    ),
    SchemeScalability(
        scheme="Chase",
        reference="[7] TCC 2007",
        requires_global_authority=True,
        policy_type="AND only",
        collusion_bound="any",
        implemented_here="repro.baselines.chase",
    ),
    SchemeScalability(
        scheme="Muller et al.",
        reference="[8] ISC 2009",
        requires_global_authority=True,
        policy_type="any LSSS",
        collusion_bound="any",
        implemented_here="",
    ),
    SchemeScalability(
        scheme="Chase-Chow",
        reference="[9] CCS 2009",
        requires_global_authority=False,
        policy_type="AND only",
        collusion_bound="any",
        implemented_here="",
    ),
    SchemeScalability(
        scheme="Lin et al.",
        reference="[24] Inf. Sci. 2010",
        requires_global_authority=False,
        policy_type="any LSSS",
        collusion_bound="up to m",
        implemented_here="",
    ),
    SchemeScalability(
        scheme="Lewko-Waters",
        reference="[10] EUROCRYPT 2011",
        requires_global_authority=False,
        policy_type="any LSSS",
        collusion_bound="any",
        implemented_here="repro.baselines.lewko",
    ),
)


def table1_rows() -> tuple:
    """The Table I feature matrix."""
    return TABLE1


def render_table1() -> str:
    """ASCII rendering matching the paper's column layout."""
    header = (
        f"{'Scheme':<24} {'Global authority?':<18} "
        f"{'Policy type':<12} {'Colluders':<10} {'Implemented':<24}"
    )
    lines = [header, "-" * len(header)]
    for row in TABLE1:
        lines.append(
            f"{row.scheme:<24} "
            f"{'Yes' if row.requires_global_authority else 'No':<18} "
            f"{row.policy_type:<12} {row.collusion_bound:<10} "
            f"{row.implemented_here or '(analysis only)':<24}"
        )
    return "\n".join(lines)

"""Deterministic, seed-driven fault injection between client and server.

:class:`ChaosProxy` is a real TCP proxy that sits on the wire in front
of a :class:`repro.service.server.StorageService`. Requests (client →
server) are forwarded verbatim; replies (server → client) are parsed at
frame granularity so every injected failure is a *well-defined* wire
event:

* ``drop``      — the connection is severed at a frame boundary, after
  the server already processed the request (the nasty case for
  mutations: only idempotency keys make the retry safe);
* ``delay``     — the reply is held back for ``delay_seconds``, long
  enough to push a client past its timeout;
* ``corrupt``   — the reply's type byte has its high bit flipped, so the
  client sees an unknown frame type (a garbled reply, not a typed
  error);
* ``truncate``  — the frame header promises the full reply but only
  half the payload arrives before the connection closes;
* ``duplicate`` — the reply frame is sent twice, exercising the v2
  sequence-number discard path;
* ``withhold``  — the frame is swallowed but the connection stays up:
  the client sees silence, not an error (the adversarial server that
  "forgets" to stream a SWEEP_PROGRESS frame);
* ``reorder``   — the frame is held back and emitted *after* the next
  forwarded frame, so replies arrive out of order.

Every decision is drawn from a :class:`random.Random` seeded per
connection from the proxy seed, so a failing run replays exactly. A
``schedule`` mapping (global reply-frame index → fault name) overrides
the dice for tests that need one specific fault at one specific
moment; a ``type_schedule`` mapping (frame type byte → list of fault
names, consumed FIFO) targets faults at *semantic* frame types — "the
first two SWEEP_PROGRESS frames are withheld" — independent of how
many handshake frames preceded them. Everything injected is recorded
in :attr:`ChaosProxy.injected` so tests can cross-check the client's
retry log against ground truth, and :meth:`ChaosProxy.trace` exports
that record as a replayable JSON document — feed it back through
:meth:`ChaosProxy.from_trace` (or ``repro client smoke
--chaos-trace``) to re-run a failing scenario with the exact fault
schedule instead of the dice.

:meth:`ChaosProxy.partition` simulates a network partition: existing
connections are severed and new ones are refused until
:meth:`ChaosProxy.heal` — the upstream node itself stays healthy, which
is exactly the "stale replica behind a partition" shape the cluster
adversary scenarios need.

:class:`ChaosFleet` scales the same machinery to a cluster: ONE process
fronts N upstream nodes, one listener per node, each with its own
:class:`FaultSpec`, its own derived seed, and its own schedule — so a
multi-node test can make exactly one replica misbehave (or all of them,
independently) while every connection still flows through proxies whose
injections replay deterministically.
"""

from __future__ import annotations

import asyncio
import random

_FAULTS = ("drop", "delay", "corrupt", "truncate", "duplicate",
           "withhold", "reorder")


class FaultSpec:
    """Per-frame fault probabilities (plus the delay duration)."""

    def __init__(self, *, drop: float = 0.0, delay: float = 0.0,
                 corrupt: float = 0.0, truncate: float = 0.0,
                 duplicate: float = 0.0, withhold: float = 0.0,
                 reorder: float = 0.0, delay_seconds: float = 1.5):
        self.drop = drop
        self.delay = delay
        self.corrupt = corrupt
        self.truncate = truncate
        self.duplicate = duplicate
        self.withhold = withhold
        self.reorder = reorder
        self.delay_seconds = delay_seconds
        if sum(self.rates().values()) > 1.0:
            raise ValueError("fault rates must sum to at most 1")

    def rates(self) -> dict:
        return {name: getattr(self, name) for name in _FAULTS}

    def draw(self, rng: random.Random):
        """One fault decision: a fault name, or ``None`` to forward."""
        roll = rng.random()
        for name, rate in self.rates().items():
            if roll < rate:
                return name
            roll -= rate
        return None


class ChaosProxy:
    """A frame-aware TCP proxy injecting seeded faults into replies."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 spec: FaultSpec = None, seed: int = 0,
                 schedule: dict = None, type_schedule: dict = None,
                 host: str = "127.0.0.1"):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.spec = spec if spec is not None else FaultSpec()
        self.seed = seed
        self.schedule = dict(schedule or {})
        # frame type byte -> FIFO of fault names; MessageType enums work
        # as keys too (int() normalizes them).
        self.type_schedule = {int(key): list(value)
                              for key, value in (type_schedule or {}).items()}
        self.host = host
        self.port = None
        self.partitioned = False
        self.injected = []       # [{conn, frame, fault, frame_type}, ...]
        self._server = None
        self._tasks = set()
        self._conn_tasks = set()
        self._writers = set()
        self._conn_counter = 0
        self._reply_counter = 0  # global reply-frame index (schedule key)

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "ChaosProxy":
        self._server = await asyncio.start_server(self._accept, self.host, 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        # Let the per-connection handlers finish their teardown so no
        # half-cancelled task survives into loop shutdown.
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._tasks.clear()
        self._conn_tasks.clear()
        self._writers.clear()

    def fault_counts(self) -> dict:
        counts = {}
        for fault in self.injected:
            counts[fault["fault"]] = counts.get(fault["fault"], 0) + 1
        return counts

    # -- partition injection ----------------------------------------------

    def partition(self) -> None:
        """Cut this proxy off: sever live connections, refuse new ones.

        The upstream node keeps running untouched — from the cluster's
        point of view it is unreachable, not dead, which is the shape
        that leaves stale replicas behind after :meth:`heal`.
        """
        self.partitioned = True
        for writer in list(self._writers):
            writer.close()

    def heal(self) -> None:
        """End the partition; new connections relay normally again."""
        self.partitioned = False

    # -- replayable fault traces ------------------------------------------

    def trace(self) -> dict:
        """A JSON-safe record of this run's faults, replayable exactly.

        The ``injected`` log *is* the schedule of a replay: every fault
        this proxy rolled (or was scheduled) is pinned to its global
        reply-frame index, so :meth:`from_trace` can re-run the same
        workload with zeroed dice and an index schedule instead.
        """
        return {
            "seed": self.seed if isinstance(self.seed, int) else str(self.seed),
            "spec": {**self.spec.rates(),
                     "delay_seconds": self.spec.delay_seconds},
            "injected": [dict(entry) for entry in self.injected],
        }

    @classmethod
    def from_trace(cls, upstream_host: str, upstream_port: int,
                   trace: dict, *, host: str = "127.0.0.1") -> "ChaosProxy":
        """A proxy that replays ``trace``'s exact fault schedule.

        The dice are zeroed; every recorded fault becomes a schedule
        entry at its original reply-frame index. Replay fidelity
        requires the client to issue the same request sequence (the
        seeded smoke/scenario cycles do).
        """
        spec = FaultSpec(
            delay_seconds=trace.get("spec", {}).get("delay_seconds", 1.5))
        schedule = {int(entry["frame"]): entry["fault"]
                    for entry in trace.get("injected", [])}
        return cls(upstream_host, upstream_port, spec=spec,
                   schedule=schedule, host=host)

    # -- per-connection plumbing ------------------------------------------

    async def _accept(self, client_reader, client_writer):
        self._conn_tasks.add(asyncio.current_task())
        try:
            await self._relay(client_reader, client_writer)
        except asyncio.CancelledError:
            # Proxy/loop shutdown mid-teardown: _relay's finally already
            # closed both writers; ending quietly keeps the cancellation
            # out of asyncio's connection-callback plumbing.
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())

    async def _relay(self, client_reader, client_writer):
        if self.partitioned:
            client_writer.close()
            return
        conn_index = self._conn_counter
        self._conn_counter += 1
        self._writers.add(client_writer)
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            self._writers.discard(client_writer)
            return
        self._writers.add(upstream_writer)
        rng = random.Random(f"{self.seed}:{conn_index}")
        pumps = [
            asyncio.ensure_future(
                self._pump_requests(client_reader, upstream_writer)
            ),
            asyncio.ensure_future(
                self._pump_replies(upstream_reader, client_writer,
                                   conn_index, rng)
            ),
        ]
        self._tasks.update(pumps)
        try:
            # Either direction ending (EOF, injected drop, error) tears
            # the whole relayed connection down, like a real middlebox.
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
                self._tasks.discard(pump)
            for writer in (client_writer, upstream_writer):
                writer.close()
                self._writers.discard(writer)
            await asyncio.gather(*pumps, return_exceptions=True)

    async def _pump_requests(self, client_reader, upstream_writer):
        """client → server: forwarded verbatim, no frame parsing."""
        try:
            while True:
                chunk = await client_reader.read(65536)
                if not chunk:
                    return
                upstream_writer.write(chunk)
                await upstream_writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return

    async def _pump_replies(self, upstream_reader, client_writer,
                            conn_index, rng):
        """server → client: one fault decision per reply frame."""
        held = None  # reorder buffer: at most one frame waiting its turn
        try:
            while True:
                header = await upstream_reader.readexactly(4)
                length = int.from_bytes(header, "big")
                payload = await upstream_reader.readexactly(length)
                frame_type = payload[0] if payload else None
                frame_index = self._reply_counter
                self._reply_counter += 1
                if frame_index in self.schedule:
                    fault = self.schedule[frame_index]
                elif self.type_schedule.get(frame_type):
                    # Semantic targeting: this frame *type*'s FIFO of
                    # pending faults, independent of global indices.
                    fault = self.type_schedule[frame_type].pop(0)
                else:
                    fault = self.spec.draw(rng)
                if fault is not None:
                    self.injected.append({
                        "conn": conn_index,
                        "frame": frame_index,
                        "fault": fault,
                        "frame_type": frame_type,
                    })
                if fault == "drop":
                    return
                if fault == "truncate":
                    client_writer.write(header + payload[:length // 2])
                    await client_writer.drain()
                    return
                if fault == "withhold":
                    # Swallow the frame; the connection lives on. The
                    # client sees silence where a reply should be.
                    continue
                if fault == "reorder":
                    # Hold this frame back; it rides out *after* the
                    # next forwarded frame (and is simply lost if the
                    # connection ends first — recorded either way).
                    held = header + payload
                    continue
                if fault == "delay":
                    await asyncio.sleep(self.spec.delay_seconds)
                elif fault == "corrupt":
                    payload = bytes([payload[0] ^ 0x80]) + payload[1:]
                frame = header + payload
                if fault == "duplicate":
                    frame += frame
                client_writer.write(frame)
                if held is not None:
                    client_writer.write(held)
                    held = None
                await client_writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            return


class ChaosFleet:
    """One process fronting many upstream nodes, one proxy per node.

    ``upstreams`` maps an upstream name to ``(host, port)``; per-name
    ``specs``/``schedules`` entries override the default ``spec`` (an
    absent entry means that node's proxy forwards faithfully — an
    all-zero :class:`FaultSpec`). Each proxy draws from its own RNG
    seeded ``f"{seed}:{name}"``, so one node's fault stream never
    shifts another's: adding faults in front of node A replays node B's
    connections bit-for-bit.

    ``address(name)`` is what a cluster map should carry so every
    client connection to that node crosses its proxy.
    """

    def __init__(self, upstreams: dict, *, spec: FaultSpec = None,
                 specs: dict = None, schedules: dict = None,
                 type_schedules: dict = None, seed: int = 0,
                 host: str = "127.0.0.1"):
        self.seed = seed
        self.proxies = {}
        specs = specs or {}
        schedules = schedules or {}
        type_schedules = type_schedules or {}
        for name, (upstream_host, upstream_port) in upstreams.items():
            node_spec = specs.get(name, spec)
            self.proxies[name] = ChaosProxy(
                upstream_host, upstream_port,
                spec=node_spec if node_spec is not None else FaultSpec(),
                seed=f"{seed}:{name}",
                schedule=schedules.get(name),
                type_schedule=type_schedules.get(name), host=host,
            )

    async def start(self) -> "ChaosFleet":
        for proxy in self.proxies.values():
            await proxy.start()
        return self

    async def stop(self) -> None:
        for proxy in self.proxies.values():
            await proxy.stop()

    def address(self, name: str) -> tuple:
        """``(host, port)`` clients should dial to reach ``name``."""
        proxy = self.proxies[name]
        return proxy.host, proxy.port

    def partition(self, name: str) -> None:
        """Partition one node's proxy (see :meth:`ChaosProxy.partition`)."""
        self.proxies[name].partition()

    def heal(self, name: str) -> None:
        self.proxies[name].heal()

    def partitioned_nodes(self) -> list:
        return [name for name, proxy in self.proxies.items()
                if proxy.partitioned]

    def trace(self) -> dict:
        """Per-node replayable fault traces (see :meth:`ChaosProxy.trace`)."""
        return {name: proxy.trace()
                for name, proxy in self.proxies.items()}

    @classmethod
    def from_trace(cls, upstreams: dict, trace: dict, *,
                   host: str = "127.0.0.1") -> "ChaosFleet":
        """A fleet whose proxies replay ``trace``'s per-node schedules."""
        fleet = cls(upstreams, host=host)
        for name, node_trace in trace.items():
            if name in fleet.proxies:
                upstream = fleet.proxies[name]
                fleet.proxies[name] = ChaosProxy.from_trace(
                    upstream.upstream_host, upstream.upstream_port,
                    node_trace, host=host,
                )
        return fleet

    def injected_by_node(self) -> dict:
        return {name: list(proxy.injected)
                for name, proxy in self.proxies.items()}

    def fault_counts(self) -> dict:
        """Aggregate fault tallies across every fronted node."""
        counts = {}
        for proxy in self.proxies.values():
            for fault, count in proxy.fault_counts().items():
                counts[fault] = counts.get(fault, 0) + count
        return counts

"""ClusterMap: roster/quorum validation, placement, serialization."""

import pytest

from repro.cluster import ClusterMap, ClusterNode, parse_node_spec
from repro.errors import ProtocolError


def nodes(count):
    return [ClusterNode(name=f"n{index}", host="127.0.0.1",
                        port=9000 + index)
            for index in range(count)]


def names_for(cluster_map, record_id):
    return [node.name for node in cluster_map.replicas_for(record_id)]


def test_parse_node_spec_forms():
    named = parse_node_spec("alpha=10.0.0.5:7468")
    assert (named.name, named.host, named.port) \
        == ("alpha", "10.0.0.5", 7468)
    bare = parse_node_spec("10.0.0.5:7468")
    assert (bare.name, bare.host, bare.port) \
        == ("10.0.0.5:7468", "10.0.0.5", 7468)


@pytest.mark.parametrize("spec", ["nonsense", "host:", ":123", "a=b:x"])
def test_parse_node_spec_rejects_garbage(spec):
    with pytest.raises(ValueError):
        parse_node_spec(spec)


def test_default_quorum_is_a_majority_of_replicas():
    assert ClusterMap(nodes(3), replication=3).write_quorum == 2
    assert ClusterMap(nodes(3), replication=2).write_quorum == 2
    assert ClusterMap(nodes(3), replication=1).write_quorum == 1


@pytest.mark.parametrize("kwargs", [
    dict(replication=4),
    dict(replication=0),
    dict(replication=2, write_quorum=3),
    dict(replication=2, write_quorum=0),
])
def test_bad_shapes_are_rejected(kwargs):
    with pytest.raises(ValueError):
        ClusterMap(nodes(3), **kwargs)


def test_duplicate_names_and_empty_roster_rejected():
    with pytest.raises(ValueError):
        ClusterMap(nodes(2) + [ClusterNode("n0", "elsewhere", 1)])
    with pytest.raises(ValueError):
        ClusterMap([])


def test_replica_sets_have_r_distinct_nodes():
    cluster_map = ClusterMap(nodes(4), replication=3)
    for index in range(50):
        replica_names = names_for(cluster_map, f"rec-{index}")
        assert len(replica_names) == len(set(replica_names)) == 3


def test_with_address_moves_transport_not_placement():
    cluster_map = ClusterMap(nodes(3))
    before = {f"r{index}": names_for(cluster_map, f"r{index}")
              for index in range(40)}
    cluster_map.with_address("n1", "10.9.9.9", 4242)
    assert (cluster_map.node("n1").host, cluster_map.node("n1").port) \
        == ("10.9.9.9", 4242)
    after = {f"r{index}": names_for(cluster_map, f"r{index}")
             for index in range(40)}
    assert before == after
    with pytest.raises(ValueError):
        cluster_map.node("ghost")


def test_json_round_trip_preserves_placement():
    original = ClusterMap(nodes(3), replication=2, write_quorum=2,
                          ring_seed=11, vnodes=32)
    restored = ClusterMap.from_json(original.to_json())
    assert restored.to_json() == original.to_json()
    for index in range(25):
        assert names_for(restored, f"rec-{index}") \
            == names_for(original, f"rec-{index}")


@pytest.mark.parametrize("text", [
    "not json", "[]", '{"nodes": "x"}', '{"nodes": [{"name": "a"}]}',
])
def test_malformed_map_is_a_protocol_error(text):
    with pytest.raises(ProtocolError):
        ClusterMap.from_json(text)


def test_placement_summary_counts_every_replica():
    cluster_map = ClusterMap(nodes(3), replication=2)
    summary = cluster_map.placement_summary(
        [f"r{index}" for index in range(10)]
    )
    assert sum(len(held) for held in summary.values()) == 20

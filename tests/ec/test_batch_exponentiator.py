"""Shared-NAF-chain batch exponentiation and batched affine chains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.ec.fixed_base import (
    BatchExponentiator,
    _naf_program,
    affine_doubling_chain,
    affine_doubling_chains,
)
from repro.ec.params import TOY80
from repro.math.field import PrimeField

FIELD = PrimeField(TOY80.p, check_prime=False)
CURVE = SupersingularCurve(FIELD)
G = TOY80.generator


def _reconstruct(program):
    return sum(sign << level for level, sign in program)


class TestNafProgram:
    @given(st.integers(0, TOY80.r - 1))
    def test_reconstructs_exponent(self, exponent):
        assert _reconstruct(_naf_program(exponent)) == exponent

    @given(st.integers(0, TOY80.r - 1))
    def test_no_adjacent_levels(self, exponent):
        levels = [level for level, _ in _naf_program(exponent)]
        assert all(b - a >= 2 for a, b in zip(levels, levels[1:]))

    def test_zero_is_empty(self):
        assert _naf_program(0) == ()


class TestBatchExponentiator:
    EXPONENTS = [0, 1, 2, 3, 12345, TOY80.r - 1, TOY80.r // 2]

    def test_matches_double_and_add(self):
        batch = BatchExponentiator(CURVE, TOY80.r, self.EXPONENTS)
        for power, exponent in zip(batch.powers(G), self.EXPONENTS):
            assert power == CURVE.mul(G, exponent)

    @given(st.lists(st.integers(0, TOY80.r * 2), min_size=1, max_size=6))
    def test_random_exponent_sets(self, exponents):
        batch = BatchExponentiator(CURVE, TOY80.r, exponents)
        for power, exponent in zip(batch.powers(G), exponents):
            assert power == CURVE.mul(G, exponent % TOY80.r)

    def test_infinity_base(self):
        batch = BatchExponentiator(CURVE, TOY80.r, [1, 2, 3])
        assert batch.powers(INFINITY) == [INFINITY] * 3

    def test_precomputed_chain_matches_internal(self):
        batch = BatchExponentiator(CURVE, TOY80.r, self.EXPONENTS)
        chain = affine_doubling_chain(CURVE, G, batch.chain_length)
        assert batch.powers(G, chain) == batch.powers(G)

    def test_short_chain_rejected(self):
        batch = BatchExponentiator(CURVE, TOY80.r, [TOY80.r - 1])
        chain = affine_doubling_chain(CURVE, G, batch.chain_length - 1)
        with pytest.raises(ValueError):
            batch.powers(G, chain)


class TestAffineDoublingChains:
    def test_matches_single_chain(self):
        points = [CURVE.mul(G, scalar) for scalar in (1, 7, 12345)]
        chains = affine_doubling_chains(CURVE, points, 30)
        for point, chain in zip(points, chains):
            assert chain == affine_doubling_chain(CURVE, point, 30)

    def test_chain_entries_are_doublings(self):
        (chain,) = affine_doubling_chains(CURVE, [G], 20)
        for level, point in enumerate(chain):
            assert point == CURVE.mul(G, 1 << level)

    def test_infinity_and_empty(self):
        assert affine_doubling_chains(CURVE, [], 5) == []
        assert affine_doubling_chains(CURVE, [INFINITY], 3) \
            == [[INFINITY] * 3]
        assert affine_doubling_chains(CURVE, [G], 0) == [[]]

    def test_order_two_point_terminates(self):
        # y = 0 doubles to infinity and must stay there, not crash the
        # batch inversion.
        x = next(
            x for x in range(TOY80.p)
            if (x * x * x + x) % TOY80.p == 0
        )
        chains = affine_doubling_chains(CURVE, [(x, 0), G], 4)
        assert chains[0] == [(x, 0), INFINITY, INFINITY, INFINITY]
        assert chains[1][3] == CURVE.mul(G, 8)

"""Level-synchronized batched *affine* EC arithmetic.

The Jacobian fast paths in :mod:`repro.ec.curve` avoid inversions by
carrying denominators in the Z coordinate — at ~11 base-field
multiplications per mixed addition. When MANY independent additions
run in lockstep, Montgomery batch inversion changes the trade: a plain
affine addition costs ~4 multiplications plus an amortized ~3 for its
share of ONE inversion per *round* (all chains advance one step per
round), so each step drops from ~11M to ~7M. The inversion is *fused*
into the round loops rather than delegated to
:func:`repro.math.integers.batch_invmod`: the prefix products
accumulate while denominators are discovered and the shared inverse
unwinds inside the apply pass, so no denominator list, zip walk, or
re-reduction pass exists per round — at these operand sizes that
bookkeeping costs as much as the saved multiplications. This is the
standard trick from large MSM implementations, applied to the two
batch shapes this codebase has:

* :func:`batch_affine_sums` — N independent "sum this list of affine
  points" problems (the offline-bundle refill: every fixed-base table
  walk of a whole refill advances together);
* :func:`batch_same_scalar_mults` — N points times ONE shared scalar
  (the subgroup check ``r·P = O`` over a decoded batch: the add and
  double denominators of a double-and-add round share one inversion).

Everything here is exact affine group arithmetic — results are
bit-identical to the Jacobian paths, which the differential tests
assert point by point.
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.math.integers import invmod


def batch_affine_sums(curve: SupersingularCurve, entry_lists) -> list:
    """Sum each list of affine points; one batch inversion per round.

    ``entry_lists[i]`` is a sequence of affine points (``INFINITY``
    entries are skipped). Returns one affine point (or ``INFINITY``)
    per list. All accumulators advance level-synchronized: round ``k``
    folds every list's ``k``-th entry in, with all chord/tangent
    denominators inverted together.
    """
    p = curve.p
    count = len(entry_lists)
    lists = [entries if isinstance(entries, list) else list(entries)
             for entries in entry_lists]
    lens = [len(entries) for entries in lists]
    # Accumulators live in flat coordinate arrays with a parallel
    # infinity flag — per-round tuple unpacking and per-add result
    # tuples would dominate over the F_p math at these operand sizes
    # (same layout rationale as batch_same_scalar_mults below). Slots
    # are walked longest-chain-first, so the live set at every round is
    # a prefix of one sorted order: expiry is two counter decrements at
    # the round boundary instead of a length test and a survivor append
    # per slot per round.
    axs = [0] * count
    ays = [0] * count
    inf = [True] * count
    order = sorted(range(count), key=lens.__getitem__, reverse=True)
    n_live = count
    while n_live and lens[order[n_live - 1]] == 0:
        n_live -= 1
    level = 0
    while n_live:
        # Phase 1: fetch this round's entry per live slot; resolve the
        # inversion-free cases (copy / skip / cancel) immediately; each
        # genuine chord or tangent folds its denominator into the
        # running prefix product as it is discovered. Denominators are
        # never ≡ 0: a chord has ex ≠ ax, and a tangent with ay == 0
        # (2-torsion) lands in the cancellation branch since 2·ay ≡ 0.
        # ``prefixes[j]`` holds the product of denominators BEFORE row
        # ``j`` (appended before the fold), so the apply pass unwinds
        # one shared inverse right-to-left with rows and prefixes
        # zipped in lockstep. Tangent rows put the doubling numerator
        # 3·ax² + 1 (a = 1 curve) in the ``num`` field, so the apply
        # pass is one uniform slope/chord formula — for a tangent
        # ``ex == ax`` makes ``slope² - ax - ex`` the doubling x.
        rows = []   # (slot, ax, ay, ex, num, denom)
        prefixes = []
        acc = 1
        pend = rows.append
        pref = prefixes.append
        for slot in order[:n_live]:
            entry = lists[slot][level]
            if entry is INFINITY:
                continue
            ex, ey = entry
            if inf[slot]:
                inf[slot] = False
                axs[slot] = ex
                ays[slot] = ey
                continue
            ax = axs[slot]
            ay = ays[slot]
            if ax == ex:
                if (ay + ey) % p == 0:
                    inf[slot] = True       # acc = -entry
                    continue
                denom = ay + ay            # acc == entry: tangent
                num = (3 * ax * ax + 1) % p
            else:
                denom = ex - ax
                num = ey - ay
            pref(acc)
            acc = acc * denom % p
            pend((slot, ax, ay, ex, num, denom))
        if rows:
            acc_inv = invmod(acc, p)
            for (slot, ax, ay, ex, num, denom), prefix in zip(
                    reversed(rows), reversed(prefixes)):
                inv = prefix * acc_inv % p
                acc_inv = acc_inv * denom % p
                slope = num * inv % p
                nx = (slope * slope - ax - ex) % p
                axs[slot] = nx
                ays[slot] = (slope * (ax - nx) - ay) % p
        level += 1
        while n_live and lens[order[n_live - 1]] == level:
            n_live -= 1
    return [INFINITY if inf[slot] else (axs[slot], ays[slot])
            for slot in range(count)]


def table_entries(table, scalar: int) -> list:
    """The fixed-base table points whose sum is ``scalar · base``.

    The digit walk of :meth:`repro.ec.fixed_base.FixedBaseTable.
    multiply_jacobian`, reified as a point list so many walks can be
    accumulated together by :func:`batch_affine_sums`. ``scalar`` must
    be reduced below the table's range (callers reduce mod the group
    order).
    """
    entries = []
    window = table.window
    levels = table.levels
    if window == 4 and scalar > 0:
        # Nibble fast path for the default window: one ``to_bytes``
        # replaces the big-int shift per digit (each ``>>= 4`` copies
        # the whole remaining scalar), and the byte loop runs at C
        # speed. Digits beyond the scalar's top bit are zero, so the
        # guarded level indexes never run past the table.
        append = entries.append
        level = 0
        for byte in scalar.to_bytes((scalar.bit_length() + 7) // 8,
                                    "little"):
            digit = byte & 15
            if digit:
                append(levels[level][digit])
            digit = byte >> 4
            if digit:
                append(levels[level + 1][digit])
            level += 2
        return entries
    mask = (1 << window) - 1
    level = 0
    while scalar:
        digit = scalar & mask
        if digit:
            entries.append(levels[level][digit])
        scalar >>= window
        level += 1
    return entries


def batch_table_walks(curve: SupersingularCurve, walks) -> list:
    """One affine point per multi-leg fixed-base walk, all batched.

    ``walks[i]`` is a sequence of ``(table, scalar)`` legs; the result
    is the sum of every leg's digit points — i.e. the product
    ``Π base_leg^(scalar_leg)`` in additive notation. This fuses
    :func:`table_entries` generation with the level-synchronized
    accumulation of :func:`batch_affine_sums`: digit points land
    directly in per-level buckets (no per-walk entry list, no per-round
    chain indexing or live-set management), and the first digit of a
    walk initializes its accumulator in place of an explicit infinity
    flag. Scalars must be non-negative and reduced below the table
    range; table entries are affine non-infinity points by
    construction (a fixed-base table stores nonzero multiples of an
    order-``r`` base). Exact affine group arithmetic — bit-identical
    to per-walk Jacobian multiplication.
    """
    p = curve.p
    count = len(walks)
    axs = [None] * count    # None == accumulator at infinity
    ays = [0] * count
    # Each leg gets its own bucket range (a running per-walk level
    # offset), so a slot contributes at most ONE entry per bucket —
    # the invariant the snapshot-then-apply round scheme needs (two
    # same-round folds of one slot would both capture the same
    # accumulator state). This mirrors concatenating the legs' entry
    # chains end to end.
    n_buckets = 0
    for legs in walks:
        depth = sum(len(table.levels) for table, _ in legs)
        if depth > n_buckets:
            n_buckets = depth
    buckets = [[] for _ in range(n_buckets)]  # flat [slot, entry, ...]
    for slot, legs in enumerate(walks):
        started = False
        offset = 0
        for table, scalar in legs:
            levels = table.levels
            if table.window == 4 and scalar > 0:
                # Nibble fast path (see table_entries above).
                level = offset
                for byte in scalar.to_bytes(
                        (scalar.bit_length() + 7) // 8, "little"):
                    digit = byte & 15
                    if digit:
                        entry = levels[level - offset][digit]
                        if started:
                            bucket = buckets[level]
                            bucket.append(slot)
                            bucket.append(entry)
                        else:
                            axs[slot], ays[slot] = entry
                            started = True
                    digit = byte >> 4
                    if digit:
                        entry = levels[level + 1 - offset][digit]
                        if started:
                            bucket = buckets[level + 1]
                            bucket.append(slot)
                            bucket.append(entry)
                        else:
                            axs[slot], ays[slot] = entry
                            started = True
                    level += 2
                offset += len(levels)
                continue
            if table.window == 8 and scalar > 0:
                # Byte fast path: one byte IS one digit.
                level = offset
                for digit in scalar.to_bytes(
                        (scalar.bit_length() + 7) // 8, "little"):
                    if digit:
                        entry = levels[level - offset][digit]
                        if started:
                            bucket = buckets[level]
                            bucket.append(slot)
                            bucket.append(entry)
                        else:
                            axs[slot], ays[slot] = entry
                            started = True
                    level += 1
                offset += len(levels)
                continue
            mask = (1 << table.window) - 1
            level = 0
            while scalar:
                digit = scalar & mask
                if digit:
                    entry = levels[level][digit]
                    if started:
                        bucket = buckets[offset + level]
                        bucket.append(slot)
                        bucket.append(entry)
                    else:
                        axs[slot], ays[slot] = entry
                        started = True
                scalar >>= table.window
                level += 1
            offset += len(levels)
    for bucket in buckets:
        if not bucket:
            continue
        # Same fused prefix-product round as batch_affine_sums: the
        # ``ax is None`` test replaces the infinity flag (it only fires
        # after a cancellation, since generation seeded the first
        # digit), and folding order within a round is irrelevant —
        # point addition is commutative and each inverse is the exact
        # inverse of its own denominator.
        rows = []
        prefixes = []
        acc = 1
        pend = rows.append
        pref = prefixes.append
        it = iter(bucket)
        for slot, entry in zip(it, it):
            ex, ey = entry
            ax = axs[slot]
            if ax is None:
                axs[slot] = ex
                ays[slot] = ey
                continue
            ay = ays[slot]
            if ax == ex:
                if (ay + ey) % p == 0:
                    axs[slot] = None       # acc = -entry
                    continue
                denom = ay + ay            # acc == entry: tangent
                num = (3 * ax * ax + 1) % p
            else:
                denom = ex - ax
                num = ey - ay
            pref(acc)
            acc = acc * denom % p
            pend((slot, ax, ay, ex, num, denom))
        if rows:
            acc_inv = invmod(acc, p)
            for (slot, ax, ay, ex, num, denom), prefix in zip(
                    reversed(rows), reversed(prefixes)):
                inv = prefix * acc_inv % p
                acc_inv = acc_inv * denom % p
                slope = num * inv % p
                nx = (slope * slope - ax - ex) % p
                axs[slot] = nx
                ays[slot] = (slope * (ax - nx) - ay) % p
    return [INFINITY if axs[slot] is None else (axs[slot], ays[slot])
            for slot in range(count)]


def batch_same_scalar_mults(curve: SupersingularCurve, points,
                            scalar: int) -> list:
    """``[scalar·P for P in points]`` sharing inversions across points.

    LSB-first signed-digit (NAF) double-and-add where, each round, the
    additions (into the accumulators) and the doublings (of the running
    powers) contribute their denominators to ONE batch inversion.
    Scalar multiplication has a unique result whatever the addition
    chain, so the NAF recoding — which cuts the add rounds from the
    scalar's Hamming weight to ~bits/3 (negation is free on the curve)
    — returns exactly the points the binary ladder would. Intended for
    the subgroup check ``r·P = O`` over a whole decoded batch; exact
    for arbitrary curve points (2-torsion hits — possible for points
    *outside* the order-r subgroup — collapse to ``INFINITY``, exactly
    as the per-point path behaves).
    """
    points = list(points)
    if scalar < 0:
        raise ValueError("batch_same_scalar_mults needs a non-negative scalar")
    p = curve.p
    count = len(points)
    accs = [INFINITY] * count
    # The running powers live in flat coordinate arrays (canonical
    # affine coordinates, like every point this module handles);
    # ``alive`` lists the indices whose power is not yet INFINITY, so
    # the per-round loops never test or unpack per-point tuples — at
    # TOY80/SS512 operand sizes that bookkeeping, not the F_p math, is
    # the dominant cost.
    cxs = [0] * count
    cys = [0] * count
    alive = []
    for index, point in enumerate(points):
        if point is not INFINITY:
            cxs[index], cys[index] = point
            alive.append(index)
    # Non-adjacent form, least-significant digit first: digits in
    # {-1, 0, 1}, no two adjacent digits non-zero.
    naf = []
    remaining = scalar
    while remaining:
        if remaining & 1:
            digit = 2 - (remaining & 3)
            naf.append(digit)
            remaining -= digit
        else:
            naf.append(0)
        remaining >>= 1
    n_rounds = len(naf)
    for round_index in range(n_rounds):
        last = round_index + 1 == n_rounds
        digit = naf[round_index]
        # One fused prefix-product chain covers the round's adds AND
        # doubles (same scheme as batch_affine_sums above: prefixes[j]
        # is the denominator product before row j, the apply pass
        # unwinds one shared inverse right-to-left). Apply order is
        # irrelevant: add rows capture every operand they need, and
        # each power doubles at most once per round.
        rows = []   # (kind, index, ax, ay, cx, num, denom);
        #             kind 0 chord add / 1 tangent add / 2 double
        prefixes = [1]
        acc = 1
        survivors = []
        pend = rows.append
        pref = prefixes.append
        if digit:
            negate = digit < 0
            for index in alive:
                cx = cxs[index]
                cy = cys[index]
                ey = (p - cy) % p if negate else cy
                point = accs[index]
                if point is INFINITY:
                    accs[index] = (cx, ey)
                    continue
                ax, ay = point
                if ax == cx:
                    if (ay + ey) % p == 0:
                        accs[index] = INFINITY
                        continue
                    denom = ay + ay
                    num = 0
                    kind = 1
                else:
                    denom = cx - ax
                    num = ey - ay
                    kind = 0
                acc = acc * denom % p
                pref(acc)
                pend((kind, index, ax, ay, cx, num, denom))
        if not last:
            keep = survivors.append
            for index in alive:
                cy = cys[index]
                if cy == 0:
                    continue  # 2-torsion: the power collapses to O
                keep(index)
                cx = cxs[index]
                denom = cy + cy
                acc = acc * denom % p
                pref(acc)
                pend((2, index, cx, cy, 0, 0, denom))
        if rows:
            acc_inv = invmod(acc, p)
            for j in range(len(rows) - 1, -1, -1):
                kind, index, ax, ay, cx, num, denom = rows[j]
                inv = prefixes[j] * acc_inv % p
                acc_inv = acc_inv * denom % p
                if kind == 2:
                    # ax, ay hold the running power's coordinates.
                    slope = (3 * ax * ax + 1) * inv % p
                    nx = (slope * slope - ax - ax) % p
                    cys[index] = (slope * (ax - nx) - ay) % p
                    cxs[index] = nx
                    continue
                if kind:
                    slope = (3 * ax * ax + 1) * inv % p
                else:
                    slope = num * inv % p
                nx = (slope * slope - ax - cx) % p
                accs[index] = (nx, (slope * (ax - nx) - ay) % p)
        if not last:
            alive = survivors
    return accs

"""A process pool for crypto jobs, with an inline size-0 mode.

:class:`CryptoPool` wraps :class:`concurrent.futures.ProcessPoolExecutor`
with the three properties the batch engine needs:

* **pool size 0 is a first-class mode** — jobs run inline in the calling
  process through the *same* job functions the workers run, so results
  are bit-identical across pool sizes by construction and single-core
  deployments skip process overhead entirely;
* **lazy start** — no worker process exists until the first pooled job,
  so constructing a server with ``--workers N`` costs nothing if no
  sweep ever arrives;
* **fork start method when available** — workers inherit the parent's
  imported modules copy-on-write instead of re-importing the library
  per process (on platforms without ``fork`` the default start method
  is used; job functions only ever receive picklable arguments, so both
  work).

Job functions must be module-level (picklable by reference) and
pure-ish: everything they need arrives in their arguments. The
:class:`repro.pairing.group.PairingGroup` argument pickles as parameter
integers and rebuilds per process (see ``PairingGroup.__reduce__``).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def chunked(items, size: int) -> list:
    """Split a sequence into order-preserving chunks of at most ``size``."""
    items = list(items)
    if size <= 0:
        raise ValueError("chunk size must be positive")
    return [items[start:start + size] for start in range(0, len(items), size)]


class CryptoPool:
    """A lazily-started process pool; ``workers=0`` runs jobs inline."""

    def __init__(self, workers: int = 0):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self._executor = None

    @property
    def inline(self) -> bool:
        return self.workers == 0

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor (started on first use; inline pools have none)."""
        if self.inline:
            raise ValueError("an inline pool has no executor")
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = None
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._executor

    def map_jobs(self, fn, jobs) -> list:
        """Run ``fn(*args)`` for every argument tuple; results in order.

        Inline pools call ``fn`` directly; pooled runs submit every job
        up front and collect results in submission order, so the output
        is independent of worker scheduling.
        """
        jobs = list(jobs)
        if self.inline:
            return [fn(*args) for args in jobs]
        futures = [self.executor.submit(fn, *args) for args in jobs]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "inline" if self.inline else (
            "idle" if self._executor is None else "running"
        )
        return f"CryptoPool(workers={self.workers}, {state})"

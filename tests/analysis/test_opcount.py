"""The operation-count models must match what the implementation does.

These tests are the bridge between the Figure 3/4 claims and the code:
``repro.analysis.costmodel`` predicts pairing/exponentiation counts per
algorithm; the :class:`OperationCounter` on the pairing group records
the real ones. If an implementation change silently alters the cost
profile, these tests fail before the benchmarks drift.
"""

import pytest

from repro.analysis.costmodel import (
    SystemShape,
    decrypt_ops_lewko,
    decrypt_ops_ours,
    encrypt_ops_lewko,
    encrypt_ops_ours,
)
from repro.analysis.timing import build_lewko, build_ours
from repro.ec.params import TOY80

SHAPES = [
    (1, 2),
    (2, 2),
    (3, 4),
]


def _shape(n_authorities, attrs):
    return SystemShape(
        n_authorities=n_authorities,
        attrs_per_authority=attrs,
        user_attrs_per_authority=attrs,
        policy_rows=n_authorities * attrs,
    )


class TestOursCounts:
    @pytest.mark.parametrize("n_authorities,attrs", SHAPES)
    def test_encrypt(self, n_authorities, attrs):
        workload = build_ours(TOY80, n_authorities, attrs, seed=3)
        counter = workload.group.counter
        counter.reset()
        workload.encrypt()
        model = encrypt_ops_ours(_shape(n_authorities, attrs))
        assert counter.pairings == model.pairings
        assert counter.g1_exponentiations == model.g1_exponentiations
        assert counter.gt_exponentiations == model.gt_exponentiations

    @pytest.mark.parametrize("n_authorities,attrs", SHAPES)
    def test_decrypt(self, n_authorities, attrs):
        workload = build_ours(TOY80, n_authorities, attrs, seed=3)
        ciphertext = workload.encrypt()
        counter = workload.group.counter
        counter.reset()
        workload.decrypt(ciphertext)
        model = decrypt_ops_ours(_shape(n_authorities, attrs))
        assert counter.pairings == model.pairings
        assert counter.gt_exponentiations == model.gt_exponentiations
        assert counter.g1_exponentiations == model.g1_exponentiations


class TestLewkoCounts:
    @pytest.mark.parametrize("n_authorities,attrs", SHAPES)
    def test_encrypt(self, n_authorities, attrs):
        workload = build_lewko(TOY80, n_authorities, attrs, seed=3)
        counter = workload.group.counter
        counter.reset()
        workload.encrypt()
        model = encrypt_ops_lewko(_shape(n_authorities, attrs))
        assert counter.pairings == model.pairings
        assert counter.g1_exponentiations == model.g1_exponentiations
        assert counter.gt_exponentiations == model.gt_exponentiations

    @pytest.mark.parametrize("n_authorities,attrs", SHAPES)
    def test_decrypt(self, n_authorities, attrs):
        workload = build_lewko(TOY80, n_authorities, attrs, seed=3)
        ciphertext = workload.encrypt()
        counter = workload.group.counter
        counter.reset()
        workload.decrypt(ciphertext)
        model = decrypt_ops_lewko(_shape(n_authorities, attrs))
        assert counter.pairings == model.pairings
        assert counter.gt_exponentiations == model.gt_exponentiations


class TestFastDecryptAblation:
    def test_three_pairings_regardless_of_size(self):
        from repro.core.decrypt import decrypt_fast

        for n_authorities, attrs in SHAPES:
            workload = build_ours(TOY80, n_authorities, attrs, seed=4)
            ciphertext = workload.encrypt()
            counter = workload.group.counter
            counter.reset()
            decrypt_fast(
                workload.group, ciphertext, workload.user_public_key,
                workload.secret_keys,
            )
            assert counter.pairings == 3
            # Pays per-row G exponentiations instead.
            rows = n_authorities * attrs
            assert counter.g1_exponentiations == 2 * rows


class TestCounterApi:
    def test_snapshot_and_repr(self, group):
        group.counter.reset()
        group.pair(group.g, group.g)
        _ = group.g ** 5
        snap = group.counter.snapshot()
        assert snap["pairings"] == 1
        assert snap["g1_exponentiations"] == 1
        assert "pair=1" in repr(group.counter)
        group.counter.reset()
        assert group.counter.pairings == 0

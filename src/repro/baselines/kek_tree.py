"""Binary KEK (key-encryption-key) trees for stateless group revocation.

Substrate of the Hur-Noh baseline: users sit at the leaves of a complete
binary tree whose every node carries a random KEK. A user knows exactly
the KEKs on its root path (log n + 1 of them). To address an arbitrary
subset S of users, the *complete subtree* method picks the minimal set
of nodes whose subtrees partition S; wrapping a payload under those
nodes' KEKs reaches exactly S, with cover size O(|S̄|·log(n/|S̄|)) in the
worst case.

Node numbering is heap-style: root is 1, children of ``k`` are ``2k``
and ``2k+1``, leaves are ``capacity .. 2·capacity-1``.
"""

from __future__ import annotations

import random

from repro.errors import SchemeError

KEK_LEN = 32


class KekTree:
    """A complete binary tree of KEKs over ``capacity`` user slots."""

    def __init__(self, capacity: int, rng: random.Random = None):
        if capacity < 1 or capacity & (capacity - 1):
            raise SchemeError("KEK tree capacity must be a power of two")
        self.capacity = capacity
        rng = rng or random.Random()
        self._keks = {
            node: bytes(rng.getrandbits(8) for _ in range(KEK_LEN))
            for node in range(1, 2 * capacity)
        }
        self._slots = {}      # uid -> slot index in [0, capacity)
        self._free = list(range(capacity))

    # -- slot management -------------------------------------------------------

    def assign_slot(self, uid: str) -> int:
        if uid in self._slots:
            raise SchemeError(f"user {uid!r} already has a tree slot")
        if not self._free:
            raise SchemeError("KEK tree is full")
        slot = self._free.pop(0)
        self._slots[uid] = slot
        return slot

    def slot_of(self, uid: str) -> int:
        try:
            return self._slots[uid]
        except KeyError:
            raise SchemeError(f"user {uid!r} has no tree slot") from None

    def leaf_of(self, uid: str) -> int:
        return self.capacity + self.slot_of(uid)

    @property
    def users(self) -> frozenset:
        return frozenset(self._slots)

    # -- KEK access ----------------------------------------------------------------

    def path_nodes(self, uid: str) -> list:
        """Node ids from the user's leaf up to the root (inclusive)."""
        node = self.leaf_of(uid)
        path = []
        while node >= 1:
            path.append(node)
            node //= 2
        return path

    def path_keks(self, uid: str) -> dict:
        """The KEKs a user is given at join time: {node id: kek}."""
        return {node: self._keks[node] for node in self.path_nodes(uid)}

    def kek(self, node: int) -> bytes:
        """Server-side access to any node KEK (the server manages the tree)."""
        try:
            return self._keks[node]
        except KeyError:
            raise SchemeError(f"no node {node} in a tree of capacity "
                              f"{self.capacity}") from None

    # -- complete-subtree covers -------------------------------------------------------

    def min_cover(self, member_uids) -> list:
        """Minimal node set whose subtrees' leaves are exactly the members.

        Returns a sorted list of node ids; empty for an empty member set.
        """
        member_leaves = {self.leaf_of(uid) for uid in member_uids}

        def leaves_under(node: int):
            low, high = node, node
            while low < self.capacity:
                low, high = 2 * low, 2 * high + 1
            return range(low, high + 1)

        def cover(node: int) -> list:
            under = leaves_under(node)
            inside = sum(1 for leaf in under if leaf in member_leaves)
            if inside == 0:
                return []
            if inside == len(under):
                return [node]
            return cover(2 * node) + cover(2 * node + 1)

        return sorted(cover(1))

    def cover_size(self, member_uids) -> int:
        """|min_cover|: the header length the Hur scheme pays per attribute."""
        return len(self.min_cover(member_uids))

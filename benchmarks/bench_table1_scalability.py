"""Table I: scalability comparison (feature matrix).

A static table; the "benchmark" times its rendering so the harness
prints it alongside the other tables under ``--benchmark-only``.
"""

from repro.analysis.scalability import TABLE1, render_table1


def test_table1(benchmark):
    text = benchmark(render_table1)
    print("\n=== Table I — Scalability comparison ===")
    print(text)
    assert len(TABLE1) == 6
    ours = TABLE1[0]
    assert not ours.requires_global_authority
    assert ours.policy_type == "any LSSS"
    assert ours.collusion_bound == "any"

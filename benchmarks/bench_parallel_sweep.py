"""Benchmark: the parallel batch engine vs the sequential ReEncrypt path.

Two phases, both gated on bit-identical outputs:

* **Phase A — amortized pairing, no pool.** The same batch of
  ciphertexts re-encrypted (a) the paper's way, one cold
  ``e(UK1, C')`` Tate pairing per ciphertext, and (b) through
  :func:`repro.parallel.batch.batch_outcomes`, which prepares the
  Miller lines of the fixed ``UK1`` argument once, replays them per
  ciphertext and batches the final exponentiations behind one modular
  inversion. Every output byte must match; the speedup is pure
  amortization (pool size 0).

* **Phase B — bulk sweep over a live service.** A ≥200-record TOY80
  store revoked twice from identical starting states: once with the
  sequential per-ciphertext ``REENCRYPT`` loop
  (:meth:`OwnerClient.push_revocation_updates`, one fully-validated
  round trip per ciphertext) and once with a single
  ``REENCRYPT_SWEEP`` request against a 4-worker service. The stores
  are file-copies of each other and the owner ledger is restored
  between runs, so the resulting record files must be byte-identical;
  the sweep must be ≥3x faster (gate skipped with ``--smoke``).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --smoke \
        --out /tmp/smoke.json

Writes ``BENCH_parallel_sweep.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.core.reencrypt import reencrypt
from repro.core.revocation import rekey_standard
from repro.core.scheme import MultiAuthorityABE
from repro.ec.params import TOY80
from repro.parallel.batch import UPDATED, batch_outcomes

SPEEDUP_GATE = 3.0


# -- phase A: amortized pairing at pool size 0 --------------------------------

def phase_a(n_ciphertexts: int) -> dict:
    scheme = MultiAuthorityABE(TOY80, seed=0xA3A)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    owner = scheme.setup_owner("alice", [hospital])
    victim = scheme.register_user("victim")
    hospital.keygen(victim, ["doctor"], "alice")

    ciphertexts = [
        owner.encrypt(scheme.random_message(), "hospital:doctor",
                      ciphertext_id=f"ct-{index:04d}")
        for index in range(n_ciphertexts)
    ]
    update_key = rekey_standard(hospital, "victim", ["doctor"]).update_key
    update_infos = [owner.update_info(ct, update_key) for ct in ciphertexts]
    group = scheme.group

    start = time.perf_counter()
    naive = [
        reencrypt(group, ct, update_key, ui).to_bytes()
        for ct, ui in zip(ciphertexts, update_infos)
    ]
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    outcomes = batch_outcomes(group, ciphertexts, update_key, update_infos)
    amortized_seconds = time.perf_counter() - start

    assert all(o.status == UPDATED for o in outcomes)
    identical = [o.ciphertext.to_bytes() for o in outcomes] == naive
    return {
        "ciphertexts": n_ciphertexts,
        "naive_seconds": round(naive_seconds, 6),
        "amortized_pool0_seconds": round(amortized_seconds, 6),
        "amortized_speedup_pool0": round(naive_seconds / amortized_seconds, 3),
        "outputs_bit_identical": identical,
    }


# -- phase B: sequential REENCRYPT loop vs one pooled sweep -------------------

def _snapshot_owner(owner):
    return (dict(owner._records), dict(owner._authority_keys),
            dict(owner._attribute_keys))


def _restore_owner(owner, snapshot):
    owner._records, owner._authority_keys, owner._attribute_keys = (
        dict(snapshot[0]), dict(snapshot[1]), dict(snapshot[2])
    )


async def _populate(group, scenario, root, n_records: int) -> list:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0)
    await service.start()
    owner = await _owner_client(scenario, service)
    record_ids = []
    try:
        for index in range(n_records):
            record_id = f"rec-{index:04d}"
            await owner.upload(record_id, {
                "note": (f"payload {index}".encode("utf-8"),
                         "hospital:doctor"),
            })
            record_ids.append(record_id)
    finally:
        await owner.close()
        await service.stop()
    return record_ids


async def _owner_client(scenario, service):
    from repro.service.client import OwnerClient, ServiceConnection

    conn = ServiceConnection(scenario["group"], service.host, service.port,
                             role="owner", name="owner:alice", timeout=60.0)
    return OwnerClient(await conn.connect(), scenario["owner"])


def _build_scenario():
    from repro.core.authority import AttributeAuthority
    from repro.core.ca import CertificateAuthority
    from repro.core.owner import DataOwner
    from repro.pairing.group import PairingGroup

    group = PairingGroup(TOY80, seed=0xB5B)
    ca = CertificateAuthority(group)
    aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
    ca.register_authority("hospital")
    owner = DataOwner(group, "alice")
    ca.register_owner("alice")
    aa.register_owner(owner.secret_key)
    owner.learn_authority(aa.authority_public_key(),
                          aa.public_attribute_keys())
    victim = ca.register_user("victim")
    aa.keygen(victim, ["doctor"], "alice")
    return {"group": group, "ca": ca, "aa": aa, "owner": owner}


async def _run_sequential(scenario, root) -> float:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    group = scenario["group"]
    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0)
    await service.start()
    owner = await _owner_client(scenario, service)
    try:
        start = time.perf_counter()
        updated = await owner.push_revocation_updates(
            scenario["update_key"]
        )
        elapsed = time.perf_counter() - start
    finally:
        await owner.close()
        await service.stop()
    assert len(updated) == scenario["n_records"]
    return elapsed


async def _run_sweep(scenario, root, workers: int) -> float:
    from repro.service.server import StorageService
    from repro.service.store import RecordStore

    group = scenario["group"]
    service = StorageService(group, RecordStore(root, group),
                             host="127.0.0.1", port=0, workers=workers,
                             sweep_chunk=64)
    await service.start()
    owner = await _owner_client(scenario, service)
    try:
        start = time.perf_counter()
        summary = await owner.sweep_revocation(scenario["update_key"])
        elapsed = time.perf_counter() - start
    finally:
        await owner.close()
        await service.stop()
    assert len(summary["updated"]) == scenario["n_records"]
    assert not summary["errors"] and not summary["missing"]
    return elapsed


def _record_blobs(group, root, record_ids) -> list:
    from repro.service.store import RecordStore

    store = RecordStore(root, group)
    return [store.get_record_bytes(record_id) for record_id in record_ids]


def phase_b(n_records: int, workers: int) -> dict:
    scenario = _build_scenario()
    group = scenario["group"]
    with tempfile.TemporaryDirectory() as base:
        root_seq = os.path.join(base, "store-seq")
        root_sweep = os.path.join(base, "store-sweep")
        record_ids = asyncio.run(
            _populate(group, scenario, root_seq, n_records)
        )
        shutil.copytree(root_seq, root_sweep)

        update_key = rekey_standard(
            scenario["aa"], "victim", ["doctor"]
        ).update_key
        scenario["update_key"] = update_key
        scenario["n_records"] = n_records

        snapshot = _snapshot_owner(scenario["owner"])
        sequential_seconds = asyncio.run(_run_sequential(scenario, root_seq))
        _restore_owner(scenario["owner"], snapshot)
        sweep_seconds = asyncio.run(_run_sweep(scenario, root_sweep, workers))

        identical = (
            _record_blobs(group, root_seq, record_ids)
            == _record_blobs(group, root_sweep, record_ids)
        )
    return {
        "records": n_records,
        "workers": workers,
        "sweep_chunk": 64,
        "sequential_seconds": round(sequential_seconds, 6),
        "sweep_seconds": round(sweep_seconds, 6),
        "speedup": round(sequential_seconds / sweep_seconds, 3),
        "outputs_bit_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, no speedup gate (CI)")
    parser.add_argument("--records", type=int, default=None,
                        help="phase-B store size (default 200, smoke 24)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_parallel_sweep.json"))
    args = parser.parse_args(argv)

    n_phase_a = 16 if args.smoke else 64
    n_records = args.records or (24 if args.smoke else 200)

    print(f"phase A: {n_phase_a} ciphertexts, naive vs amortized (pool 0)",
          flush=True)
    result_a = phase_a(n_phase_a)
    print(f"  naive {result_a['naive_seconds']:.3f}s, amortized "
          f"{result_a['amortized_pool0_seconds']:.3f}s -> "
          f"{result_a['amortized_speedup_pool0']}x, bit-identical: "
          f"{result_a['outputs_bit_identical']}", flush=True)

    print(f"phase B: {n_records} records, sequential loop vs "
          f"{args.workers}-worker sweep", flush=True)
    result_b = phase_b(n_records, args.workers)
    print(f"  sequential {result_b['sequential_seconds']:.3f}s, sweep "
          f"{result_b['sweep_seconds']:.3f}s -> {result_b['speedup']}x, "
          f"bit-identical: {result_b['outputs_bit_identical']}", flush=True)

    report = {
        "preset": "TOY80",
        "smoke": args.smoke,
        "phase_a": result_a,
        "phase_b": result_b,
        "outputs_bit_identical": (
            result_a["outputs_bit_identical"]
            and result_b["outputs_bit_identical"]
        ),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.out)}", flush=True)

    if not report["outputs_bit_identical"]:
        print("FAIL: parallel outputs diverge from the sequential path",
              flush=True)
        return 1
    if result_a["amortized_speedup_pool0"] <= 1.0:
        print("FAIL: amortized path is not beating the naive pairing loop",
              flush=True)
        return 1
    if not args.smoke and result_b["speedup"] < SPEEDUP_GATE:
        print(f"FAIL: sweep speedup {result_b['speedup']}x is below the "
              f"{SPEEDUP_GATE}x gate", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Named event counters on the Meter (cache hits, pool stats, …)."""

import threading

from repro.system.meter import Meter


def test_bump_and_read(group):
    meter = Meter(group)
    meter.bump("lsss-cache-hit")
    meter.bump("lsss-cache-hit", 4)
    meter.bump("lsss-cache-miss")
    assert meter.counter("lsss-cache-hit") == 5
    assert meter.counter("lsss-cache-miss") == 1
    assert meter.counter("never-bumped") == 0


def test_summary_is_a_snapshot(group):
    meter = Meter(group)
    meter.bump("x", 2)
    summary = meter.counter_summary()
    assert summary == {"x": 2}
    summary["x"] = 99
    assert meter.counter("x") == 2


def test_reset_clears_counters(group):
    meter = Meter(group)
    meter.bump("x")
    meter.reset()
    assert meter.counter("x") == 0
    assert meter.counter_summary() == {}


def test_concurrent_bumps_stay_exact(group):
    meter = Meter(group)
    threads = 6
    per_thread = 500
    barrier = threading.Barrier(threads)

    def hammer():
        barrier.wait()
        for _ in range(per_thread):
            meter.bump("contended")

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert meter.counter("contended") == threads * per_thread

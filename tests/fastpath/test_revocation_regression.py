"""Regression: sessions must go stale the moment a key version rolls.

The dangerous failure mode of per-policy precomputation is a cached
session silently emitting ciphertexts (or keys) under a revoked α
epoch. These tests pin the contract: once the owner applies an
authority's update key (UKeyGen / ReKey), the old
:class:`EncryptionSession` refuses to encrypt OR refill, and
``session_for`` transparently rebuilds against the rolled-forward
version; a :class:`KeyGenSession` refuses the instant the authority
itself bumps its version.
"""

import pytest

from repro.core.authority import apply_update_key
from repro.core.revocation import rekey_standard
from repro.errors import RevocationError
from repro.fastpath import issue_joint

POLICY = "hospital:doctor AND trial:researcher"


def _revoke_doctor(fabric):
    """Revoke a third party's hospital:doctor, rolling hospital to v1."""
    eve = fabric.scheme.register_user("eve")
    fabric.hospital.keygen(eve, ["doctor"], "alice")
    return rekey_standard(fabric.hospital, "eve", ["doctor"])


class TestEncryptionSessionStaleness:
    def test_stale_session_refuses_encrypt_and_refill(self, fabric):
        session = fabric.owner.session_for(POLICY)
        session.refill(2)
        session.encrypt(fabric.scheme.random_message())
        result = _revoke_doctor(fabric)
        fabric.owner.apply_update_key(result.update_key)
        assert not session.is_current()
        with pytest.raises(RevocationError):
            session.encrypt(fabric.scheme.random_message())
        with pytest.raises(RevocationError):
            session.refill(1)

    def test_session_for_rebuilds_with_rolled_version(self, fabric):
        stale = fabric.owner.session_for(POLICY)
        result = _revoke_doctor(fabric)
        fabric.owner.apply_update_key(result.update_key)
        fresh = fabric.owner.session_for(POLICY)
        assert fresh is not stale
        ciphertext = fresh.encrypt(fabric.scheme.random_message())
        assert ciphertext.versions["hospital"] == 1
        assert ciphertext.versions["trial"] == 0

    def test_fresh_ciphertext_decrypts_with_updated_key(self, fabric):
        result = _revoke_doctor(fabric)
        fabric.owner.apply_update_key(result.update_key)
        fabric.bob_keys["hospital"] = apply_update_key(
            fabric.bob_keys["hospital"], result.update_key
        )
        session = fabric.owner.session_for(POLICY)
        message = fabric.scheme.random_message()
        assert fabric.decrypt(session.encrypt(message)) == message

    def test_pre_apply_window_matches_cold_semantics(self, fabric):
        # Until the owner itself applies the update key, its cached
        # public keys are still the old epoch: both paths keep emitting
        # version-0 ciphertexts (which the revocation sweep re-encrypts),
        # and neither may raise.
        session = fabric.owner.session_for(POLICY)
        _revoke_doctor(fabric)
        from_session = session.encrypt(fabric.scheme.random_message())
        from_cold = fabric.owner.encrypt(
            fabric.scheme.random_message(), POLICY
        )
        assert from_session.versions == from_cold.versions
        assert from_session.versions["hospital"] == 0


class TestKeyGenSessionStaleness:
    def test_stale_keygen_session_refuses(self, fabric):
        session = fabric.hospital.keygen_session("alice", ["doctor"])
        _revoke_doctor(fabric)
        carol = fabric.scheme.register_user("carol")
        with pytest.raises(RevocationError):
            session.issue(carol)
        with pytest.raises(RevocationError):
            issue_joint([session], [carol])

    def test_keygen_session_rebuilds_at_new_version(self, fabric):
        stale = fabric.hospital.keygen_session("alice", ["doctor"])
        _revoke_doctor(fabric)
        fresh = fabric.hospital.keygen_session("alice", ["doctor"])
        assert fresh is not stale
        carol = fabric.scheme.register_user("carol")
        issued = fresh.issue(carol)
        assert issued.version == 1
        cold = fabric.hospital.keygen(carol, ["doctor"], "alice")
        assert issued.k == cold.k
        assert issued.attribute_keys == cold.attribute_keys

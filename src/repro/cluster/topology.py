"""The cluster's shape: named nodes, replication factor, write quorum.

A :class:`ClusterMap` is everything a client needs to speak to the
fleet: the node roster (stable *names* mapped to current addresses),
the replication factor R, the write quorum W, and the ring parameters.
Placement keys off node *names*, never addresses — a node that restarts
on a new port (or moves behind a chaos proxy) keeps every key it owned,
because :meth:`with_address` rebinds the address without touching the
ring.

Maps serialize to/from JSON so ``repro cluster`` commands, CI jobs and
tests can share one topology file, and node specs parse from the CLI
shorthand ``name=host:port`` (or bare ``host:port``, which names the
node after its address).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.ring import HashRing
from repro.errors import ProtocolError


@dataclass(frozen=True)
class ClusterNode:
    """One storage node: a ring-stable name and its current address."""

    name: str
    host: str
    port: int


def parse_node_spec(spec: str) -> ClusterNode:
    """``name=host:port`` or ``host:port`` → :class:`ClusterNode`."""
    name, _, address = spec.rpartition("=")
    host, _, port_raw = address.rpartition(":")
    if not host or not port_raw:
        raise ValueError(
            f"node spec {spec!r} is not 'name=host:port' or 'host:port'"
        )
    try:
        port = int(port_raw)
    except ValueError:
        raise ValueError(f"node spec {spec!r} has a non-numeric port") \
            from None
    return ClusterNode(name=name or address, host=host, port=port)


class ClusterMap:
    """Node roster + replication/quorum parameters + the placement ring."""

    def __init__(self, nodes, *, replication: int = 2, write_quorum=None,
                 ring_seed=0, vnodes: int = 64):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("cluster node names must be unique")
        if not 1 <= replication <= len(nodes):
            raise ValueError(
                f"replication factor {replication} does not fit "
                f"{len(nodes)} nodes"
            )
        if write_quorum is None:
            write_quorum = replication // 2 + 1  # majority of replicas
        if not 1 <= write_quorum <= replication:
            raise ValueError(
                f"write quorum {write_quorum} does not fit replication "
                f"factor {replication}"
            )
        self._nodes = {node.name: node for node in nodes}
        self.replication = replication
        self.write_quorum = write_quorum
        self.ring = HashRing(sorted(self._nodes), vnodes=vnodes,
                             seed=ring_seed)

    # -- roster ------------------------------------------------------------

    @property
    def nodes(self) -> list:
        """Every node, in name order."""
        return [self._nodes[name] for name in sorted(self._nodes)]

    @property
    def node_names(self) -> list:
        return sorted(self._nodes)

    def node(self, name: str) -> ClusterNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ValueError(f"no node {name!r} in the cluster map") \
                from None

    def with_address(self, name: str, host: str, port: int) -> None:
        """Rebind a node's address (restart, proxy) — placement keeps
        keying off the name, so no keys move."""
        self._nodes[name] = ClusterNode(name=name, host=host, port=port)

    # -- placement ---------------------------------------------------------

    def replicas_for(self, record_id: str) -> list:
        """The record's replica set, primary first."""
        return [self._nodes[name]
                for name in self.ring.preference(record_id,
                                                 self.replication)]

    def placement_summary(self, record_ids) -> dict:
        """``node name -> records held`` for a record-id batch."""
        return {
            name: sorted(keys)
            for name, keys in self.ring.load_map(
                record_ids, self.replication
            ).items()
        }

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "nodes": [
                {"name": node.name, "host": node.host, "port": node.port}
                for node in self.nodes
            ],
            "replication": self.replication,
            "write_quorum": self.write_quorum,
            "ring_seed": self.ring.seed,
            "vnodes": self.ring.vnodes,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterMap":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"cluster map is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict) \
                or not isinstance(payload.get("nodes"), list):
            raise ProtocolError("cluster map must be an object with nodes")
        try:
            nodes = [
                ClusterNode(name=str(entry["name"]), host=str(entry["host"]),
                            port=int(entry["port"]))
                for entry in payload["nodes"]
            ]
            return cls(
                nodes,
                replication=int(payload.get("replication", 2)),
                write_quorum=payload.get("write_quorum"),
                ring_seed=payload.get("ring_seed", 0),
                vnodes=int(payload.get("vnodes", 64)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed cluster map: {exc}") from exc

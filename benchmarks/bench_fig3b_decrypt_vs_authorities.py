"""Figure 3(b): decryption time vs number of authorities.

Paper setup: the user holds 5 attributes from each authority; the
x-axis sweeps the number of authorities. Expected shape: both schemes
linear in the number of used rows; ours *slightly above* Lewko's (we
pay the same 2 pairings per row plus one numerator pairing per
authority and the w_i·n_A exponent per row) — "the time for decryption
in our scheme is a little more than the one in Lewko's scheme".
"""

import pytest

from repro.fastpath import DecryptionSession

from benchmarks.conftest import (
    AUTHORITY_SWEEP,
    FIXED_ATTRS,
    lewko_ciphertext,
    lewko_workload,
    ours_ciphertext,
    ours_workload,
    run_once,
)


@pytest.mark.parametrize("n_authorities", AUTHORITY_SWEEP)
def test_ours_decrypt(benchmark, n_authorities):
    workload = ours_workload(n_authorities, FIXED_ATTRS)
    ciphertext = ours_ciphertext(n_authorities, FIXED_ATTRS)
    benchmark.group = f"fig3b decrypt nA={n_authorities}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message


@pytest.mark.parametrize("n_authorities", AUTHORITY_SWEEP)
def test_lewko_decrypt(benchmark, n_authorities):
    workload = lewko_workload(n_authorities, FIXED_ATTRS)
    ciphertext = lewko_ciphertext(n_authorities, FIXED_ATTRS)
    benchmark.group = f"fig3b decrypt nA={n_authorities}"
    message = run_once(benchmark, workload.decrypt, ciphertext)
    assert message == workload.message


# Runs LAST in this file so its prepared-pairing chains never leak into
# the cold series above (pytest preserves definition order).
@pytest.mark.parametrize("n_authorities", AUTHORITY_SWEEP)
def test_ours_session_decrypt(benchmark, n_authorities):
    """The amortized read path: per-ciphertext cost once a
    :class:`DecryptionSession` is warm (setup excluded — it is paid
    once per (user, policy) and amortizes across the record class)."""
    workload = ours_workload(n_authorities, FIXED_ATTRS)
    ciphertext = ours_ciphertext(n_authorities, FIXED_ATTRS)
    session = DecryptionSession(
        workload.group, ciphertext, workload.user_public_key,
        workload.secret_keys,
    )
    benchmark.group = f"fig3b decrypt nA={n_authorities}"
    message = run_once(benchmark, session.decrypt, ciphertext)
    assert message == workload.message

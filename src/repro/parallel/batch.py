"""Batch ReEncrypt with amortized pairing, inline or across a pool.

One attribute revocation makes the server re-encrypt every ciphertext of
every involved owner. The sequential path pays, per ciphertext, one full
pairing ``e(UK1_owner, C')`` plus per-element decode validation. This
module amortizes all of it:

* ``UK1_owner`` is *fixed per owner* across the whole batch, so its
  Miller line coefficients are prepared once
  (:meth:`repro.pairing.group.PairingGroup.prepare_pairing`) and
  replayed against every ciphertext's ``C'`` — ~2/3 of each pairing
  gone;
* the final exponentiations of a whole owner-batch share one modular
  inversion (:meth:`repro.pairing.prepared.PreparedPairing.pair_many`);
* wire-sourced update information is subgroup-validated **per element**
  (:func:`repro.core.serialize.decode_update_infos`) — the cofactor has
  small even factors, so no combined random-linear-combination check is
  sound against small-order residuals — but that validation runs inside
  the workers, off the service's event loop.

Failures stay **per-item**: a version-mismatched or malformed entry
becomes an ``error`` outcome with the library's typed exception; the
rest of the batch is unaffected. A ciphertext already at the update
key's target version reports ``already-current`` — that is what makes a
retried sweep chunk idempotent.

Every path — inline, pooled, and the service sweep — funnels through
the same :func:`repro.core.reencrypt.check_reencrypt_inputs` /
:func:`repro.core.reencrypt.apply_update` pair, so outputs are
bit-identical regardless of pool size.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.core.ciphertext import Ciphertext
from repro.core.keys import CiphertextUpdateInfo, UpdateKey
from repro.core.reencrypt import apply_update, check_reencrypt_inputs
from repro.core.serialize import (
    decode_update_info,
    decode_update_infos,
    decode_update_key,
    encode_update_info,
    encode_update_key,
)
from repro.errors import ReproError, SchemeError, StorageError
from repro.pairing.group import GTElement, PairingGroup
from repro.parallel.pool import CryptoPool, chunked
from repro.system.records import StoredRecord

#: Outcome statuses.
UPDATED = "updated"
ALREADY_CURRENT = "already-current"
ERROR = "error"

# Typed error codes for raw (cross-process) outcomes — the same strings
# the service's ERROR frames use, minted locally so this layer stays
# below repro.service.
_RAW_ERROR_CODES = (
    ("RevocationError", "revocation"),
    ("PolicyNotSatisfiedError", "policy-not-satisfied"),
    ("UnavailableError", "unavailable"),
    ("StorageError", "storage"),
    ("SchemeError", "scheme"),
    ("AuthorizationError", "authorization"),
    ("PolicyError", "policy"),
    ("IntegrityError", "integrity"),
    ("MathError", "math"),
)


def error_code(exc: ReproError) -> str:
    for name, code in _RAW_ERROR_CODES:
        if any(cls.__name__ == name for cls in type(exc).__mro__):
            return code
    return "protocol"


@dataclass(frozen=True)
class ReencryptOutcome:
    """Per-item result of a batch re-encryption."""

    ciphertext_id: str
    status: str                       # updated | already-current | error
    ciphertext: Ciphertext = None     # the updated ciphertext (if updated)
    error: ReproError = None          # the typed failure (if error)

    @property
    def error_codename(self) -> str:
        return None if self.error is None else error_code(self.error)


def _outcome_error(ciphertext_id: str, exc: ReproError) -> ReencryptOutcome:
    return ReencryptOutcome(ciphertext_id=ciphertext_id, status=ERROR,
                            error=exc)


def _is_already_current(ciphertext: Ciphertext, update_key: UpdateKey,
                        update_info: CiphertextUpdateInfo) -> bool:
    """True when the ciphertext already sits at the key's target version.

    Only an exact match of ciphertext id and version window counts — a
    UI addressed at the wrong ciphertext must surface as an error, not a
    silent skip.
    """
    aid = update_key.aid
    return (
        update_info.aid == aid
        and update_info.ciphertext_id == ciphertext.ciphertext_id
        and ciphertext.versions.get(aid) == update_key.to_version
        and (update_info.from_version, update_info.to_version)
        == (update_key.from_version, update_key.to_version)
    )


def batch_outcomes(group: PairingGroup, ciphertexts, update_key: UpdateKey,
                   update_infos) -> list:
    """The object-level batch core: amortized pairing, per-item errors.

    ``ciphertexts`` and ``update_infos`` are aligned sequences. Returns
    one :class:`ReencryptOutcome` per input, in input order.
    """
    ciphertexts = list(ciphertexts)
    update_infos = list(update_infos)
    if len(ciphertexts) != len(update_infos):
        raise SchemeError(
            "need exactly one update information per ciphertext"
        )
    outcomes = [None] * len(ciphertexts)
    by_owner = {}  # owner id -> [(index, ciphertext, update_info)]
    for index, (ciphertext, update_info) in enumerate(
        zip(ciphertexts, update_infos)
    ):
        if _is_already_current(ciphertext, update_key, update_info):
            outcomes[index] = ReencryptOutcome(
                ciphertext_id=ciphertext.ciphertext_id,
                status=ALREADY_CURRENT,
            )
            continue
        try:
            check_reencrypt_inputs(ciphertext, update_key, update_info)
        except ReproError as exc:
            outcomes[index] = _outcome_error(ciphertext.ciphertext_id, exc)
            continue
        by_owner.setdefault(ciphertext.owner_id, []).append(
            (index, ciphertext, update_info)
        )
    for owner_id, entries in by_owner.items():
        # The fixed first argument of every pairing in this owner-batch:
        # prepare its Miller lines once, replay per ciphertext, and
        # share one inversion across the final exponentiations.
        prepared = group.prepare_pairing(update_key.uk1[owner_id])
        factors = prepared.pair_many(
            [ciphertext.c_prime.point for _, ciphertext, _ in entries]
        )
        group.counter.pairings += len(entries)
        for (index, ciphertext, update_info), factor in zip(entries, factors):
            try:
                updated = apply_update(
                    ciphertext, update_key, update_info,
                    GTElement(group, factor),
                )
            except ReproError as exc:
                outcomes[index] = _outcome_error(
                    ciphertext.ciphertext_id, exc
                )
            else:
                outcomes[index] = ReencryptOutcome(
                    ciphertext_id=ciphertext.ciphertext_id,
                    status=UPDATED,
                    ciphertext=updated,
                )
    return outcomes


# -- raw (bytes-level) jobs: what actually crosses the process boundary ------

# Per-process cache of decoded update keys: group -> {uk raw: UpdateKey}.
# A sweep ships the same UK with every chunk; decoding it once per
# process keeps the per-chunk overhead at a dict lookup. Keyed weakly by
# the group *instance* — never by id(), whose values are reused after
# garbage collection — so a cached key can neither outlive the group its
# elements belong to nor leak into a lookalike group at the same address.
_UK_CACHE = weakref.WeakKeyDictionary()
_UK_CACHE_LIMIT = 8


def _cached_update_key(group: PairingGroup, uk_raw: bytes) -> UpdateKey:
    per_group = _UK_CACHE.get(group)
    if per_group is None:
        per_group = _UK_CACHE[group] = {}
    update_key = per_group.get(uk_raw)
    if update_key is None:
        # Trusted decode: the caller (batch API or sweep dispatcher)
        # validated these bytes before fanning them out.
        update_key = decode_update_key(group, uk_raw, check_subgroup=False)
        if len(per_group) >= _UK_CACHE_LIMIT:
            per_group.pop(next(iter(per_group)))
        per_group[uk_raw] = update_key
    return update_key


def _decode_ui_batch(group: PairingGroup, ui_raws, validate: bool) -> list:
    """Decode UIs; returns aligned ``[(info | None, exc | None)]``.

    Validated decodes run as one batch with a shared subgroup check;
    if the batch fails (one malformed entry), each UI is re-decoded
    individually so only the offending items turn into errors.
    """
    ui_raws = list(ui_raws)
    if validate:
        try:
            return [(info, None)
                    for info in decode_update_infos(group, ui_raws)]
        except ReproError:
            pass  # isolate the culprit(s) below
    results = []
    for raw in ui_raws:
        try:
            results.append((
                decode_update_info(group, raw, check_subgroup=validate),
                None,
            ))
        except ReproError as exc:
            results.append((None, exc))
    return results


def reencrypt_chunk_raw(group: PairingGroup, uk_raw: bytes, items,
                        validate_uis: bool = False) -> list:
    """One pooled chunk of ciphertext-level work, bytes in / bytes out.

    ``items`` is ``[(ciphertext_bytes, ui_bytes), ...]``; returns
    ``[(ciphertext_id, status, payload), ...]`` where ``payload`` is the
    updated ciphertext bytes for ``updated``, ``None`` for
    ``already-current`` and ``(code, message)`` for ``error``. Runs
    identically inline and in a worker; nothing unpicklable crosses the
    boundary (the group ships as parameter ints, see
    ``PairingGroup.__reduce__``).
    """
    update_key = _cached_update_key(group, uk_raw)
    decoded = []
    for ct_raw, _ in items:
        # Trusted decode: batch callers hold the objects these bytes
        # came from; sweep callers read them from the digest-verified
        # store, which validated them at ingest.
        decoded.append(Ciphertext.from_bytes(group, ct_raw, validate=False))
    uis = _decode_ui_batch(group, [ui_raw for _, ui_raw in items],
                           validate_uis)
    ciphertexts, infos, slots = [], [], []
    results = [None] * len(items)
    for index, (ciphertext, (info, exc)) in enumerate(zip(decoded, uis)):
        if exc is not None:
            results[index] = (ciphertext.ciphertext_id, ERROR,
                              (error_code(exc), str(exc)))
            continue
        ciphertexts.append(ciphertext)
        infos.append(info)
        slots.append(index)
    outcomes = batch_outcomes(group, ciphertexts, update_key, infos)
    for index, outcome in zip(slots, outcomes):
        if outcome.status == UPDATED:
            payload = outcome.ciphertext.to_bytes()
        elif outcome.status == ALREADY_CURRENT:
            payload = None
        else:
            payload = (outcome.error_codename, str(outcome.error))
        results[index] = (outcome.ciphertext_id, outcome.status, payload)
    return results


def reencrypt_records_raw(group: PairingGroup, uk_raw: bytes, tasks,
                          validate_uis: bool = True) -> list:
    """One pooled chunk of the service sweep: whole records in, out.

    ``tasks`` is ``[(record_bytes, [(component_name, ui_bytes), ...])]``.
    Returns one ``(new_record_bytes_or_None, item_results)`` per task,
    where ``item_results`` is ``[(ciphertext_id, status, code, message)]``
    (``code``/``message`` are ``None`` unless ``status == "error"``).
    ``new_record_bytes`` is ``None`` when no component changed.

    Record bytes come from the digest-verified store and decode trusted;
    update information arrived over the wire and is batch-validated here
    (off the server's event loop). The update key must have been
    validated by the caller before fan-out.
    """
    update_key = _cached_update_key(group, uk_raw)
    records = [
        StoredRecord.from_bytes(group, record_raw, validate=False)
        for record_raw, _ in tasks
    ]
    ui_raws = [ui_raw for _, targets in tasks for _, ui_raw in targets]
    uis = iter(_decode_ui_batch(group, ui_raws, validate_uis))
    # entry: (task index, component, decoded UI) per targeted ciphertext
    entries = []
    item_results = [[] for _ in tasks]
    for task_index, (record, (_, targets)) in enumerate(zip(records, tasks)):
        for component_name, _ in targets:
            info, exc = next(uis)
            component = record.components.get(component_name)
            if component is None:
                exc = StorageError(
                    f"record {record.record_id!r} has no component "
                    f"{component_name!r}"
                )
            if exc is not None:
                ciphertext_id = (
                    "?" if info is None and component is None
                    else (info.ciphertext_id if info is not None
                          else component.abe_ciphertext.ciphertext_id)
                )
                item_results[task_index].append(
                    (ciphertext_id, ERROR, error_code(exc), str(exc))
                )
                continue
            entries.append((task_index, component, info))
    outcomes = batch_outcomes(
        group,
        [component.abe_ciphertext for _, component, _ in entries],
        update_key,
        [info for _, _, info in entries],
    )
    updated_records = {}  # task index -> evolving StoredRecord
    for (task_index, component, _), outcome in zip(entries, outcomes):
        if outcome.status == UPDATED:
            record = updated_records.get(task_index, records[task_index])
            updated_records[task_index] = record.with_component(
                type(component)(
                    name=component.name,
                    abe_ciphertext=outcome.ciphertext,
                    data_ciphertext=component.data_ciphertext,
                )
            )
            item_results[task_index].append(
                (outcome.ciphertext_id, UPDATED, None, None)
            )
        elif outcome.status == ALREADY_CURRENT:
            item_results[task_index].append(
                (outcome.ciphertext_id, ALREADY_CURRENT, None, None)
            )
        else:
            item_results[task_index].append(
                (outcome.ciphertext_id, ERROR, outcome.error_codename,
                 str(outcome.error))
            )
    return [
        (
            updated_records[task_index].to_bytes()
            if task_index in updated_records else None,
            item_results[task_index],
        )
        for task_index in range(len(tasks))
    ]


# -- the public batch API -----------------------------------------------------

def reencrypt_batch(group: PairingGroup, ciphertexts,
                    update_key: UpdateKey, update_infos, *,
                    pool: CryptoPool = None, chunk_size: int = 32) -> list:
    """Re-encrypt many ciphertexts under one update key.

    Returns one :class:`ReencryptOutcome` per ciphertext, in order.
    With no pool (or an inline pool) the batch runs in-process; with a
    live :class:`CryptoPool` the items are encoded, fanned out in
    chunks, and decoded back — outputs are bit-identical either way,
    for any pool size and chunk size.
    """
    ciphertexts = list(ciphertexts)
    update_infos = list(update_infos)
    if len(ciphertexts) != len(update_infos):
        raise SchemeError(
            "need exactly one update information per ciphertext"
        )
    if pool is None or pool.inline:
        return batch_outcomes(group, ciphertexts, update_key, update_infos)
    uk_raw = encode_update_key(group, update_key)
    items = [
        (ciphertext.to_bytes(), encode_update_info(update_info))
        for ciphertext, update_info in zip(ciphertexts, update_infos)
    ]
    raw_results = pool.map_jobs(
        reencrypt_chunk_raw,
        [(group, uk_raw, chunk) for chunk in chunked(items, chunk_size)],
    )
    outcomes = []
    for (ciphertext_id, status, payload), ciphertext in zip(
        (result for chunk in raw_results for result in chunk), ciphertexts
    ):
        if status == UPDATED:
            outcomes.append(ReencryptOutcome(
                ciphertext_id=ciphertext_id,
                status=UPDATED,
                ciphertext=Ciphertext.from_bytes(group, payload,
                                                 validate=False),
            ))
        elif status == ALREADY_CURRENT:
            outcomes.append(ReencryptOutcome(
                ciphertext_id=ciphertext_id, status=ALREADY_CURRENT,
            ))
        else:
            code, message = payload
            outcomes.append(_outcome_error(
                ciphertext_id, _EXCEPTION_FOR_CODE.get(code, SchemeError)(
                    message
                )
            ))
    return outcomes


def _exception_table() -> dict:
    from repro import errors

    return {
        "revocation": errors.RevocationError,
        "policy-not-satisfied": errors.PolicyNotSatisfiedError,
        "unavailable": errors.UnavailableError,
        "storage": errors.StorageError,
        "scheme": errors.SchemeError,
        "authorization": errors.AuthorizationError,
        "policy": errors.PolicyError,
        "integrity": errors.IntegrityError,
        "math": errors.MathError,
    }


_EXCEPTION_FOR_CODE = _exception_table()

"""Tests for the executable Section III-B security game."""

import pytest

from repro.core.security_game import (
    GameError,
    SecurityGame,
    empirical_advantage,
)
from repro.ec.params import TOY80

LAYOUT = {"h": ["doctor", "nurse"], "t": ["researcher", "pi"]}
CHALLENGE_POLICY = "h:doctor AND t:researcher"


def fresh_game(corrupted=(), seed=11):
    return SecurityGame.setup(TOY80, LAYOUT, corrupted, seed=seed)


class TestSetup:
    def test_public_view_covers_all_authorities(self):
        game = fresh_game()
        view = game.public_view()
        assert set(view) == {"h", "t"}

    def test_corrupted_view_exposes_secret_state(self):
        game = fresh_game(corrupted={"t"})
        view = game.corrupted_view()
        assert set(view) == {"t"}
        assert view["t"].version_key.alpha >= 1
        assert "owner" in view["t"].owner_secrets

    def test_cannot_corrupt_everything(self):
        with pytest.raises(GameError):
            fresh_game(corrupted={"h", "t"})

    def test_cannot_corrupt_unknown(self):
        with pytest.raises(GameError):
            fresh_game(corrupted={"nasa"})


class TestQueryDiscipline:
    def test_legal_queries_allowed(self):
        game = fresh_game()
        key = game.secret_key_query("adv", "h", ["doctor"])
        assert key.attributes == frozenset({"h:doctor"})
        # A nurse key for the same user is also fine (still cannot
        # decrypt doctor AND researcher).
        game.secret_key_query("adv", "h", ["nurse"])

    def test_query_to_corrupted_authority_rejected(self):
        game = fresh_game(corrupted={"t"})
        with pytest.raises(GameError, match="corrupted"):
            game.secret_key_query("adv", "t", ["researcher"])

    def test_phase2_query_completing_decryption_rejected(self):
        game = fresh_game()
        game.secret_key_query("adv", "h", ["doctor"])
        game.challenge(
            game.group.random_gt(), game.group.random_gt(),
            CHALLENGE_POLICY,
        )
        with pytest.raises(GameError, match="rejected"):
            game.secret_key_query("adv", "t", ["researcher"])

    def test_phase2_query_for_other_user_allowed(self):
        game = fresh_game()
        game.secret_key_query("adv", "h", ["doctor"])
        game.challenge(
            game.group.random_gt(), game.group.random_gt(),
            CHALLENGE_POLICY,
        )
        # Different UID: its combined set is just t:researcher — legal.
        game.secret_key_query("other", "t", ["researcher"])
        with pytest.raises(GameError):
            game.secret_key_query("other", "h", ["doctor"])

    def test_corrupted_rows_count_toward_constraint(self):
        game = fresh_game(corrupted={"t"})
        # t:researcher rows come free with corruption; asking for
        # h:doctor would complete the challenge structure.
        game.challenge(
            game.group.random_gt(), game.group.random_gt(),
            CHALLENGE_POLICY,
        )
        with pytest.raises(GameError, match="rejected"):
            game.secret_key_query("adv", "h", ["doctor"])


class TestChallengeDiscipline:
    def test_challenge_decryptable_by_prior_queries_rejected(self):
        game = fresh_game()
        game.secret_key_query("adv", "h", ["doctor"])
        game.secret_key_query("adv", "t", ["researcher"])
        with pytest.raises(GameError, match="illegal challenge"):
            game.challenge(
                game.group.random_gt(), game.group.random_gt(),
                CHALLENGE_POLICY,
            )

    def test_challenge_decryptable_by_corruption_alone_rejected(self):
        game = fresh_game(corrupted={"t"})
        with pytest.raises(GameError, match="corrupted authorities alone"):
            game.challenge(
                game.group.random_gt(), game.group.random_gt(),
                "t:researcher",
            )

    def test_double_challenge_rejected(self):
        game = fresh_game()
        args = (game.group.random_gt(), game.group.random_gt(),
                CHALLENGE_POLICY)
        game.challenge(*args)
        with pytest.raises(GameError):
            game.challenge(*args)

    def test_guess_requires_challenge(self):
        game = fresh_game()
        with pytest.raises(GameError):
            game.guess(0)

    def test_guess_ends_game(self):
        game = fresh_game()
        game.challenge(
            game.group.random_gt(), game.group.random_gt(),
            CHALLENGE_POLICY,
        )
        game.guess(0)
        with pytest.raises(GameError):
            game.guess(1)


class TestAdvantage:
    def test_guessing_adversary_has_no_advantage(self):
        """A coin-flipping adversary wins ~half its games. 60 trials
        bound the deviation well below 0.2 with overwhelming margin."""

        def adversary(game, trial):
            game.challenge(
                game.group.random_gt(), game.group.random_gt(),
                CHALLENGE_POLICY,
            )
            return trial % 2

        advantage = empirical_advantage(
            TOY80, adversary, trials=60,
            authority_layout=LAYOUT, corrupted=frozenset(),
        )
        assert advantage < 0.2

    def test_cheating_adversary_wins_outside_the_game(self):
        """Sanity: an adversary with a *legitimately issued* satisfying
        key (outside the game's constraints) distinguishes perfectly —
        i.e. the game's constraint is exactly what forbids this."""
        game = fresh_game(seed=77)
        public = game.user_public_key("cheat")
        # Mint the keys directly at the authorities, bypassing the
        # challenger's query filter (simulating a broken challenger).
        keys = {
            "h": game.authorities["h"].keygen(public, ["doctor"], "owner"),
            "t": game.authorities["t"].keygen(public, ["researcher"],
                                              "owner"),
        }
        m0 = game.group.random_gt()
        m1 = game.group.random_gt()
        ciphertext = game.challenge(m0, m1, CHALLENGE_POLICY)
        from repro.core.decrypt import decrypt

        recovered = decrypt(game.group, ciphertext, public, keys)
        bit = 1 if recovered == m1 else 0
        assert game.guess(bit)

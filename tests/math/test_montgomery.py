"""The documented REDC invariants of :mod:`repro.math.montgomery`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.params import SS512, TOY80
from repro.errors import MathError
from repro.math.montgomery import MontgomeryContext

CTXS = [MontgomeryContext(TOY80.p), MontgomeryContext(SS512.p)]


@pytest.fixture(params=[0, 1], ids=["TOY80", "SS512"])
def ctx(request):
    return CTXS[request.param]


class TestConstants:
    def test_r_exceeds_4p(self, ctx):
        # Two bits of headroom: lazy operands in [0, 2p) stay REDC-safe.
        assert ctx.R == 1 << ctx.k
        assert ctx.R > 4 * ctx.p
        assert (2 * ctx.p) * (2 * ctx.p) < ctx.R * ctx.p

    def test_n_prime(self, ctx):
        assert (ctx.n_prime * ctx.p) % ctx.R == ctx.R - 1  # -p⁻¹ mod R

    def test_one_is_image_of_unity(self, ctx):
        assert ctx.one == ctx.R % ctx.p
        assert ctx.from_mont(ctx.one) == 1


class TestRedc:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_redc_is_division_by_r(self, data):
        ctx = data.draw(st.sampled_from(CTXS))
        t = data.draw(st.integers(0, ctx.R * ctx.p - 1))
        r_inv = pow(ctx.R, -1, ctx.p)
        assert ctx.redc(t) == t * r_inv % ctx.p

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_lazy_operand_bound(self, data):
        # The documented lazy-reduction bound: operands below 2p (not
        # just p) multiply without violating the t < R·p precondition.
        ctx = data.draw(st.sampled_from(CTXS))
        a = data.draw(st.integers(0, 2 * ctx.p - 1))
        b = data.draw(st.integers(0, 2 * ctx.p - 1))
        assert a * b < ctx.R * ctx.p
        r_inv = pow(ctx.R, -1, ctx.p)
        assert ctx.mul(a, b) == a * b * r_inv % ctx.p


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_domain_round_trip(self, data):
        ctx = data.draw(st.sampled_from(CTXS))
        a = data.draw(st.integers(0, ctx.p - 1))
        assert ctx.from_mont(ctx.to_mont(a)) == a

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_ops_match_plain_arithmetic(self, data):
        ctx = data.draw(st.sampled_from(CTXS))
        p = ctx.p
        a = data.draw(st.integers(1, p - 1))
        b = data.draw(st.integers(1, p - 1))
        e = data.draw(st.integers(0, 1 << 64))
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mul(am, bm)) == a * b % p
        assert ctx.from_mont(ctx.square(am)) == a * a % p
        assert ctx.from_mont(ctx.pow(am, e)) == pow(a, e, p)
        assert ctx.from_mont(ctx.inv(am)) == pow(a, -1, p)

    def test_zero_inverse_rejected(self, ctx):
        with pytest.raises(MathError):
            ctx.inv(0)

"""Facade for the multi-authority access-control scheme (Definition 3).

:class:`MultiAuthorityABE` wires together the eight algorithms — Setup,
OwnerGen, AAGen, KeyGen, Encrypt, Decrypt, ReKey, ReEncrypt — over one
pairing group and one certificate authority, which is the shape most
callers want::

    scheme = MultiAuthorityABE(TOY80, seed=1)
    hospital = scheme.setup_authority("hospital", ["doctor", "nurse"])
    trial = scheme.setup_authority("trial", ["researcher"])
    owner = scheme.setup_owner("alice", [hospital, trial])
    bob_pk = scheme.register_user("bob")
    bob_keys = {
        "hospital": hospital.keygen(bob_pk, ["doctor"], "alice"),
        "trial": trial.keygen(bob_pk, ["researcher"], "alice"),
    }
    message = scheme.random_message()
    ct = owner.encrypt(message, "hospital:doctor AND trial:researcher")
    assert scheme.decrypt(ct, bob_pk, bob_keys) == message

The distributed deployment (message passing, storage, metering) lives in
:mod:`repro.system`; this class is the cryptographic core only.
"""

from __future__ import annotations

from repro.core.authority import AttributeAuthority, apply_update_key
from repro.core.ca import CertificateAuthority
from repro.core.ciphertext import Ciphertext
from repro.core.decrypt import can_decrypt, decrypt, decrypt_fast
from repro.core.keys import UserPublicKey
from repro.core.owner import DataOwner
from repro.core.reencrypt import reencrypt
from repro.core.revocation import RekeyResult, rekey_hardened, rekey_standard
from repro.ec.params import TOY80, TypeAParams
from repro.pairing.group import GTElement, PairingGroup


class MultiAuthorityABE:
    """One deployment of the scheme: group, CA, and convenience wiring."""

    def __init__(self, params: TypeAParams = TOY80, seed=None):
        self.group = PairingGroup(params, seed=seed)
        self.ca = CertificateAuthority(self.group)
        self._authorities = {}

    # -- Setup / AAGen / OwnerGen ------------------------------------------------

    def setup_authority(self, aid: str, attributes) -> AttributeAuthority:
        """AAGen: register an AA with the CA and create its version key."""
        self.ca.register_authority(aid)
        authority = AttributeAuthority(self.group, aid, attributes)
        self._authorities[aid] = authority
        return authority

    def authority(self, aid: str) -> AttributeAuthority:
        return self._authorities[aid]

    @property
    def authorities(self) -> dict:
        return dict(self._authorities)

    def setup_owner(self, owner_id: str, authorities=None) -> DataOwner:
        """OwnerGen: create the owner and exchange keys with the given AAs.

        Sends ``SK_o`` to each authority (secure channel) and caches each
        authority's public key material at the owner.
        """
        self.ca.register_owner(owner_id)
        owner = DataOwner(self.group, owner_id)
        for authority in authorities or self._authorities.values():
            authority.register_owner(owner.secret_key)
            owner.learn_authority(
                authority.authority_public_key(),
                authority.public_attribute_keys(),
            )
        return owner

    def register_user(self, uid: str) -> UserPublicKey:
        """Setup (user part): UID assignment and ``PK_UID`` generation."""
        return self.ca.register_user(uid)

    # -- message helpers ------------------------------------------------------------

    def random_message(self) -> GTElement:
        """A uniform GT element — the session element of the KEM/DEM hybrid."""
        return self.group.random_gt()

    # -- fast-path sessions (repro.fastpath) -----------------------------------------

    @staticmethod
    def encryption_session(owner: DataOwner, policy, **kwargs):
        """A cached per-policy encryption session (online/offline split).

        Convenience for :meth:`repro.core.owner.DataOwner.session_for`;
        see :class:`repro.fastpath.session.EncryptionSession`.
        """
        return owner.session_for(policy, **kwargs)

    def keygen_session(self, aid: str, owner_id: str, attributes):
        """A cached bulk-onboarding KeyGen session at the named AA.

        See :class:`repro.fastpath.keygen.KeyGenSession`.
        """
        return self._authorities[aid].keygen_session(owner_id, attributes)

    # -- Decrypt / ReEncrypt (thin wrappers keeping one import site) -----------------

    def decrypt(self, ciphertext: Ciphertext, user_public_key: UserPublicKey,
                secret_keys: dict) -> GTElement:
        return decrypt(self.group, ciphertext, user_public_key, secret_keys)

    def decrypt_fast(self, ciphertext: Ciphertext,
                     user_public_key: UserPublicKey,
                     secret_keys: dict) -> GTElement:
        return decrypt_fast(self.group, ciphertext, user_public_key, secret_keys)

    def can_decrypt(self, ciphertext: Ciphertext, secret_keys: dict) -> bool:
        return can_decrypt(self.group, ciphertext, secret_keys)

    def reencrypt(self, ciphertext: Ciphertext, update_key, update_info) -> Ciphertext:
        return reencrypt(self.group, ciphertext, update_key, update_info)

    # -- ReKey -------------------------------------------------------------------------

    def revoke(self, aid: str, revoked_uid: str, revoked_attributes,
               hardened: bool = False) -> RekeyResult:
        """Run ReKey at the named authority (paper or hardened variant)."""
        authority = self._authorities[aid]
        if hardened:
            return rekey_hardened(authority, revoked_uid, revoked_attributes)
        return rekey_standard(authority, revoked_uid, revoked_attributes)

    @staticmethod
    def apply_update_key(secret_key, update_key):
        """Client-side key roll-forward for non-revoked users."""
        return apply_update_key(secret_key, update_key)

"""Client-side library for the networked storage service.

:class:`ServiceConnection` owns one framed TCP connection: it speaks
the hello negotiation, sends requests, maps typed ERROR frames back
into the library's exception hierarchy, and meters every
payload-bearing transfer through a :class:`repro.system.meter.Meter`
with the same role/kind vocabulary the in-process simulation uses — so
a client-side meter and the server's meter tell the same Table IV
story for the same workload.

With a :class:`repro.service.retry.RetryPolicy` attached, the
connection is fault-tolerant: a dropped, timed-out, or garbled exchange
closes the broken socket, reconnects (re-HELLO included), and re-sends
the request under exponential backoff — mutating requests carry a
stable idempotency key across retries so the server applies them
exactly once. Replies are matched to requests by the v2 sequence
number; late or duplicated frames are discarded (and logged), never
consumed as the answer to the next request. Every recovery action is
recorded in :attr:`ServiceConnection.retry_log`.

With ``max_inflight > 1`` against a v2 server the connection
**pipelines**: a background reader task correlates every incoming
frame to its pending request by sequence number, so up to
``max_inflight`` requests share the connection concurrently instead of
queueing behind one in-flight round trip. A timed-out pipelined
request fails (and retries under its own idempotency key and its own
:class:`~repro.service.retry.RetrySequence`) *without tearing down the
connection its siblings are still using* — only reader-level breakage
(EOF, garbled frames) fails everything and forces a reconnect. Against
a v1 server the connection transparently falls back to the serial
one-in-flight path.

On top of it, the three role wrappers mirror the simulation entities
(:mod:`repro.system.entities`) over real I/O:

* :class:`OwnerClient` — hybrid-encrypts and uploads Fig. 2 records,
  reads its own data back via the ledger, replaces components, deletes
  records, and drives the owner side of Section V-C revocation
  (pushing the update key + per-ciphertext update information so the
  server re-encrypts);
* :class:`UserClient` — holds issued keys, downloads components and
  decrypts end-to-end;
* :class:`AuthorityClient` — publishes authority/attribute public keys
  into the server's key directory.

Key issuance itself (AA → user) stays out-of-band, exactly as in the
paper: the server is never on the path of any secret key.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from repro.core.authority import AttributeAuthority, apply_update_key
from repro.core.keys import UpdateKey, UserPublicKey
from repro.core.outsourcing import make_transform_key, user_finalize_value
from repro.core.owner import DataOwner
from repro.core.serialize import (
    decode_authority_public_key,
    decode_public_attribute_keys,
    encode_authority_public_key,
    encode_public_attribute_keys,
    encode_transform_key,
    encode_update_info,
    encode_update_key,
)
from repro.fastpath import DecryptionSession
from repro.crypto.hybrid import encrypt_with_session, open_sealed
from repro.crypto.symmetric import SymmetricCiphertext
from repro.errors import (
    AuthorizationError,
    ProtocolError,
    RetryExhaustedError,
    SchemeError,
    TransportError,
    UnavailableError,
)
from repro.pairing.group import PairingGroup
from repro.service import protocol
from repro.service.protocol import MessageType
from repro.service.retry import (
    RetryLog,
    RetryPolicy,
    is_retryable,
    new_idempotency_key,
)
from repro.system.meter import ROLE_SERVER, Meter
from repro.system.records import StoredComponent, StoredRecord


class _PendingReply:
    """One pipelined request awaiting its reply, keyed by seq.

    The reader task pushes ``("progress", body)``, ``("final",
    (type, body))`` or ``("error", exc)`` items; the requesting task
    consumes them under its own per-item timeout.
    """

    __slots__ = ("queue", "progress")

    def __init__(self, progress=None):
        self.queue = asyncio.Queue()
        self.progress = progress  # MessageType of progress frames, or None

    def deliver(self, kind, value) -> None:
        self.queue.put_nowait((kind, value))


class ServiceConnection:
    """One framed, metered client connection to a :class:`StorageService`."""

    #: Bound on stale/duplicated frames discarded per exchange before
    #: the connection is declared hopelessly desynced.
    MAX_STALE_FRAMES = 32

    def __init__(self, group: PairingGroup, host: str, port: int, *,
                 role: str, name: str, meter: Meter = None,
                 timeout: float = 30.0,
                 max_frame: int = protocol.MAX_FRAME_BYTES,
                 retry: RetryPolicy = None, retry_log: RetryLog = None,
                 max_inflight: int = 1):
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.group = group
        self.host = host
        self.port = port
        self.role = role
        self.name = name
        self.meter = meter if meter is not None else Meter(group)
        self.timeout = timeout
        self.max_frame = max_frame
        self.retry = retry
        self.retry_log = retry_log if retry_log is not None else RetryLog()
        self.max_inflight = max_inflight
        self.server_name = None
        self.version = None
        self._reader = None
        self._writer = None
        self._send_seq = 0
        # Pipelining state (only live when max_inflight > 1 against a
        # v2 server): the reader task, pending requests by seq, the
        # write lock keeping frames atomic, and the in-flight window.
        self._reader_task = None
        self._pending = {}  # seq -> _PendingReply
        self._write_lock = None
        self._window = None
        self._connect_lock = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    @property
    def pipelined(self) -> bool:
        """Whether requests currently multiplex over a reader task."""
        return self._reader_task is not None

    async def connect(self) -> "ServiceConnection":
        """Connect and negotiate; with a retry policy, keeps trying."""
        attempt = 1
        retry_state = self.retry.sequence() if self.retry is not None else None
        while True:
            try:
                return await self._connect_once()
            except Exception as exc:
                if not await self._backoff("HELLO", attempt, exc,
                                           retry_state):
                    raise
                attempt += 1

    async def _ensure_connected(self) -> None:
        """Reconnect if needed, serialized: when N pipelined requests
        fail together (their reader died), exactly one performs the
        reconnect and the rest reuse it."""
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if not self.connected:
                await self._connect_once()

    async def _connect_once(self) -> "ServiceConnection":
        """One connection attempt: TCP connect plus the HELLO exchange."""
        await self.close()  # never reuse a half-dead socket
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        try:
            sent = await protocol.write_frame(
                self._writer, MessageType.HELLO,
                protocol.hello_body(self.group.params.name, self.role,
                                    self.name),
            )
            self.meter.record_wire(sent)
            try:
                msg_type, body = await asyncio.wait_for(
                    protocol.read_frame(self._reader, self.max_frame),
                    self.timeout,
                )
            except ProtocolError as exc:
                raise TransportError(f"garbled HELLO_ACK: {exc}") from exc
            self.meter.record_wire(5 + len(body))
            if msg_type is MessageType.ERROR:
                protocol.raise_error(body)
            if msg_type is not MessageType.HELLO_ACK:
                raise ProtocolError(
                    f"expected HELLO_ACK, got {msg_type.name}"
                )
            ack = protocol.decode_json(body)
            self.version = ack.get("version")
            if self.version not in protocol.PROTOCOL_VERSIONS:
                raise ProtocolError(
                    f"server chose unsupported protocol version "
                    f"{self.version!r}"
                )
            self.server_name = protocol.json_str(ack, "server")
            if self.max_inflight > 1 and self.version >= 2:
                # Pipelining: primitives are created here, inside the
                # running loop, fresh per connection (stale waiters of a
                # previous connection already failed in close()).
                self._write_lock = asyncio.Lock()
                self._window = asyncio.Semaphore(self.max_inflight)
                self._reader_task = asyncio.get_running_loop().create_task(
                    self._read_replies()
                )
            return self
        except BaseException:
            await self.close()
            raise

    async def close(self) -> None:
        reader_task = self._reader_task
        self._reader_task = None
        if reader_task is not None and reader_task is not asyncio.current_task():
            reader_task.cancel()
            await asyncio.gather(reader_task, return_exceptions=True)
        self._fail_pending(TransportError("connection closed"))
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    def _fail_pending(self, exc: BaseException) -> None:
        """Deliver a terminal error to every pipelined request in flight."""
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            entry.deliver("error", exc)

    async def _read_replies(self) -> None:
        """The pipelined reader: correlate every frame to its request.

        Runs for the lifetime of one connection. Frame-level breakage
        (EOF, garbled frames) is terminal for the *connection* — every
        pending request fails with a retryable transport error and the
        socket closes — but an individual request's timeout is handled
        on the requesting side and never reaches here.
        """
        try:
            while True:
                reply_type, reply_seq, reply = await protocol.read_seq_frame(
                    self._reader, self.max_frame
                )
                self.meter.record_wire(9 + len(reply))
                if reply_seq == protocol.SEQ_BROADCAST:
                    # A reply answering no particular request (the
                    # server could not even parse a frame): terminal
                    # for every exchange on this connection.
                    pending, self._pending = self._pending, {}
                    for entry in pending.values():
                        entry.deliver("final", (reply_type, reply))
                    continue
                entry = self._pending.get(reply_seq)
                if entry is None:
                    # A reply to a request that already timed out (its
                    # retry is in flight under a fresh seq) or a chaos
                    # duplicate: discard, never mis-correlate.
                    self.retry_log.note(
                        "discard", reply_type.name,
                        cause=f"unmatched reply seq {reply_seq}",
                    )
                    continue
                if entry.progress is not None and reply_type is entry.progress:
                    entry.deliver("progress", reply)
                    continue
                del self._pending[reply_seq]
                entry.deliver("final", (reply_type, reply))
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            self._reader_task = None
            self._fail_pending(TransportError(f"garbled reply frame: {exc}"))
            self._abort_transport()
        except Exception as exc:
            self._reader_task = None
            self._fail_pending(
                exc if is_retryable(exc)
                else TransportError(f"pipelined reader died: {exc!r}")
            )
            self._abort_transport()

    def _abort_transport(self) -> None:
        """Close the socket without awaiting (reader-task cleanup)."""
        if self._writer is not None:
            self._writer.close()
            self._reader = self._writer = None

    async def _pipelined_exchange(self, msg_type: MessageType,
                                  body: bytes = b"", progress=None,
                                  on_progress=None) -> tuple:
        """One request multiplexed over the shared pipelined connection.

        The window semaphore bounds requests in flight; the write lock
        keeps request frames atomic on the wire. A timeout fails *this*
        request only — the pending entry is dropped (its late reply, if
        any, will be discarded by seq) and the connection stays up for
        every sibling. The caller's retry loop re-sends under a fresh
        seq and the same idempotency key.
        """
        if self._window is None:
            raise TransportError("connection is not pipelined")
        async with self._window:
            if self._writer is None:
                raise TransportError(
                    "connection is not open (closed or never connected)"
                )
            seq = self._send_seq
            self._send_seq = (self._send_seq + 1) & 0x7FFFFFFF
            entry = _PendingReply(progress)
            self._pending[seq] = entry
            try:
                async with self._write_lock:
                    sent = await protocol.write_frame(
                        self._writer, msg_type, body, seq=seq
                    )
                self.meter.record_wire(sent)
                while True:
                    try:
                        kind, value = await asyncio.wait_for(
                            entry.queue.get(), self.timeout
                        )
                    except (asyncio.TimeoutError, TimeoutError):
                        raise TransportError(
                            f"{msg_type.name} (seq {seq}) timed out after "
                            f"{self.timeout}s on a pipelined connection"
                        ) from None
                    if kind == "progress":
                        payload = protocol.decode_json(value)
                        if on_progress is not None:
                            on_progress(payload)
                        continue  # each frame restarts the timeout
                    if kind == "error":
                        raise value
                    return value  # ("final", (reply type, reply body))
            finally:
                self._pending.pop(seq, None)

    async def __aenter__(self) -> "ServiceConnection":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _backoff(self, request: str, attempt: int,
                       exc: BaseException, retry_state=None) -> bool:
        """Log and sleep before a retry; False when out of budget.

        Two budgets gate every retry: the per-attempt count (exhaustion
        re-raises the original failure, as before) and the policy's
        total wall-clock ``deadline`` — when sleeping the next backoff
        would overrun it, a typed :class:`RetryExhaustedError` carrying
        this request's attempt trace is raised instead, so adversarial
        delay injection can't stretch a failover into unbounded retry.

        ``retry_state`` is one request's :class:`~repro.service.retry.
        RetrySequence`; pipelined requests retry concurrently, so each
        carries its own walk/deadline state instead of sharing the
        policy's built-in default sequence.
        """
        if self.retry is None or not is_retryable(exc):
            return False
        state = retry_state if retry_state is not None else self.retry
        if not state.attempts_left(attempt):
            self.retry_log.note("exhausted", request, attempt=attempt,
                                cause=repr(exc))
            return False
        delay = state.backoff(attempt)
        if state.deadline_overrun(delay):
            self.retry_log.note("exhausted", request, attempt=attempt,
                                cause=f"deadline {self.retry.deadline}s "
                                      f"overrun: {exc!r}")
            raise RetryExhaustedError(
                f"{request}: retry deadline of {self.retry.deadline}s "
                f"overrun after {attempt} attempt(s) ({exc!r})",
                attempts=[entry for entry in self.retry_log
                          if entry["request"] == request],
            ) from exc
        self.retry_log.note("retry", request, attempt=attempt,
                            cause=repr(exc), delay=delay)
        await asyncio.sleep(delay)
        return True

    async def _roundtrip(self, msg_type: MessageType,
                         body: bytes = b"") -> tuple:
        if self._writer is None:
            raise TransportError(
                "connection is not open (closed or never connected)"
            )
        use_seq = self.version is not None and self.version >= 2
        seq = None
        if use_seq:
            seq = self._send_seq
            # Masked below the SEQ_BROADCAST sentinel.
            self._send_seq = (self._send_seq + 1) & 0x7FFFFFFF
        try:
            sent = await protocol.write_frame(self._writer, msg_type, body,
                                              seq=seq)
            self.meter.record_wire(sent)
            for _ in range(self.MAX_STALE_FRAMES):
                try:
                    if use_seq:
                        reply_type, reply_seq, reply = await asyncio.wait_for(
                            protocol.read_seq_frame(self._reader,
                                                    self.max_frame),
                            self.timeout,
                        )
                    else:
                        reply_type, reply = await asyncio.wait_for(
                            protocol.read_frame(self._reader, self.max_frame),
                            self.timeout,
                        )
                        reply_seq = seq
                except ProtocolError as exc:
                    # The reply *frame* is garbled (chaos, bad peer): the
                    # stream is unusable, unlike a typed ERROR body.
                    raise TransportError(
                        f"garbled reply frame: {exc}"
                    ) from exc
                self.meter.record_wire(5 + (4 if use_seq else 0) + len(reply))
                if reply_seq == seq or reply_seq == protocol.SEQ_BROADCAST:
                    return reply_type, reply
                # A late or duplicated reply to an earlier exchange:
                # discard it instead of desyncing the session.
                self.retry_log.note(
                    "discard", msg_type.name,
                    cause=f"stale reply seq {reply_seq} (awaiting {seq})",
                )
            raise TransportError(
                f"gave up after {self.MAX_STALE_FRAMES} stale frames"
            )
        except BaseException:
            # Timeouts included: once an exchange fails mid-flight the
            # stream may still carry its late reply, so the connection
            # must be closed, never reused.
            await self.close()
            raise

    async def _stream_roundtrip(self, msg_type: MessageType, body: bytes,
                                progress: MessageType,
                                on_progress) -> tuple:
        """One exchange whose reply may be preceded by progress frames.

        Progress frames matching the request's sequence number are
        decoded and handed to ``on_progress`` without ending the
        exchange; the per-frame timeout restarts on each, so a long
        sweep stays alive as long as the server keeps streaming.
        """
        if self._writer is None:
            raise TransportError(
                "connection is not open (closed or never connected)"
            )
        seq = self._send_seq
        self._send_seq = (self._send_seq + 1) & 0x7FFFFFFF
        try:
            sent = await protocol.write_frame(self._writer, msg_type, body,
                                              seq=seq)
            self.meter.record_wire(sent)
            stale = 0
            while True:
                try:
                    reply_type, reply_seq, reply = await asyncio.wait_for(
                        protocol.read_seq_frame(self._reader,
                                                self.max_frame),
                        self.timeout,
                    )
                except ProtocolError as exc:
                    raise TransportError(
                        f"garbled reply frame: {exc}"
                    ) from exc
                self.meter.record_wire(9 + len(reply))
                if reply_seq != seq and reply_seq != protocol.SEQ_BROADCAST:
                    stale += 1
                    self.retry_log.note(
                        "discard", msg_type.name,
                        cause=f"stale reply seq {reply_seq} (awaiting {seq})",
                    )
                    if stale >= self.MAX_STALE_FRAMES:
                        raise TransportError(
                            f"gave up after {stale} stale frames"
                        )
                    continue
                if reply_type is progress:
                    payload = protocol.decode_json(reply)
                    if on_progress is not None:
                        on_progress(payload)
                    continue
                return reply_type, reply
        except BaseException:
            await self.close()
            raise

    async def request_stream(self, msg_type: MessageType, body: bytes = b"",
                             *, final: MessageType, progress: MessageType,
                             on_progress=None) -> bytes:
        """Send one v2 request answered by progress frames plus a final.

        Same retry/idempotency discipline as :meth:`request`: transport
        failures (including a dropped progress frame severing the
        connection) reconnect and re-send under the *same* idempotency
        key, so the server either resumes idempotently or replays the
        cached final reply — possibly with no progress frames at all.
        Returns the final frame's body.
        """
        attempt = 1
        key = None
        retry_state = self.retry.sequence() if self.retry is not None else None
        while True:
            try:
                if not self.connected and self.retry is not None:
                    await self._ensure_connected()
                if self.version is None or self.version < 2:
                    raise ProtocolError(
                        f"{msg_type.name} requires protocol version 2"
                    )
                wire_body = body
                if msg_type in protocol.MUTATION_TYPES:
                    if key is None:
                        key = new_idempotency_key()
                    wire_body = protocol.wrap_idempotency(key, body)
                if self.pipelined:
                    reply_type, reply = await self._pipelined_exchange(
                        msg_type, wire_body,
                        progress=progress, on_progress=on_progress,
                    )
                else:
                    reply_type, reply = await self._stream_roundtrip(
                        msg_type, wire_body, progress, on_progress
                    )
            except ProtocolError:
                raise  # speaking the wrong protocol; retrying won't help
            except Exception as exc:
                if not await self._backoff(msg_type.name, attempt, exc,
                                           retry_state):
                    raise
                attempt += 1
                continue
            if reply_type is MessageType.ERROR:
                try:
                    protocol.raise_error(reply)
                except UnavailableError as exc:
                    if not await self._backoff(msg_type.name, attempt, exc,
                                               retry_state):
                        raise
                    attempt += 1
                    continue
            if reply_type is not final:
                raise ProtocolError(
                    f"expected a {final.name} reply, got {reply_type.name}"
                )
            return reply

    async def request(self, msg_type: MessageType, body: bytes = b"",
                      expect: MessageType = None) -> tuple:
        """Send one request; raise the mapped exception on ERROR frames.

        With a retry policy, transport failures reconnect (full
        re-HELLO) and re-send under backoff; mutating requests keep one
        idempotency key across every retry so the server applies them
        exactly once. A typed ``unavailable`` ERROR (read-only server)
        is retried the same way; all other ERRORs raise immediately.
        """
        attempt = 1
        key = None
        retry_state = self.retry.sequence() if self.retry is not None else None
        while True:
            unsafe_when_sent = False
            try:
                if not self.connected and self.retry is not None:
                    await self._ensure_connected()
                wire_body = body
                if msg_type in protocol.MUTATION_TYPES:
                    if self.version is not None and self.version >= 2:
                        if key is None:
                            key = new_idempotency_key()
                        wire_body = protocol.wrap_idempotency(key, body)
                    else:
                        # A v1 server cannot deduplicate: once the
                        # request may have been applied, never re-send.
                        unsafe_when_sent = True
                if self.pipelined:
                    reply_type, reply = await self._pipelined_exchange(
                        msg_type, wire_body
                    )
                else:
                    reply_type, reply = await self._roundtrip(
                        msg_type, wire_body
                    )
            except Exception as exc:
                if unsafe_when_sent and not isinstance(exc, UnavailableError):
                    raise
                if not await self._backoff(msg_type.name, attempt, exc,
                                           retry_state):
                    raise
                attempt += 1
                continue
            if reply_type is MessageType.ERROR:
                try:
                    protocol.raise_error(reply)
                except UnavailableError as exc:
                    if not await self._backoff(msg_type.name, attempt, exc,
                                               retry_state):
                        raise
                    attempt += 1
                    continue
            if expect is not None and reply_type is not expect:
                raise ProtocolError(
                    f"expected a {expect.name} reply, got {reply_type.name}"
                )
            return reply_type, reply

    # -- metering (same vocabulary as Network.send) -----------------------

    def meter_send(self, kind: str, payload) -> None:
        self.meter.record(self.name, self.role,
                          self.server_name or "server", ROLE_SERVER,
                          kind, payload)

    def meter_receive(self, kind: str, payload) -> None:
        self.meter.record(self.server_name or "server", ROLE_SERVER,
                          self.name, self.role, kind, payload)


class BaseClient:
    """Shared plumbing: ping, stats, record listing."""

    def __init__(self, connection: ServiceConnection):
        self.connection = connection
        self.group = connection.group

    async def close(self) -> None:
        await self.connection.close()

    async def ping(self) -> bool:
        _, body = await self.connection.request(
            MessageType.PING, b"hello", expect=MessageType.PONG
        )
        return body == b"hello"

    async def health(self) -> dict:
        """The server's heartbeat: ``status`` is ``ok`` or ``read-only``."""
        _, body = await self.connection.request(
            MessageType.HEALTH, expect=MessageType.HEALTH_REPLY
        )
        return protocol.decode_json(body)

    async def stats(self) -> dict:
        _, body = await self.connection.request(
            MessageType.STATS, expect=MessageType.STATS_REPLY
        )
        return protocol.decode_json(body)

    async def list_records(self) -> list:
        _, body = await self.connection.request(
            MessageType.LIST_RECORDS, expect=MessageType.RECORD_IDS
        )
        records = protocol.decode_json(body).get("records")
        if not isinstance(records, list):
            raise ProtocolError("malformed record listing")
        return records

    async def record_digest(self, record_id: str, *,
                            verify: bool = False) -> dict:
        """One replica's view of a record: its content digest, and —
        with ``verify`` — whether the node can actually serve bytes
        matching it (``ok: false`` marks a replica needing repair)."""
        _, body = await self.connection.request(
            MessageType.RECORD_DIGEST,
            protocol.encode_json({"record": record_id, "verify": verify}),
            expect=MessageType.RECORD_DIGEST_REPLY,
        )
        return protocol.decode_json(body)

    async def fetch_record(self, record_id: str) -> StoredRecord:
        """Download one whole record (every component)."""
        self.connection.meter_send("read-request", record_id)
        _, body = await self.connection.request(
            MessageType.FETCH_RECORD,
            protocol.encode_json({"record": record_id}),
            expect=MessageType.RECORD,
        )
        record = StoredRecord.from_bytes(self.group, body)
        self.connection.meter_receive("record-download", record)
        return record

    async def repair_record(self, record_bytes: bytes) -> None:
        """Force-put known-good record bytes (the read-repair write)."""
        await self.connection.request(
            MessageType.REPAIR_RECORD, record_bytes, expect=MessageType.OK,
        )

    async def _fetch_component(self, record_id: str,
                               component_name: str) -> StoredComponent:
        """The metered download shared by user reads and owner self-reads."""
        self.connection.meter_send(
            "read-request", f"{record_id}/{component_name}"
        )
        _, body = await self.connection.request(
            MessageType.FETCH_COMPONENT,
            protocol.encode_json(
                {"record": record_id, "component": component_name}
            ),
            expect=MessageType.COMPONENT,
        )
        component = StoredComponent.from_bytes(self.group, body)
        self.connection.meter_receive("component-download", component)
        return component


class OwnerClient(BaseClient):
    """The data-owner role against a live server (cf. ``OwnerEntity``)."""

    def __init__(self, connection: ServiceConnection, core: DataOwner):
        super().__init__(connection)
        self.core = core

    @property
    def owner_id(self) -> str:
        return self.core.owner_id

    async def learn_authorities(self, aid: str) -> None:
        """Fetch an authority's public keys from the server's directory."""
        _, body = await self.connection.request(
            MessageType.GET_AUTHORITY_KEYS,
            protocol.encode_json({"aid": aid}),
            expect=MessageType.AUTHORITY_KEYS,
        )
        apk_raw, pak_raw = protocol.unpack_parts(body, 2)
        apk = decode_authority_public_key(self.group, apk_raw)
        pak = decode_public_attribute_keys(self.group, pak_raw)
        self.connection.meter_receive("authority-public-key", apk)
        self.connection.meter_receive("public-attribute-keys", pak)
        self.core.learn_authority(apk, pak)

    async def upload(self, record_id: str, components: dict) -> StoredRecord:
        """Encrypt and upload one Fig. 2 record (cf. ``OwnerEntity.upload``).

        ``components`` maps a component name to ``(plaintext, policy)``.
        Components sharing a policy reuse one cached
        :class:`~repro.fastpath.session.EncryptionSession`, so the
        policy is parsed and precomputed once per policy string rather
        than once per component.
        """
        stored = {}
        for component_name, (plaintext, policy) in components.items():
            ciphertext_id = f"{record_id}/{component_name}"
            abe_ciphertext, body = encrypt_with_session(
                self.core.session_for(policy), ciphertext_id, plaintext
            )
            stored[component_name] = StoredComponent(
                name=component_name,
                abe_ciphertext=abe_ciphertext,
                data_ciphertext=body,
            )
        record = StoredRecord(
            record_id=record_id, owner_id=self.owner_id, components=stored
        )
        self.connection.meter_send("store-record", record)
        await self.connection.request(
            MessageType.STORE_RECORD, record.to_bytes(),
            expect=MessageType.OK,
        )
        return record

    async def read_own(self, record_id: str, component_name: str) -> bytes:
        """Read own data back via the ledger — no ABE keys involved."""
        component = await self._fetch_component(record_id, component_name)
        ciphertext = component.abe_ciphertext
        if ciphertext.owner_id != self.owner_id:
            raise SchemeError("not this owner's record")
        blinding = self.core.recover_session(ciphertext.ciphertext_id)
        session = ciphertext.c / blinding
        return open_sealed(
            session, ciphertext.ciphertext_id, component.data_ciphertext
        )

    async def update_component(self, record_id: str, component_name: str,
                               plaintext: bytes, policy) -> StoredComponent:
        """Replace one component's data under a fresh versioned id."""
        suffix = 0
        while True:
            ciphertext_id = f"{record_id}/{component_name}#v{suffix}"
            if ciphertext_id not in self.core.ciphertext_ids:
                break
            suffix += 1
        abe_ciphertext, body = encrypt_with_session(
            self.core.session_for(policy), ciphertext_id, plaintext
        )
        component = StoredComponent(
            name=component_name,
            abe_ciphertext=abe_ciphertext,
            data_ciphertext=body,
        )
        old_id = f"{record_id}/{component_name}"
        self.connection.meter_send("update-component", component)
        await self.connection.request(
            MessageType.REPLACE_COMPONENT,
            protocol.pack_parts(
                protocol.encode_json({"record": record_id}),
                component.to_bytes(),
            ),
            expect=MessageType.OK,
        )
        for candidate in (old_id,) + tuple(
            f"{old_id}#v{n}" for n in range(suffix)
        ):
            if candidate in self.core.ciphertext_ids \
                    and not self.core.is_retired(candidate):
                self.core.retire_record(candidate)
        return component

    async def delete_record(self, record_id: str) -> None:
        """Remove a record server-side and retire its ledger entries."""
        self.connection.meter_send("delete-record", record_id)
        await self.connection.request(
            MessageType.DELETE_RECORD,
            protocol.encode_json({"record": record_id}),
            expect=MessageType.OK,
        )
        prefix = f"{record_id}/"
        for ciphertext_id in self.core.ciphertext_ids:
            if ciphertext_id.startswith(prefix) \
                    and not self.core.is_retired(ciphertext_id):
                self.core.retire_record(ciphertext_id)

    async def push_revocation_updates(self, update_key: UpdateKey,
                                      include_uk2: bool = True) -> list:
        """Owner side of Section V-C Phase 2, over the wire.

        For every owned ciphertext involving the re-keyed authority,
        send the update key and the ledger-derived update information;
        the server runs ReEncrypt in place. Mirrors
        ``OwnerEntity.push_revocation_updates`` frame-for-send.
        """
        from repro.core.revocation import strip_uk2

        server_key = update_key if include_uk2 else strip_uk2(update_key)
        key_raw = encode_update_key(self.group, server_key)
        updated = []
        for ciphertext_id in self.core.records_involving(update_key.aid):
            record = self.core.record(ciphertext_id)
            if record.versions[update_key.aid] != update_key.from_version:
                continue  # already past this version (defensive)
            update_info = self.core.update_info_for_record(
                ciphertext_id, update_key
            )
            self.connection.meter_send("update-key", server_key)
            self.connection.meter_send("update-info", update_info)
            await self.connection.request(
                MessageType.REENCRYPT,
                protocol.pack_parts(
                    ciphertext_id.encode("utf-8"),
                    key_raw,
                    encode_update_info(update_info),
                ),
                expect=MessageType.OK,
            )
            self.core.note_reencrypted(ciphertext_id, update_key)
            updated.append(ciphertext_id)
        self.core.apply_update_key(update_key)
        return updated

    async def sweep_revocation(self, update_key: UpdateKey, *,
                               include_uk2: bool = True,
                               on_progress=None) -> dict:
        """Revoke across every owned ciphertext in ONE sweep request.

        The bulk counterpart of :meth:`push_revocation_updates`: the
        update key and every ledger-derived update information travel in
        a single ``REENCRYPT_SWEEP`` frame, the server re-encrypts
        matching records chunk-by-chunk through its crypto pool (one
        amortized pairing preparation per owner instead of one cold
        pairing per ciphertext), and progress frames stream back through
        ``on_progress``. The ledger is rolled forward for every
        ciphertext the server reports ``updated`` *or*
        ``already-current`` (a retried sweep may find some records
        already swept). Returns the server's summary dict.
        """
        from repro.core.revocation import strip_uk2

        server_key = update_key if include_uk2 else strip_uk2(update_key)
        eligible = [
            ciphertext_id
            for ciphertext_id in self.core.records_involving(update_key.aid)
            if self.core.record(ciphertext_id).versions[update_key.aid]
            == update_key.from_version  # skip already-past (defensive)
        ]
        ui_raws = []
        # Bulk UI computation: the whole sweep's exponentiations share
        # batched inversions (see DataOwner.update_infos_for_records).
        for update_info in self.core.update_infos_for_records(
            eligible, update_key
        ):
            self.connection.meter_send("update-info", update_info)
            ui_raws.append(encode_update_info(update_info))
        sent_ids = set(eligible)
        summary = {"requested": 0, "records": 0, "updated": [],
                   "already_current": [], "missing": [], "errors": {}}
        if ui_raws:
            self.connection.meter_send("update-key", server_key)
            body = protocol.pack_parts(
                protocol.encode_json({"n": len(ui_raws)}),
                encode_update_key(self.group, server_key),
                *ui_raws,
            )
            reply = await self.connection.request_stream(
                MessageType.REENCRYPT_SWEEP, body,
                final=MessageType.SWEEP_DONE,
                progress=MessageType.SWEEP_PROGRESS,
                on_progress=on_progress,
            )
            summary = protocol.decode_json(reply)
            swept = list(summary.get("updated", ())) + list(
                summary.get("already_current", ())
            )
            for ciphertext_id in swept:
                if (ciphertext_id in sent_ids
                        and self.core.record(ciphertext_id).versions.get(
                            update_key.aid) == update_key.from_version):
                    self.core.note_reencrypted(ciphertext_id, update_key)
        if self.core.authority_version(update_key.aid) \
                == update_key.from_version:
            self.core.apply_update_key(update_key)
        return summary


class UserClient(BaseClient):
    """The data-consumer role against a live server (cf. ``UserEntity``)."""

    #: Bound on cached :class:`DecryptionSession` instances (one per
    #: (owner, policy shape) pair this user actually reads under).
    MAX_DECRYPT_SESSIONS = 32

    def __init__(self, connection: ServiceConnection, uid: str):
        super().__init__(connection)
        self.uid = uid
        self.public_key = None
        self._secret_keys = {}  # owner id -> {aid -> UserSecretKey}
        # (owner id, policy source, lsss method) -> DecryptionSession.
        # Entries are freshness-checked against the live key bundle on
        # every hit (DecryptionSession.matches), so a revocation-driven
        # key roll transparently rebuilds instead of serving stale math.
        self._decrypt_sessions = OrderedDict()
        self._retrieval_keys = {}  # owner id -> RetrievalKey (private z)

    def receive_public_key(self, public_key: UserPublicKey) -> None:
        if public_key.uid != self.uid:
            raise SchemeError("received a public key for a different UID")
        self.public_key = public_key

    def receive_secret_key(self, secret_key) -> None:
        if secret_key.uid != self.uid:
            raise SchemeError("received a secret key for a different UID")
        self._secret_keys.setdefault(secret_key.owner_id, {})[
            secret_key.aid
        ] = secret_key

    def secret_keys_for(self, owner_id: str) -> dict:
        return dict(self._secret_keys.get(owner_id, {}))

    def has_keys_from(self, aid: str) -> bool:
        return any(aid in keys for keys in self._secret_keys.values())

    def apply_update_key(self, update_key: UpdateKey) -> None:
        """Roll every matching key forward (non-revoked user path)."""
        for owner_id, keys in self._secret_keys.items():
            key = keys.get(update_key.aid)
            if key is not None and key.version == update_key.from_version:
                if owner_id in update_key.uk1:
                    keys[update_key.aid] = apply_update_key(key, update_key)

    def drop_keys(self, aid: str, owner_id: str) -> None:
        self._secret_keys.get(owner_id, {}).pop(aid, None)

    def _keys_for_owner(self, owner_id: str) -> dict:
        keys = self._secret_keys.get(owner_id)
        if not keys:
            raise AuthorizationError(
                f"user {self.uid!r} holds no keys scoped to owner "
                f"{owner_id!r}"
            )
        return keys

    def decryption_session_for(self, abe_ciphertext) -> DecryptionSession:
        """The cached :class:`DecryptionSession` for a ciphertext's shape.

        One session per (owner, policy source, LSSS method) this user
        reads under: repeat reads of records sharing a policy reuse the
        parsed reconstruction coefficients, the combined key products,
        and every prepared Miller loop. A hit whose key bundle has
        rolled (revocation) rebuilds transparently — the cache can
        serve stale *speed*, never stale *keys*.
        """
        keys = self._keys_for_owner(abe_ciphertext.owner_id)
        matrix = abe_ciphertext.matrix
        cache_key = (abe_ciphertext.owner_id, str(matrix.policy),
                     matrix.method)
        session = self._decrypt_sessions.get(cache_key)
        if session is not None:
            if session.matches(self.public_key, keys):
                self._decrypt_sessions.move_to_end(cache_key)
                self.connection.meter.bump("decrypt.session.hit")
                return session
            del self._decrypt_sessions[cache_key]
            self.connection.meter.bump("decrypt.session.evict")
        self.connection.meter.bump("decrypt.session.miss")
        session = DecryptionSession(
            self.group, abe_ciphertext, self.public_key, keys,
            meter=self.connection.meter,
        )
        self._decrypt_sessions[cache_key] = session
        while len(self._decrypt_sessions) > self.MAX_DECRYPT_SESSIONS:
            self._decrypt_sessions.popitem(last=False)
            self.connection.meter.bump("decrypt.session.evict")
        return session

    def decrypt_component(self, component: StoredComponent) -> bytes:
        """Decrypt one downloaded component through the session cache."""
        abe_ciphertext = component.abe_ciphertext
        session = self.decryption_session_for(abe_ciphertext)
        blinded = session.decrypt(abe_ciphertext)
        return open_sealed(
            blinded, abe_ciphertext.ciphertext_id, component.data_ciphertext
        )

    async def read(self, record_id: str, component_name: str) -> bytes:
        """Download one component and decrypt it end-to-end."""
        component = await self._fetch_component(record_id, component_name)
        return self.decrypt_component(component)

    async def read_many(self, items) -> list:
        """Batch read: pipelined downloads, batched session decrypts.

        ``items`` is a sequence of ``(record_id, component_name)``
        pairs. Downloads share the connection's pipeline window;
        decryption groups the components by policy shape so every group
        rides one :meth:`DecryptionSession.decrypt_many` call (one
        batched final exponentiation, one batch inversion) instead of
        N cold decrypts.
        """
        items = list(items)
        if self.connection.pipelined:
            components = await asyncio.gather(*(
                self._fetch_component(record_id, component_name)
                for record_id, component_name in items
            ))
        else:
            # A non-pipelined connection admits one in-flight exchange;
            # concurrent fetches would race on the reply stream.
            components = [
                await self._fetch_component(record_id, component_name)
                for record_id, component_name in items
            ]
        groups = OrderedDict()  # id(session) -> (session, [slot indices])
        sessions = []
        for index, component in enumerate(components):
            session = self.decryption_session_for(component.abe_ciphertext)
            sessions.append(session)
            groups.setdefault(id(session), (session, []))[1].append(index)
        plaintexts = [None] * len(items)
        for session, slots in groups.values():
            blinded = session.decrypt_many(
                [components[index].abe_ciphertext for index in slots]
            )
            for index, value in zip(slots, blinded):
                component = components[index]
                plaintexts[index] = open_sealed(
                    value, component.abe_ciphertext.ciphertext_id,
                    component.data_ciphertext,
                )
        return plaintexts

    async def put_transform_key(self, transform_key) -> None:
        """Upload one already-minted blinded bundle to this server."""
        self.connection.meter_send("transform-key", transform_key)
        await self.connection.request(
            MessageType.PUT_TRANSFORM_KEY,
            protocol.pack_parts(
                protocol.encode_json({"uid": self.uid}),
                encode_transform_key(transform_key),
            ),
            expect=MessageType.OK,
        )

    async def register_transform_key(self, owner_id: str) -> None:
        """Mint and upload the outsourcing token for one owner's data.

        The private ``z`` (the :class:`~repro.core.outsourcing.
        RetrievalKey`) never leaves this client; the server receives
        only the blinded bundle. Re-registering after a key roll simply
        overwrites the server's (uid, owner) slot.
        """
        keys = self._keys_for_owner(owner_id)
        transform_key, retrieval_key = make_transform_key(
            self.group, self.public_key, keys
        )
        await self.put_transform_key(transform_key)
        self._retrieval_keys[owner_id] = retrieval_key

    async def read_outsourced(self, record_id: str,
                              component_name: str) -> bytes:
        """Read via server-side transform: zero pairings on this client.

        Requires a prior :meth:`register_transform_key` for the
        record's owner. The server applies every pairing of Eq. (1)
        under the blinded key and returns ``(C, partial, sealed data)``;
        finalization here is one GT exponentiation plus the AEAD open.
        """
        self.connection.meter_send(
            "read-request", f"{record_id}/{component_name}"
        )
        _, body = await self.connection.request(
            MessageType.TRANSFORM_FETCH,
            protocol.encode_json({
                "record": record_id,
                "component": component_name,
                "uid": self.uid,
            }),
            expect=MessageType.TRANSFORMED,
        )
        header_raw, c_raw, partial_raw, data_raw = protocol.unpack_parts(
            body, 4
        )
        header = protocol.decode_json(header_raw)
        owner_id = protocol.json_str(header, "owner")
        ciphertext_id = protocol.json_str(header, "id")
        retrieval_key = self._retrieval_keys.get(owner_id)
        if retrieval_key is None:
            raise AuthorizationError(
                f"no retrieval key for owner {owner_id!r}; call "
                "register_transform_key first"
            )
        # The partial came from an untrusted transform; subgroup-check
        # both GT elements before exponentiating (the AEAD MAC below is
        # the integrity gate, this is the don't-run-on-garbage gate).
        c = self.group.decode_gt(c_raw)
        partial = self.group.decode_gt(partial_raw)
        data_ciphertext = SymmetricCiphertext.from_bytes(data_raw)
        self.connection.meter_receive(
            "transformed-download", [c, partial, data_raw]
        )
        blinded = user_finalize_value(c, partial, retrieval_key)
        return open_sealed(blinded, ciphertext_id, data_ciphertext)


class AuthorityClient(BaseClient):
    """An attribute authority publishing into the server's key directory."""

    def __init__(self, connection: ServiceConnection,
                 core: AttributeAuthority):
        super().__init__(connection)
        self.core = core

    @property
    def aid(self) -> str:
        return self.core.aid

    async def publish_keys(self) -> None:
        """Push this AA's current public key material to the server."""
        apk = self.core.authority_public_key()
        pak = self.core.public_attribute_keys()
        self.connection.meter_send("authority-public-key", apk)
        self.connection.meter_send("public-attribute-keys", pak)
        await self.connection.request(
            MessageType.PUT_AUTHORITY_KEYS,
            protocol.pack_parts(
                protocol.encode_json({"aid": self.aid}),
                encode_authority_public_key(apk),
                encode_public_attribute_keys(pak),
            ),
            expect=MessageType.OK,
        )

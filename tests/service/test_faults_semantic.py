"""Semantic fault injection: withhold, reorder, type schedules,
partitions and replayable traces.

These are the ChaosProxy capabilities the adversarial scenarios lean
on: faults aimed at *frame types* (the first two SWEEP_PROGRESS frames,
the final SWEEP_DONE) rather than global frame indices, silence instead
of errors, connection-severing partitions that heal, and fault traces
that replay a run's exact injections with zeroed dice.
"""

import random

import pytest

from repro.core.revocation import rekey_standard
from repro.errors import TransportError
from repro.service.client import BaseClient, OwnerClient
from repro.service.faults import ChaosProxy, FaultSpec
from repro.service.protocol import MessageType
from repro.service.retry import RetryPolicy

from .conftest import Scenario, run, start_service
from .test_faults import make_connection, quick_retry


async def _owner_through_proxy(group, scenario, proxy, *, retry,
                               timeout=2.0):
    connection = make_connection(group, proxy.host, proxy.port,
                                 role="owner", name="owner:alice",
                                 retry=retry, timeout=timeout)
    return OwnerClient(await connection.connect(), scenario.owner_core)


def _populate(scenario, count=4):
    return [
        scenario.make_record(f"rec-{index}",
                             {"note": (b"body", "hospital:doctor")})
        for index in range(count)
    ]


def test_withheld_reply_is_silence_not_an_error(group, store_root):
    async def scenario_run():
        service = await start_service(group, store_root)
        # Swallow the first PONG: the connection stays up, the client
        # hears nothing and must time out (then recover by retry).
        proxy = ChaosProxy(service.host, service.port,
                           type_schedule={MessageType.PONG: ["withhold"]})
        await proxy.start()
        connection = make_connection(group, proxy.host, proxy.port,
                                     retry=quick_retry(), timeout=0.3)
        client = BaseClient(await connection.connect())
        try:
            assert await client.ping()  # timed out once, retried clean
            assert proxy.fault_counts() == {"withhold": 1}
            assert connection.retry_log.events("retry")
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    run(scenario_run())


def test_type_schedule_targets_semantic_frames_fifo(group, store_root,
                                                    scenario):
    async def scenario_run():
        service = await start_service(group, store_root, sweep_chunk=1)
        # Index-blind, type-aimed: whatever handshake frames precede
        # them, exactly the first two SWEEP_PROGRESS frames are hit.
        proxy = ChaosProxy(
            service.host, service.port,
            type_schedule={
                int(MessageType.SWEEP_PROGRESS): ["withhold", "reorder"],
            },
        )
        await proxy.start()
        owner = await _owner_through_proxy(group, scenario, proxy,
                                           retry=quick_retry())
        try:
            # make_record's encrypt already put the ledger entries the
            # sweep will derive its update information from.
            for record in _populate(scenario):
                await owner.connection.request(
                    MessageType.STORE_RECORD, record.to_bytes(),
                    expect=MessageType.OK,
                )
            update_key = rekey_standard(
                scenario.aa, "bob", ["doctor"]
            ).update_key
            progress = []
            summary = await owner.sweep_revocation(
                update_key, on_progress=progress.append
            )
            swept = set(summary["updated"]) \
                | set(summary["already_current"])
            assert len(swept) == 4 and not summary["errors"]
            injected = [entry["fault"] for entry in proxy.injected]
            assert injected == ["withhold", "reorder"]
            assert all(entry["frame_type"]
                       == int(MessageType.SWEEP_PROGRESS)
                       for entry in proxy.injected)
            # One progress frame swallowed, the rest arrived (order
            # scrambled by the reorder, but none lost beyond it).
            assert 1 <= len(progress) < 4
        finally:
            await owner.close()
            await proxy.stop()
            await service.stop()

    run(scenario_run())


def test_partition_severs_and_heal_restores(group, store_root):
    async def scenario_run():
        service = await start_service(group, store_root)
        proxy = ChaosProxy(service.host, service.port)
        await proxy.start()
        connection = make_connection(group, proxy.host, proxy.port,
                                     timeout=0.5)
        client = BaseClient(await connection.connect())
        try:
            assert await client.ping()
            proxy.partition()
            # Without a retry layer the severed socket surfaces raw
            # (reset/EOF); with one it would become a TransportError.
            with pytest.raises((TransportError, OSError, EOFError)):
                await client.ping()
            # The upstream node itself never died — only the path.
            direct = make_connection(group, service.host, service.port)
            direct_client = BaseClient(await direct.connect())
            assert await direct_client.ping()
            await direct_client.close()
            proxy.heal()
            healed = make_connection(group, proxy.host, proxy.port,
                                     timeout=0.5)
            healed_client = BaseClient(await healed.connect())
            assert await healed_client.ping()
            await healed_client.close()
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    run(scenario_run())


def test_trace_replays_the_exact_fault_schedule(group, tmp_path):
    """Record a seeded chaotic run, then replay its trace: the replay
    must inject the same faults at the same frames without dice."""

    async def one_run(root, proxy):
        service = await start_service(group, root)
        proxy.upstream_port = service.port
        proxy.upstream_host = service.host
        await proxy.start()
        connection = make_connection(group, proxy.host, proxy.port,
                                     retry=quick_retry(), timeout=0.3)
        client = BaseClient(await connection.connect())
        try:
            for _ in range(6):
                assert await client.ping()
            assert await client.list_records() == []
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()
        return proxy.injected

    async def scenario_run():
        recorded = ChaosProxy("127.0.0.1", 0,
                              spec=FaultSpec(drop=0.1, truncate=0.1,
                                             duplicate=0.1),
                              seed=1234)
        injected = await one_run(tmp_path / "a", recorded)
        assert injected, "seed 1234 must inject something"
        trace = recorded.trace()
        assert trace["injected"] == injected

        replayer = ChaosProxy.from_trace("127.0.0.1", 0, trace)
        assert sum(replayer.spec.rates().values()) == 0, \
            "replay rolls no new dice"
        replayed = await one_run(tmp_path / "b", replayer)
        key = ("frame", "fault", "frame_type")
        assert [{k: entry[k] for k in key} for entry in replayed] \
            == [{k: entry[k] for k in key} for entry in injected]

    run(scenario_run())


def test_reorder_emits_held_frame_after_its_successor(group, store_root):
    async def scenario_run():
        service = await start_service(group, store_root)
        proxy = ChaosProxy(service.host, service.port,
                           schedule={2: "reorder"})
        await proxy.start()
        # v2 sequence numbers let the client discard the out-of-order
        # stale reply and re-match the right one instead of desyncing.
        connection = make_connection(group, proxy.host, proxy.port,
                                     retry=quick_retry(), timeout=0.3)
        client = BaseClient(await connection.connect())
        try:
            for _ in range(4):
                assert await client.ping()
            assert proxy.fault_counts() == {"reorder": 1}
        finally:
            await client.close()
            await proxy.stop()
            await service.stop()

    run(scenario_run())

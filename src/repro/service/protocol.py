"""The framed wire protocol of the storage service.

Frame layout (everything big-endian)::

    +----------------+-----------+----------------------+
    | length (4 B)   | type (1B) | body (length-1 bytes)|
    +----------------+-----------+----------------------+

``length`` covers the type byte plus the body, so an empty-bodied frame
has ``length == 1``. Frames larger than the receiver's ``max_frame``
are a protocol error. Message *bodies* reuse the byte formats the rest
of the library already defines — :meth:`repro.system.records.
StoredRecord.to_bytes`, :mod:`repro.core.serialize`, … — so the service
adds framing, not a second serialization layer.

A session starts with a version-negotiating ``HELLO``/``HELLO_ACK``
exchange (the client offers its supported protocol versions and its
pairing preset; the server picks the highest common version and
confirms the preset). Failures travel as typed ``ERROR`` frames whose
``code`` maps back to the library's exception hierarchy on the client.

Protocol **version 2** adds the fault-tolerance layer:

* every post-hello frame carries a 4-byte big-endian **sequence
  number** right after the type byte; the server echoes the request's
  sequence number on its reply, so a client can discard late or
  duplicated replies instead of consuming them as the answer to the
  *next* request;
* mutating requests (:data:`MUTATION_TYPES`) wrap their body in an
  **idempotency envelope** — a client-generated key the server uses to
  deduplicate retried mutations, so a retry across a reconnect is
  applied exactly once.

Because every version-2 frame is self-describing — ``(type, seq,
body)`` with the reply echoing its request's seq — the protocol
supports **pipelining** without any wire change: a peer may send many
requests before reading any reply, and replies may arrive in *any*
order (a server running requests concurrently answers cheap ops while
an expensive one is still in flight). Correlation is purely by
sequence number; :data:`SEQ_BROADCAST` marks a reply that answers no
particular request (e.g. an ERROR for an unparseable frame) and is
terminal for every exchange on the connection.

Version 1 peers keep speaking the original unadorned frames, one
request in flight at a time.

The cluster fabric (:mod:`repro.cluster`) adds two version-2 ops:
``RECORD_DIGEST`` asks a node for a record's content digest (optionally
verifying the blob bytes against it on disk), and ``REPAIR_RECORD``
force-puts known-good record bytes over a missing or corrupted replica
copy — the write half of digest-verified read-repair.
"""

from __future__ import annotations

import asyncio
import json
from enum import IntEnum

from repro.errors import (
    AuthorizationError,
    IntegrityError,
    MathError,
    PolicyError,
    PolicyNotSatisfiedError,
    ProtocolError,
    ReproError,
    RevocationError,
    SchemeError,
    StorageError,
    UnavailableError,
)

#: Protocol versions this build can speak, in preference order.
PROTOCOL_VERSIONS = (2, 1)

#: Default upper bound on one frame (type byte + body).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Upper bound on a HELLO/HELLO_ACK frame: negotiation happens before
#: any per-session state exists, so the handshake never needs (or gets)
#: the full frame budget.
HELLO_MAX_BYTES = 4096

_HEADER_LEN = 4
_SEQ_LEN = 4

#: v2 sentinel sequence number for replies that answer no particular
#: request (e.g. an ERROR for a frame the server could not even parse);
#: clients accept it for whatever exchange is in flight.
SEQ_BROADCAST = 0xFFFFFFFF


class MessageType(IntEnum):
    """The type byte of every frame."""

    HELLO = 0x01
    HELLO_ACK = 0x02
    OK = 0x03
    ERROR = 0x04
    PING = 0x05
    PONG = 0x06
    HEALTH = 0x07
    HEALTH_REPLY = 0x08

    STORE_RECORD = 0x10
    FETCH_RECORD = 0x11
    RECORD = 0x12
    FETCH_COMPONENT = 0x13
    COMPONENT = 0x14
    LIST_RECORDS = 0x15
    RECORD_IDS = 0x16
    DELETE_RECORD = 0x17
    REPLACE_COMPONENT = 0x18
    RECORD_DIGEST = 0x19
    RECORD_DIGEST_REPLY = 0x1A
    REPAIR_RECORD = 0x1B

    PUT_AUTHORITY_KEYS = 0x20
    GET_AUTHORITY_KEYS = 0x21
    AUTHORITY_KEYS = 0x22

    REENCRYPT = 0x30
    REENCRYPT_SWEEP = 0x31
    SWEEP_PROGRESS = 0x32
    SWEEP_DONE = 0x33

    STATS = 0x40
    STATS_REPLY = 0x41

    # Server-side transform offload (outsourced decryption). The
    # transform-key registry is an in-memory cache — registering a key
    # is a naturally idempotent overwrite that works on read-only
    # servers, so PUT_TRANSFORM_KEY is neither a MUTATION_TYPE nor a
    # WRITE_TYPE.
    PUT_TRANSFORM_KEY = 0x50
    TRANSFORM_FETCH = 0x51
    TRANSFORMED = 0x52


#: Requests that change server state *and* carry a version-2
#: idempotency envelope, so a retry across a reconnect is applied
#: exactly once.
MUTATION_TYPES = frozenset({
    MessageType.STORE_RECORD,
    MessageType.DELETE_RECORD,
    MessageType.REPLACE_COMPONENT,
    MessageType.REPAIR_RECORD,
    MessageType.REENCRYPT,
    MessageType.REENCRYPT_SWEEP,
})

#: Everything that writes to the store (gated by read-only mode).
#: PUT_AUTHORITY_KEYS is a naturally idempotent overwrite, so it is
#: write-gated but needs no dedup envelope.
WRITE_TYPES = MUTATION_TYPES | {MessageType.PUT_AUTHORITY_KEYS}


# -- error frames -------------------------------------------------------------

# code string <-> exception class; PROTOCOL's ProtocolError is the
# fallback for codes minted by a newer peer.
_ERROR_CODES = {
    "storage": StorageError,
    "unavailable": UnavailableError,
    "scheme": SchemeError,
    "revocation": RevocationError,
    "authorization": AuthorizationError,
    "policy": PolicyError,
    "policy-not-satisfied": PolicyNotSatisfiedError,
    "integrity": IntegrityError,
    "math": MathError,
    "protocol": ProtocolError,
}
_CODE_FOR_EXCEPTION = [
    (RevocationError, "revocation"),          # before SchemeError (subclass)
    (PolicyNotSatisfiedError, "policy-not-satisfied"),
    (UnavailableError, "unavailable"),        # before StorageError (subclass)
    (StorageError, "storage"),
    (SchemeError, "scheme"),
    (AuthorizationError, "authorization"),
    (PolicyError, "policy"),
    (IntegrityError, "integrity"),
    (MathError, "math"),
    (ProtocolError, "protocol"),
]


def code_for_exception(exc: ReproError) -> str:
    for cls, code in _CODE_FOR_EXCEPTION:
        if isinstance(exc, cls):
            return code
    return "protocol"


def encode_error(exc: ReproError) -> bytes:
    """The ERROR frame body for a library exception."""
    return encode_json({"code": code_for_exception(exc), "message": str(exc)})


def raise_error(body: bytes):
    """Decode an ERROR frame body and raise the matching exception."""
    payload = decode_json(body)
    code = payload.get("code")
    message = payload.get("message", "")
    if not isinstance(message, str):
        message = repr(message)
    raise _ERROR_CODES.get(code, ProtocolError)(message)


# -- body helpers -------------------------------------------------------------

def encode_json(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )


def decode_json(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame body is not valid JSON") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame body is not a JSON object")
    return obj


def json_str(obj: dict, key: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str):
        raise ProtocolError(f"frame field {key!r} missing or not a string")
    return value


def pack_parts(*parts: bytes) -> bytes:
    """Concatenate byte strings with 4-byte length prefixes."""
    return b"".join(
        len(part).to_bytes(4, "big") + part for part in parts
    )


def unpack_parts(body: bytes, count: int) -> list:
    """Split a :func:`pack_parts` body back into exactly ``count`` parts."""
    parts = []
    offset = 0
    for _ in range(count):
        if offset + 4 > len(body):
            raise ProtocolError("truncated multi-part frame body")
        length = int.from_bytes(body[offset:offset + 4], "big")
        offset += 4
        if length > len(body) - offset:
            raise ProtocolError("truncated multi-part frame body")
        parts.append(body[offset:offset + length])
        offset += length
    if offset != len(body):
        raise ProtocolError("trailing bytes after multi-part frame body")
    return parts


def unpack_all_parts(body: bytes, max_parts: int = 1 << 20) -> list:
    """Split a :func:`pack_parts` body of *unknown* part count.

    The bulk-sweep request carries one update information per targeted
    ciphertext, so its part count is data-dependent; every other
    multi-part body keeps using the exact-count :func:`unpack_parts`.
    """
    parts = []
    offset = 0
    while offset < len(body):
        if offset + 4 > len(body):
            raise ProtocolError("truncated multi-part frame body")
        length = int.from_bytes(body[offset:offset + 4], "big")
        offset += 4
        if length > len(body) - offset:
            raise ProtocolError("truncated multi-part frame body")
        parts.append(body[offset:offset + length])
        offset += length
        if len(parts) > max_parts:
            raise ProtocolError("multi-part frame body has too many parts")
    return parts


# -- idempotency envelope (protocol version 2) --------------------------------

def wrap_idempotency(key: str, body: bytes) -> bytes:
    """Prefix a mutating request body with its idempotency key."""
    return pack_parts(key.encode("utf-8"), body)


def unwrap_idempotency(body: bytes) -> tuple:
    """``(key, inner body)`` of an idempotency-wrapped request."""
    key_raw, inner = unpack_parts(body, 2)
    try:
        key = key_raw.decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("idempotency key is not valid UTF-8") from None
    if not key or len(key) > 200:
        raise ProtocolError("idempotency key is empty or oversized")
    return key, inner


# -- framing ------------------------------------------------------------------

def encode_frame(msg_type: int, body: bytes = b"", seq: int = None) -> bytes:
    """One wire frame: length prefix, type byte, [v2 seq], body."""
    seq_raw = b"" if seq is None else (seq & 0xFFFFFFFF).to_bytes(
        _SEQ_LEN, "big"
    )
    length = 1 + len(seq_raw) + len(body)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the maximum")
    return (length.to_bytes(_HEADER_LEN, "big") + bytes([msg_type])
            + seq_raw + body)


def decode_frame_type(type_byte: int) -> MessageType:
    try:
        return MessageType(type_byte)
    except ValueError:
        raise ProtocolError(f"unknown frame type 0x{type_byte:02x}") from None


async def _read_payload(reader: asyncio.StreamReader, max_frame: int,
                        drain_oversized: bool) -> bytes:
    header = await reader.readexactly(_HEADER_LEN)
    length = int.from_bytes(header, "big")
    if length < 1:
        raise ProtocolError("frame length must cover the type byte")
    if length > max_frame:
        if drain_oversized:
            # Consume the declared payload so the typed ERROR reply is
            # not torn down by a kernel reset over unread bytes.
            remaining = length
            while remaining > 0:
                chunk = await reader.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte maximum"
        )
    return await reader.readexactly(length)


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME_BYTES, *,
                     drain_oversized: bool = False) -> tuple:
    """Read one ``(MessageType, body)`` frame from a stream.

    Raises :class:`ProtocolError` on malformed/oversized frames and
    :class:`asyncio.IncompleteReadError` when the peer disconnects
    mid-frame (callers treat that as a dropped connection, not an
    application error). With ``drain_oversized`` an oversized payload is
    read and discarded before raising, so an ERROR reply can still be
    delivered.
    """
    payload = await _read_payload(reader, max_frame, drain_oversized)
    return decode_frame_type(payload[0]), payload[1:]


async def read_seq_frame(reader: asyncio.StreamReader,
                         max_frame: int = MAX_FRAME_BYTES) -> tuple:
    """Read one v2 ``(MessageType, seq, body)`` frame from a stream."""
    payload = await _read_payload(reader, max_frame, False)
    msg_type = decode_frame_type(payload[0])
    if len(payload) < 1 + _SEQ_LEN:
        raise ProtocolError("v2 frame is too short for a sequence number")
    seq = int.from_bytes(payload[1:1 + _SEQ_LEN], "big")
    return msg_type, seq, payload[1 + _SEQ_LEN:]


async def write_frame(writer: asyncio.StreamWriter, msg_type: int,
                      body: bytes = b"", seq: int = None) -> int:
    """Write one frame and drain; returns the raw bytes put on the wire."""
    frame = encode_frame(msg_type, body, seq)
    writer.write(frame)
    await writer.drain()
    return len(frame)


# -- hello negotiation --------------------------------------------------------

def hello_body(preset: str, role: str, name: str,
               versions=PROTOCOL_VERSIONS) -> bytes:
    return encode_json({
        "versions": list(versions),
        "preset": preset,
        "role": role,
        "name": name,
    })


def negotiate(hello: dict, server_preset: str,
              supported=PROTOCOL_VERSIONS) -> int:
    """Server-side version/preset negotiation; returns the chosen version."""
    offered = hello.get("versions")
    if not isinstance(offered, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in offered
    ):
        raise ProtocolError("hello offers no valid protocol versions")
    common = sorted(set(offered) & set(supported))
    if not common:
        raise ProtocolError(
            f"no common protocol version (client offers {sorted(offered)}, "
            f"server speaks {sorted(supported)})"
        )
    preset = json_str(hello, "preset")
    if preset != server_preset:
        raise ProtocolError(
            f"pairing preset mismatch: client uses {preset!r}, "
            f"server uses {server_preset!r}"
        )
    return common[-1]

"""Cross-node exactly-once: a replicated mutation retried through chaos
is deduplicated per node, and reads outlive the node that served them."""

from repro.service.faults import ChaosProxy

from .conftest import make_cluster, run, start_fleet, stop_fleet


def test_replicated_store_retried_through_chaos_applies_once(
        group, scenario, tmp_path):
    """Drop the OK frame of node-0's STORE_RECORD after the node applied
    it: the cluster client's retry (fresh connection to that node, same
    per-node idempotency key) must be answered from node-0's dedup table
    — one record, one ack, never 'already exists' — while the other
    replica's write is untouched."""
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        # Chaos in front of node-0 only; frame 0 is the HELLO reply, so
        # frame 1 is the first request's reply — the STORE_RECORD OK.
        proxy = ChaosProxy(services["node-0"].host, services["node-0"].port,
                           schedule={1: "drop"})
        await proxy.start()
        cluster_map.with_address("node-0", proxy.host, proxy.port)
        cluster = make_cluster(group, cluster_map, max_attempts=4)
        try:
            record_id = next(
                f"rec-{index}" for index in range(100)
                if "node-0" in {node.name for node
                                in cluster_map.replicas_for(f"rec-{index}")}
            )
            result = await cluster.store_record(
                scenario.make_record(record_id)
            )
            assert "node-0" in result["acks"] and not result["failed"]
            assert [fault["fault"] for fault in proxy.injected] == ["drop"]
            assert services["node-0"].dedup.hits == 1  # replay, not re-apply
            assert services["node-0"].store.record_ids() == [record_id]
            retries = cluster.retry_log.events("retry")
            assert [entry["request"] for entry in retries] \
                == ["STORE_RECORD"]
        finally:
            await cluster.close()
            await proxy.stop()
            await stop_fleet(services)

    run(flow())


def test_kill_primary_then_fetch_from_surviving_replica(
        group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        try:
            record = scenario.make_record("rec-kill")
            await cluster.store_record(record)
            replicas = [node.name
                        for node in cluster_map.replicas_for("rec-kill")]
            await services[replicas[0]].stop()
            fetched = await cluster.fetch_record("rec-kill")
            assert sorted(fetched.components) == sorted(record.components)
            assert cluster.meter.counter(f"cluster.read.{replicas[1]}") == 1
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())

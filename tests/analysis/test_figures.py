"""Tests for the programmatic figure generator."""

import pytest

from repro.analysis.figures import FIGURES, figure_series, render_ascii
from repro.ec.params import TOY80


@pytest.fixture(scope="module")
def series_3a():
    return figure_series("3a", TOY80, [1, 2, 3], seed=5)


class TestFigureSeries:
    def test_point_structure(self, series_3a):
        assert [point.x for point in series_3a.points] == [1, 2, 3]
        for point in series_3a.points:
            assert point.ours_seconds > 0
            assert point.lewko_seconds > 0

    def test_encryption_monotone_in_size(self, series_3a):
        times = [point.ours_seconds for point in series_3a.points]
        assert times[0] < times[-1]

    def test_ours_wins_encryption(self, series_3a):
        """The Fig 3(a) headline: our encryption is cheaper throughout."""
        for point in series_3a.points:
            assert point.ours_seconds < point.lewko_seconds, point

    def test_decrypt_figure_runs(self):
        series = figure_series("3b", TOY80, [1, 2], seed=5)
        assert len(series.points) == 2
        assert series.title.startswith("Fig 3(b)")

    def test_decrypt_figure_carries_session_series(self):
        series = figure_series("3b", TOY80, [1, 2], seed=5)
        assert series.has_session
        for point in series.points:
            assert point.session_seconds > 0
        csv = series.to_csv()
        assert csv.splitlines()[0].endswith(",session_seconds")
        assert "session" in render_ascii(series)

    def test_encrypt_figure_has_no_session_series(self, series_3a):
        assert not series_3a.has_session
        for point in series_3a.points:
            assert point.session_seconds is None

    def test_attribute_axis(self):
        series = figure_series("4a", TOY80, [1], seed=5)
        assert series.x_label == "attrs_per_authority"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            figure_series("5c", TOY80, [1])

    def test_all_figures_registered(self):
        assert set(FIGURES) == {"3a", "3b", "4a", "4b"}


class TestOutputs:
    def test_csv(self, series_3a):
        csv = series_3a.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "n_authorities,ours_seconds,lewko_seconds"
        assert len(lines) == 4

    def test_ascii(self, series_3a):
        chart = render_ascii(series_3a)
        assert "Fig 3(a)" in chart
        assert "ours" in chart and "lewko" in chart
        assert "|o" in chart and "|L" in chart


class TestScript:
    def test_generate_figures_script(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        script = (
            pathlib.Path(__file__).parents[2] / "benchmarks"
            / "generate_figures.py"
        )
        spec = importlib.util.spec_from_file_location("genfig", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # Patch the sweep down to stay fast: use TOY80 and tiny sweep by
        # monkeypatching figure_series input through argv.
        code = module.main(
            ["--preset", "TOY80", "--out", str(tmp_path)]
        )
        assert code == 0
        for figure_id in ("3a", "3b", "4a", "4b"):
            assert (tmp_path / f"fig{figure_id}.csv").exists()

"""Fleet-wide revocation: partial failure holds the epoch, the rerun is
the resume, and every replica lands byte-identical."""

from repro.cluster import ClusterOwner
from repro.core.revocation import rekey_standard

from .conftest import make_cluster, run, start_fleet, stop_fleet
from tests.service.conftest import start_service


def test_partial_sweep_holds_epoch_then_resume_converges(
        group, scenario, tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map, max_attempts=2)
        owner = ClusterOwner(cluster, scenario.owner_core)
        record_ids = [f"rec-{index:03d}" for index in range(5)]
        ciphertext_ids = [f"{record_id}/note" for record_id in record_ids]
        try:
            for record_id in record_ids:
                await owner.upload(record_id, {
                    "note": (f"body {record_id}".encode("utf-8"),
                             "hospital:doctor"),
                })
            update_key = rekey_standard(scenario.aa, "bob",
                                        ["doctor"]).update_key

            # Kill a node that holds at least one record, then sweep:
            # its ciphertexts must stay pending and the epoch must hold.
            victim = cluster_map.replicas_for(record_ids[0])[0].name
            dead_shard = {
                ciphertext_id for ciphertext_id in ciphertext_ids
                if victim in {
                    node.name for node in cluster_map.replicas_for(
                        ciphertext_id.rsplit("/", 1)[0])
                }
            }
            await services[victim].stop()
            partial = await owner.sweep_revocation(update_key)
            assert partial["eligible"] == 5
            assert set(partial["pending"]) == dead_shard
            assert victim in partial["errors"]
            assert not partial["epoch_rolled"]
            assert scenario.owner_core.authority_version("hospital") \
                == update_key.from_version

            # Restart the victim on its old store (new port), rebind its
            # address, and rerun the *same* sweep: that IS the resume.
            services[victim] = await start_service(
                group, tmp_path / victim, name=victim
            )
            cluster_map.with_address(victim, services[victim].host,
                                     services[victim].port)
            resumed = await owner.sweep_revocation(update_key)
            assert not resumed["pending"] and not resumed["errors"]
            assert set(resumed["converged"]) == dead_shard
            assert resumed["epoch_rolled"]
            assert scenario.owner_core.authority_version("hospital") \
                == update_key.to_version
            # Each pending ciphertext's surviving replica re-encrypted
            # in round one, so in the resume it answers already_current
            # rather than re-applying; only the restarted victim did
            # fresh work.
            already = {
                ciphertext_id
                for summary in resumed["nodes"].values()
                for ciphertext_id in summary.get("already_current", ())
            }
            assert already == dead_shard
            assert set(resumed["nodes"][victim]["updated"]) == dead_shard

            # Every record's replicas are digest-identical at the new
            # version — the sweep sent each node the same UI bytes.
            for record_id in record_ids:
                digests = {
                    services[node.name].store.digest(record_id)
                    for node in cluster_map.replicas_for(record_id)
                }
                assert len(digests) == 1
            for ciphertext_id in ciphertext_ids:
                assert scenario.owner_core.record(ciphertext_id).versions[
                    "hospital"
                ] == update_key.to_version
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())


def test_sweep_with_healthy_fleet_rolls_in_one_pass(group, scenario,
                                                    tmp_path):
    async def flow():
        services, cluster_map = await start_fleet(group, tmp_path)
        cluster = make_cluster(group, cluster_map)
        owner = ClusterOwner(cluster, scenario.owner_core)
        progress = []
        try:
            for index in range(3):
                await owner.upload(f"one-{index}", {
                    "note": (b"swept", "hospital:doctor"),
                })
            update_key = rekey_standard(scenario.aa, "bob",
                                        ["doctor"]).update_key
            summary = await owner.sweep_revocation(
                update_key, on_progress=progress.append
            )
            assert summary["epoch_rolled"] and not summary["pending"]
            assert len(summary["converged"]) == 3
            assert progress and all("node" in frame for frame in progress)
            swept_nodes = {frame["node"] for frame in progress}
            assert swept_nodes == set(summary["nodes"])
        finally:
            await cluster.close()
            await stop_fleet(services)

    run(flow())

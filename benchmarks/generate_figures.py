#!/usr/bin/env python3
"""Regenerate all four paper figures as CSV files + ASCII charts.

Not a pytest module — a standalone script for when you want the figure
*data* rather than pytest-benchmark statistics::

    python benchmarks/generate_figures.py                 # SS512, skeleton sweep
    python benchmarks/generate_figures.py --preset TOY80  # quick look
    python benchmarks/generate_figures.py --full          # every paper point

CSVs land in ``benchmarks/out/fig{3a,3b,4a,4b}.csv``.
"""

import argparse
import pathlib
import sys

from repro.analysis.figures import FIGURES, figure_series, render_ascii
from repro.ec.params import PRESETS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="SS512")
    parser.add_argument("--full", action="store_true",
                        help="sweep 2..20 like the paper (slow)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="output directory (default: benchmarks/out)")
    args = parser.parse_args(argv)

    sweep = list(range(2, 21, 2)) if args.full else [2, 5, 10, 15, 20]
    out_dir = pathlib.Path(
        args.out or pathlib.Path(__file__).parent / "out"
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    preset = PRESETS[args.preset]
    for figure_id in sorted(FIGURES):
        series = figure_series(
            figure_id, preset, sweep, repeats=args.repeats
        )
        path = out_dir / f"fig{figure_id}.csv"
        path.write_text(series.to_csv())
        print(render_ascii(series))
        print(f"  -> {path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

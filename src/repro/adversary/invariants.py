"""Cross-layer state probes behind the scenarios' invariant checks.

Each helper condenses one system-wide property into a ``(ok, detail)``
pair a scenario can feed straight into ``ctx.check``: does the store
serve every ciphertext at the epoch the owner's ledger claims, did all
replicas converge to byte-identical content, is every component past a
revocation boundary. The probes go through the real wire protocol
(fetch/list/digest frames), never through server internals — what they
see is exactly what an auditor outside the trust boundary could see.
"""

from __future__ import annotations


async def server_ciphertext_versions(client, aid: str) -> dict:
    """Every stored ciphertext's version for ``aid``, straight off the
    store: ``ciphertext_id -> version`` (components whose policy does
    not involve ``aid`` are skipped)."""
    versions = {}
    for record_id in await client.list_records():
        record = await client.fetch_record(record_id)
        for component in record.components.values():
            ciphertext = component.abe_ciphertext
            if aid in ciphertext.versions:
                versions[ciphertext.ciphertext_id] = \
                    ciphertext.versions[aid]
    return versions


def ledger_versions(owner_core, aid: str) -> dict:
    """The owner ledger's view: ``ciphertext_id -> version`` for every
    live ledger entry involving ``aid``."""
    return {
        ciphertext_id: owner_core.record(ciphertext_id).versions[aid]
        for ciphertext_id in owner_core.records_involving(aid)
    }


def versions_agree(server_view: dict, ledger_view: dict) -> tuple:
    """Store and ledger must tell the same epoch story, ciphertext by
    ciphertext — a mid-sweep crash or a withheld DONE frame that rolls
    one side without the other shows up here."""
    disagreements = {
        ciphertext_id: (ledger_view[ciphertext_id],
                        server_view.get(ciphertext_id))
        for ciphertext_id in ledger_view
        if server_view.get(ciphertext_id) != ledger_view[ciphertext_id]
    }
    if disagreements:
        return False, f"ledger!=store for {disagreements}"
    return True, f"{len(ledger_view)} ciphertexts agree"


def all_at_version(versions: dict, expected: int) -> tuple:
    """No ciphertext may straddle a revocation epoch."""
    straddlers = {cid: v for cid, v in versions.items() if v != expected}
    if straddlers:
        return False, f"not at v{expected}: {straddlers}"
    return True, f"{len(versions)} ciphertexts at v{expected}"


def replicas_identical(digests: dict) -> tuple:
    """Every reachable replica must serve byte-identical content.

    ``digests`` is :meth:`repro.cluster.client.ClusterClient.
    replica_digests` output — ``node -> {"digest": ...}`` or
    ``node -> {"error": ...}`` for unreachable nodes. Unreachable
    replicas fail the invariant: convergence you cannot observe is not
    convergence.
    """
    errors = {node: view["error"] for node, view in digests.items()
              if "error" in view}
    if errors:
        return False, f"unreachable replicas: {errors}"
    unique = {view.get("digest") for view in digests.values()}
    if len(unique) != 1 or None in unique:
        by_node = {node: view.get("digest") for node, view in
                   digests.items()}
        return False, f"diverged replicas: {by_node}"
    return True, f"{len(digests)} replicas share digest"

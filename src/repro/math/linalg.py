"""Linear algebra over Z_r for a prime modulus r.

The LSSS machinery needs to (a) decide whether the all-ones target vector
``(1, 0, …, 0)`` lies in the span of a set of share-matrix rows and (b)
produce reconstruction coefficients when it does. Both reduce to solving
linear systems modulo the (prime) group order, which this module provides
via straightforward Gaussian elimination.

Matrices are lists of lists of ints; vectors are lists of ints. All
entries are kept reduced modulo ``mod``.
"""

from __future__ import annotations

from repro.errors import MathError
from repro.math.integers import invmod

Matrix = list
Vector = list


def _copy_reduced(matrix: Matrix, mod: int) -> Matrix:
    return [[entry % mod for entry in row] for row in matrix]


def rref(matrix: Matrix, mod: int) -> tuple:
    """Reduced row echelon form of ``matrix`` modulo a prime.

    Returns ``(R, pivots)`` where ``R`` is the RREF and ``pivots`` is the
    list of pivot column indices (one per nonzero row, in order).
    """
    rows = _copy_reduced(matrix, mod)
    if not rows:
        return [], []
    n_rows, n_cols = len(rows), len(rows[0])
    pivots = []
    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        chosen = None
        for i in range(pivot_row, n_rows):
            if rows[i][col] != 0:
                chosen = i
                break
        if chosen is None:
            continue
        rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
        inv = invmod(rows[pivot_row][col], mod)
        rows[pivot_row] = [entry * inv % mod for entry in rows[pivot_row]]
        for i in range(n_rows):
            if i != pivot_row and rows[i][col] != 0:
                factor = rows[i][col]
                rows[i] = [
                    (entry - factor * pivot_entry) % mod
                    for entry, pivot_entry in zip(rows[i], rows[pivot_row])
                ]
        pivots.append(col)
        pivot_row += 1
    return rows, pivots


def rank(matrix: Matrix, mod: int) -> int:
    """Rank of the matrix over Z_mod."""
    _, pivots = rref(matrix, mod)
    return len(pivots)


def solve(matrix: Matrix, rhs: Vector, mod: int):
    """One solution ``x`` of ``matrix · x = rhs (mod mod)``, or ``None``.

    Free variables are set to zero, so the returned solution is the
    canonical one produced by back-substitution from the RREF of the
    augmented system.
    """
    if not matrix:
        return None if any(v % mod for v in rhs) else []
    n_rows, n_cols = len(matrix), len(matrix[0])
    if len(rhs) != n_rows:
        raise MathError("dimension mismatch between matrix and right-hand side")
    augmented = [list(row) + [rhs[i]] for i, row in enumerate(matrix)]
    reduced, pivots = rref(augmented, mod)
    # Inconsistent iff a pivot lands in the augmented column.
    if n_cols in pivots:
        return None
    solution = [0] * n_cols
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index][n_cols]
    return solution


def solve_combination(rows: Matrix, target: Vector, mod: int):
    """Coefficients ``w`` with ``Σ w_i · rows[i] = target (mod mod)``, or None.

    This is the LSSS reconstruction problem: it asks for a linear
    combination of the given *rows* hitting ``target``, i.e. solves the
    transposed system.
    """
    if not rows:
        return None if any(v % mod for v in target) else []
    n_cols = len(rows[0])
    if any(len(row) != n_cols for row in rows):
        raise MathError("rows must all have the same length")
    if len(target) != n_cols:
        raise MathError("target length must match row length")
    transposed = [[rows[i][j] for i in range(len(rows))] for j in range(n_cols)]
    return solve(transposed, target, mod)


def mat_vec(matrix: Matrix, vector: Vector, mod: int) -> Vector:
    """Matrix-vector product modulo ``mod``."""
    if matrix and len(matrix[0]) != len(vector):
        raise MathError("dimension mismatch in matrix-vector product")
    return [sum(row[j] * vector[j] for j in range(len(vector))) % mod for row in matrix]


def dot(u: Vector, v: Vector, mod: int) -> int:
    """Inner product modulo ``mod``."""
    if len(u) != len(v):
        raise MathError("dimension mismatch in dot product")
    return sum(a * b for a, b in zip(u, v)) % mod


def in_span(rows: Matrix, target: Vector, mod: int) -> bool:
    """True iff ``target`` is a Z_mod-linear combination of ``rows``."""
    return solve_combination(rows, target, mod) is not None

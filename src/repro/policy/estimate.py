"""Pre-encryption cost estimation for access policies.

Owners deciding between policy formulations (or threshold methods) can
price them without running any cryptography: row counts and ciphertext
bytes follow directly from the LSSS matrix shape and the element sizes
of the active parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pairing.serialize import ElementSizes
from repro.policy.lsss import lsss_from_policy


@dataclass(frozen=True)
class PolicyEstimate:
    """What encrypting under a policy will cost, before encrypting."""

    policy: str
    threshold_method: str
    lsss_rows: int                 # l: ciphertext components C_i
    lsss_columns: int              # matrix width (shares drawn)
    distinct_attributes: int
    involved_authorities: int
    rho_injective: bool
    ciphertext_bytes: int          # |GT| + (l+1)·|G|
    encrypt_g1_exponentiations: int
    encrypt_gt_exponentiations: int


def estimate_policy(policy, sizes: ElementSizes,
                    threshold_method: str = "expand") -> PolicyEstimate:
    """Price a policy under the reproduced scheme's ciphertext layout."""
    matrix = lsss_from_policy(policy, threshold_method=threshold_method)
    labels = matrix.row_labels
    authorities = {label.split(":", 1)[0] for label in labels if ":" in label}
    rows = matrix.n_rows
    return PolicyEstimate(
        policy=str(matrix.policy),
        threshold_method=threshold_method,
        lsss_rows=rows,
        lsss_columns=matrix.n_cols,
        distinct_attributes=len(set(labels)),
        involved_authorities=len(authorities),
        rho_injective=matrix.is_injective(),
        ciphertext_bytes=sizes.of(n_g1=rows + 1, n_gt=1),
        encrypt_g1_exponentiations=1 + 2 * rows,
        encrypt_gt_exponentiations=1,
    )


def cheapest_threshold_method(policy, sizes: ElementSizes) -> PolicyEstimate:
    """The better of expand/insert for this policy (fewest rows wins;
    ties go to expand, the paper-faithful construction)."""
    expand = estimate_policy(policy, sizes, threshold_method="expand")
    insert = estimate_policy(policy, sizes, threshold_method="insert")
    return insert if insert.lsss_rows < expand.lsss_rows else expand

"""The on-server data format of the paper's Fig. 2.

A record is a sequence of data components, each stored as the pair
``(CT_i, E_{k_i}(m_i))``: the CP-ABE ciphertext of the component's
content key next to the symmetrically-encrypted component body. Users
with different attributes decrypt different subsets of the content keys
and therefore see different granularities of the data — the
fine-grained-access story of Section V-A.

The content key never exists as raw bytes inside a group element:
the owner encrypts a random GT *session element* with CP-ABE and both
sides derive ``k_i = KDF(session)`` (KEM/DEM). This is the standard way
to instantiate "the message m is the content keys" with a group-element
message space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ciphertext import Ciphertext
from repro.crypto.symmetric import SymmetricCiphertext
from repro.errors import StorageError
from repro.pairing.group import PairingGroup


@dataclass(frozen=True)
class StoredComponent:
    """One ``(CT_i, E_{k_i}(m_i))`` pair of Fig. 2."""

    name: str
    abe_ciphertext: Ciphertext
    data_ciphertext: SymmetricCiphertext

    def payload_size_bytes(self, group: PairingGroup) -> int:
        return self.abe_ciphertext.element_size_bytes(group) + len(
            self.data_ciphertext
        )

    def to_bytes(self) -> bytes:
        """length-prefixed: name | ABE ciphertext | symmetric body."""
        name = self.name.encode("utf-8")
        abe = self.abe_ciphertext.to_bytes()
        data = self.data_ciphertext.to_bytes()
        return b"".join(
            len(part).to_bytes(4, "big") + part for part in (name, abe, data)
        )

    @classmethod
    def from_bytes(cls, group: PairingGroup, blob: bytes, *,
                   validate: bool = True) -> "StoredComponent":
        parts = []
        offset = 0
        for _ in range(3):
            if offset + 4 > len(blob):
                raise StorageError("truncated stored component")
            length = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 4
            if offset + length > len(blob):
                raise StorageError("truncated stored component")
            parts.append(blob[offset:offset + length])
            offset += length
        if offset != len(blob):
            raise StorageError("trailing bytes after stored component")
        name, abe, data = parts
        return cls(
            name=name.decode("utf-8"),
            abe_ciphertext=Ciphertext.from_bytes(group, abe,
                                                 validate=validate),
            data_ciphertext=SymmetricCiphertext.from_bytes(data),
        )


@dataclass(frozen=True)
class StoredRecord:
    """A full record: ordered components keyed by logical name."""

    record_id: str
    owner_id: str
    components: dict  # name -> StoredComponent

    def component(self, name: str) -> StoredComponent:
        try:
            return self.components[name]
        except KeyError:
            raise StorageError(
                f"record {self.record_id!r} has no component {name!r}"
            ) from None

    def component_names(self) -> tuple:
        return tuple(self.components)

    def payload_size_bytes(self, group: PairingGroup) -> int:
        return sum(
            component.payload_size_bytes(group)
            for component in self.components.values()
        )

    def with_component(self, component: StoredComponent) -> "StoredRecord":
        """A copy with one component replaced (used by re-encryption)."""
        if component.name not in self.components:
            raise StorageError(
                f"record {self.record_id!r} has no component {component.name!r}"
            )
        updated = dict(self.components)
        updated[component.name] = component
        return StoredRecord(
            record_id=self.record_id,
            owner_id=self.owner_id,
            components=updated,
        )

    def to_bytes(self) -> bytes:
        """Durable on-disk form: ids then length-prefixed components."""
        record_id = self.record_id.encode("utf-8")
        owner_id = self.owner_id.encode("utf-8")
        blob = (
            len(record_id).to_bytes(4, "big") + record_id
            + len(owner_id).to_bytes(4, "big") + owner_id
            + len(self.components).to_bytes(4, "big")
        )
        for name in sorted(self.components):
            encoded = self.components[name].to_bytes()
            blob += len(encoded).to_bytes(4, "big") + encoded
        return blob

    @classmethod
    def from_bytes(cls, group: PairingGroup, blob: bytes, *,
                   validate: bool = True) -> "StoredRecord":
        """Decode a record; ``validate=False`` (trusted, store-internal
        bytes only) skips the per-element subgroup checks, which dominate
        decode time for multi-row policies."""
        def take(offset):
            if offset + 4 > len(blob):
                raise StorageError("truncated stored record")
            length = int.from_bytes(blob[offset:offset + 4], "big")
            offset += 4
            if offset + length > len(blob):
                raise StorageError("truncated stored record")
            return blob[offset:offset + length], offset + length

        record_id, offset = take(0)
        owner_id, offset = take(offset)
        if offset + 4 > len(blob):
            raise StorageError("truncated stored record")
        count = int.from_bytes(blob[offset:offset + 4], "big")
        offset += 4
        components = {}
        for _ in range(count):
            encoded, offset = take(offset)
            component = StoredComponent.from_bytes(group, encoded,
                                                   validate=validate)
            components[component.name] = component
        if offset != len(blob):
            raise StorageError("trailing bytes after stored record")
        return cls(
            record_id=record_id.decode("utf-8"),
            owner_id=owner_id.decode("utf-8"),
            components=components,
        )

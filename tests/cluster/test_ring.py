"""The consistent-hash ring: determinism, distinctness, and the
~1/N stability bound that makes topology changes survivable."""

import pytest

from repro.cluster import HashRing

KEYS = [f"rec-{index:04d}" for index in range(1000)]


def test_same_parameters_same_placement():
    ring_a = HashRing(["n0", "n1", "n2", "n3"], seed=7)
    ring_b = HashRing(["n3", "n2", "n1", "n0"], seed=7)  # order-free
    assert all(ring_a.preference(key, 2) == ring_b.preference(key, 2)
               for key in KEYS)


def test_seed_changes_placement():
    ring_a = HashRing(["n0", "n1", "n2"], seed=0)
    ring_b = HashRing(["n0", "n1", "n2"], seed=1)
    assert any(ring_a.owner(key) != ring_b.owner(key) for key in KEYS)


def test_preference_is_distinct_and_primary_first():
    ring = HashRing([f"n{index}" for index in range(5)])
    for key in KEYS[:100]:
        preference = ring.preference(key, 3)
        assert len(preference) == len(set(preference)) == 3
        assert preference[0] == ring.owner(key)


def test_preference_count_clamps_to_fleet_size():
    ring = HashRing(["n0", "n1"])
    assert len(ring.preference("key", 5)) == 2


def test_adding_a_node_moves_about_one_nth_of_keys():
    """The load-bearing stability regression: growing 4 -> 5 nodes must
    re-home roughly 1/5 of the keys — never a reshuffle, never nothing."""
    ring = HashRing([f"n{index}" for index in range(4)], seed=3)
    owners_before = {key: ring.owner(key) for key in KEYS}
    ring.add_node("n4")
    moved = [key for key in KEYS if ring.owner(key) != owners_before[key]]
    assert 0.05 < len(moved) / len(KEYS) < 0.35  # ~0.2 expected
    # Every moved key landed on the new node: old nodes never trade
    # keys among themselves over an add.
    assert all(ring.owner(key) == "n4" for key in moved)


def test_removing_a_node_only_rehomes_its_keys():
    ring = HashRing([f"n{index}" for index in range(5)], seed=3)
    owners_before = {key: ring.owner(key) for key in KEYS}
    ring.remove_node("n2")
    for key in KEYS:
        if owners_before[key] != "n2":
            assert ring.owner(key) == owners_before[key]


def test_virtual_nodes_spread_load():
    ring = HashRing([f"n{index}" for index in range(4)], seed=1)
    load = {name: len(keys) for name, keys in ring.load_map(KEYS).items()}
    assert sum(load.values()) == len(KEYS)
    assert min(load.values()) > len(KEYS) // 4 // 3  # no starved node


def test_replica_load_counts_every_copy():
    ring = HashRing(["a", "b", "c"])
    load = ring.load_map(KEYS[:30], count=2)
    assert sum(len(keys) for keys in load.values()) == 60


def test_ring_errors():
    ring = HashRing(["a"])
    with pytest.raises(ValueError):
        ring.add_node("a")
    with pytest.raises(ValueError):
        ring.remove_node("b")
    with pytest.raises(ValueError):
        ring.preference("key", 0)
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing([]).preference("key")

"""The adversarial scenario engine: scripted attacks, checked invariants.

The paper's security argument — collusion resistance through the CA's
UID binding (Section VI), revocation security through versioned keys
plus server-side re-encryption (Section V-C) — is *exercised* here, not
asserted. Each scenario drives the real service/cluster stack (live
:class:`~repro.service.server.StorageService` sockets, the real
:class:`~repro.service.faults.ChaosProxy`, real key material) with a
semantic adversary, and declares machine-checked invariants: decrypt
MUST fail with the right error class, the revocation epoch and the
owner's ledger must agree with what the store serves, converged
replicas must be byte-identical, honest traffic must survive a flood.

Every scenario also runs as a **control**: the same attack with the
defense deliberately disabled (the sweep skipped, the CA's UID binding
broken, the retry layer removed, the offload thread bypassed, the
epoch force-rolled past a partition). A control run is *correct* when
its declared invariant FAILS — proving the checker has teeth, i.e.
that the honest PASS is earned by the defense and not by a vacuous
assertion.

Verdict semantics (:func:`run_scenario`):

* honest mode — ``ok`` iff every invariant passed and nothing crashed;
* control mode — ``ok`` iff the scenario's declared
  ``control_invariant`` was evaluated and FAILED (other invariants may
  fail too; a crash is never ok — controls must *complete* with a
  failing check, not die).

:func:`run_matrix` runs any subset of scenarios × modes × seeds and
returns one JSON-ready report; the ``repro adversary`` CLI and the CI
``adversary-matrix`` job are thin wrappers around it.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.ec.params import PRESETS
from repro.pairing.group import PairingGroup

#: Registration order is execution order for ``run_matrix``.
SCENARIOS = {}


@dataclass
class InvariantResult:
    """One machine-checked invariant's outcome in one run."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: the attack, its claim, and its control."""

    name: str
    title: str
    claim: str              # the paper claim this scenario tests
    control: str            # what the control run disables
    control_invariant: str  # the invariant that MUST fail under control
    run: object             # async def run(ctx) -> None


class ScenarioContext:
    """What a scenario run sees: the world, the dice, and the scoreboard.

    ``control`` tells the scenario to run with its defense disabled;
    the scenario still evaluates the same named invariants (that is the
    point — the control's declared invariant must *fail*, and only an
    evaluated check can fail). ``check`` records one invariant verdict
    and returns it, so scenarios can branch on intermediate outcomes
    without raising.
    """

    def __init__(self, group: PairingGroup, *, seed: int, control: bool,
                 root: Path, params: dict = None, out=None):
        self.group = group
        self.seed = seed
        self.control = control
        self.root = root
        self.params = dict(params or {})
        self.out = out
        self.results = []
        self.notes = []

    def param(self, key: str, default):
        return self.params.get(key, default)

    def check(self, name: str, ok, detail: str = "") -> bool:
        ok = bool(ok)
        self.results.append(InvariantResult(name, ok, detail))
        self.note(f"{'PASS' if ok else 'FAIL'} [{name}]"
                  + (f" — {detail}" if detail else ""))
        return ok

    def note(self, message: str) -> None:
        self.notes.append(message)
        if self.out is not None:
            print(f"    {message}", file=self.out, flush=True)

    def result(self, name: str):
        for entry in self.results:
            if entry.name == name:
                return entry
        return None


def scenario(name: str, *, title: str, claim: str, control: str,
             control_invariant: str):
    """Register one adversarial scenario under ``name``."""

    def register(fn):
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = ScenarioSpec(
            name=name, title=title, claim=claim, control=control,
            control_invariant=control_invariant, run=fn,
        )
        return fn

    return register


def scenario_names() -> list:
    _load_scenarios()
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    _load_scenarios()
    spec = SCENARIOS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIOS)}"
        )
    return spec


def _load_scenarios() -> None:
    # Importing the module registers every built-in scenario; deferred
    # so engine import never drags the service/cluster stack in.
    from repro.adversary import scenarios  # noqa: F401


def run_scenario(name: str, *, preset: str = "TOY80", seed: int = 1,
                 control: bool = False, params: dict = None,
                 out=None) -> dict:
    """Run one scenario in one mode; returns its JSON-ready verdict."""
    spec = get_scenario(name)
    mode = "control" if control else "honest"
    started = time.perf_counter()
    group = PairingGroup(PRESETS[preset], seed=seed)
    error = ""
    with tempfile.TemporaryDirectory(prefix="repro-adversary-") as root:
        ctx = ScenarioContext(group, seed=seed, control=control,
                              root=Path(root), params=params, out=out)
        try:
            asyncio.run(spec.run(ctx))
        except Exception as exc:  # noqa: BLE001 — verdicts never raise
            error = repr(exc)
    passed = bool(ctx.results) and all(r.ok for r in ctx.results)
    if control:
        target = ctx.result(spec.control_invariant)
        # The checker has teeth only if the disabled defense makes the
        # declared invariant fail — and the run must have gotten far
        # enough to evaluate it.
        ok = not error and target is not None and not target.ok
    else:
        ok = not error and passed
    return {
        "scenario": spec.name,
        "title": spec.title,
        "claim": spec.claim,
        "mode": mode,
        "seed": seed,
        "preset": preset,
        "control": spec.control,
        "control_invariant": spec.control_invariant,
        "invariants": [r.to_dict() for r in ctx.results],
        "passed": passed,
        "ok": ok,
        "error": error,
        "notes": list(ctx.notes),
        "seconds": round(time.perf_counter() - started, 3),
    }


def run_matrix(names=None, *, preset: str = "TOY80", seeds=(1,),
               modes=("honest", "control"), params: dict = None,
               out=None) -> dict:
    """Every (scenario × seed × mode) verdict plus one aggregate ``ok``.

    The aggregate is strict: every honest run must pass every
    invariant AND every control run must fail its declared invariant.
    """
    _load_scenarios()
    names = list(names) if names else list(SCENARIOS)
    verdicts = []
    for name in names:
        for seed in seeds:
            for mode in modes:
                if out is not None:
                    print(f"== {name} [{mode}] seed {seed}",
                          file=out, flush=True)
                verdict = run_scenario(
                    name, preset=preset, seed=seed,
                    control=(mode == "control"), params=params, out=out,
                )
                verdicts.append(verdict)
                if out is not None:
                    print(f"   -> {'ok' if verdict['ok'] else 'NOT OK'} "
                          f"({verdict['seconds']}s"
                          + (f", error {verdict['error']}"
                             if verdict["error"] else "")
                          + ")", file=out, flush=True)
    return {
        "preset": preset,
        "seeds": list(seeds),
        "scenarios": names,
        "verdicts": verdicts,
        "ok": all(v["ok"] for v in verdicts),
    }


def main(argv=None, out=None) -> int:  # pragma: no cover — CLI shim
    out = out or sys.stdout
    report = run_matrix(out=out)
    print(f"matrix {'ok' if report['ok'] else 'FAILED'}", file=out)
    return 0 if report["ok"] else 1

"""Unit tests for the benchmark workload builders."""

from repro.analysis.timing import (
    and_policy,
    attribute_names,
    build_lewko,
    build_ours,
)
from repro.ec.params import TOY80


class TestHelpers:
    def test_attribute_names(self):
        assert attribute_names(3) == ["attr0", "attr1", "attr2"]
        assert attribute_names(0) == []

    def test_and_policy(self):
        policy = and_policy(["a", "b"], 2)
        assert policy == "a:attr0 AND a:attr1 AND b:attr0 AND b:attr1"

    def test_build_ours_shape(self):
        workload = build_ours(TOY80, 2, 3, seed=1)
        assert set(workload.secret_keys) == {"aa0", "aa1"}
        for key in workload.secret_keys.values():
            assert len(key.attribute_keys) == 3
        ciphertext = workload.encrypt()
        assert ciphertext.n_rows == 6

    def test_build_lewko_shape(self):
        workload = build_lewko(TOY80, 2, 3, seed=1)
        assert len(workload.public_keys) == 6
        assert set(workload.user_keys) == {"aa0", "aa1"}
        ciphertext = workload.encrypt()
        assert ciphertext.n_rows == 6

    def test_workloads_are_self_consistent(self):
        ours = build_ours(TOY80, 1, 2, seed=9)
        assert ours.decrypt(ours.encrypt()) == ours.message
        lewko = build_lewko(TOY80, 1, 2, seed=9)
        assert lewko.decrypt(lewko.encrypt()) == lewko.message

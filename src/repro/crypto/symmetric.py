"""Authenticated symmetric encryption for data components (the DEM).

The paper's owners "encrypt each data component with different content
keys by using symmetric encryption techniques". No block-cipher library
is available offline, so we build an authenticated stream cipher from
SHA-256 primitives:

* keystream: ``SHA-256(key_enc || nonce || counter)`` blocks XORed into
  the plaintext (a standard hash-based CTR construction);
* integrity: encrypt-then-MAC with HMAC-SHA-256 over ``nonce || ct``;
* key separation: the 32-byte content key is split into independent
  encryption and MAC keys via HKDF.

Any IND-CPA + INT-CTXT DEM is interchangeable in the hybrid scheme, so
this substitution preserves the paper's behaviour exactly (see
DESIGN.md §2).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.crypto.kdf import hkdf
from repro.errors import IntegrityError

_BLOCK = 32
_NONCE_LEN = 16
_TAG_LEN = 32
KEY_LEN = 32


@dataclass(frozen=True)
class SymmetricCiphertext:
    """nonce || body || tag, kept as fields for clarity."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.body + self.tag

    @classmethod
    def from_bytes(cls, data: bytes) -> "SymmetricCiphertext":
        if len(data) < _NONCE_LEN + _TAG_LEN:
            raise IntegrityError("ciphertext too short")
        return cls(
            nonce=data[:_NONCE_LEN],
            body=data[_NONCE_LEN:-_TAG_LEN],
            tag=data[-_TAG_LEN:],
        )

    def __len__(self) -> int:
        return _NONCE_LEN + len(self.body) + _TAG_LEN


def _derive_keys(key: bytes) -> tuple:
    if len(key) != KEY_LEN:
        raise ValueError(f"content keys must be {KEY_LEN} bytes")
    material = hkdf(key, b"repro.dem.keys", 2 * KEY_LEN)
    return material[:KEY_LEN], material[KEY_LEN:]


def _keystream(key_enc: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key_enc + nonce + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:length]


def generate_content_key(rng=None) -> bytes:
    """A fresh random 32-byte content key (k_i in the paper's Fig. 2)."""
    if rng is None:
        return os.urandom(KEY_LEN)
    return bytes(rng.getrandbits(8) for _ in range(KEY_LEN))


def encrypt(key: bytes, plaintext: bytes, nonce: bytes = None) -> SymmetricCiphertext:
    """Authenticated encryption of one data component under a content key."""
    key_enc, key_mac = _derive_keys(key)
    if nonce is None:
        nonce = os.urandom(_NONCE_LEN)
    if len(nonce) != _NONCE_LEN:
        raise ValueError(f"nonce must be {_NONCE_LEN} bytes")
    body = bytes(
        p ^ k for p, k in zip(plaintext, _keystream(key_enc, nonce, len(plaintext)))
    )
    tag = hmac.new(key_mac, nonce + body, hashlib.sha256).digest()
    return SymmetricCiphertext(nonce=nonce, body=body, tag=tag)


def decrypt(key: bytes, ciphertext: SymmetricCiphertext) -> bytes:
    """Verify-then-decrypt; raises :class:`IntegrityError` on any tampering."""
    key_enc, key_mac = _derive_keys(key)
    expected = hmac.new(
        key_mac, ciphertext.nonce + ciphertext.body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise IntegrityError("MAC verification failed: wrong key or tampered data")
    keystream = _keystream(key_enc, ciphertext.nonce, len(ciphertext.body))
    return bytes(c ^ k for c, k in zip(ciphertext.body, keystream))

"""Tests for HKDF, including the RFC 5869 SHA-256 test vector."""

import pytest

from repro.crypto.kdf import derive_content_key, hkdf, hkdf_expand, hkdf_extract


class TestRfc5869Vectors:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_and_info(self):
        ikm = bytes.fromhex("0b" * 22)
        prk = hkdf_extract(b"", ikm)
        assert prk == bytes.fromhex(
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04"
        )
        okm = hkdf_expand(prk, b"", 42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestHkdfApi:
    def test_requested_length(self):
        for length in (1, 16, 32, 33, 64, 255):
            assert len(hkdf(b"key", b"info", length)) == length

    def test_too_long_raises(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_info_separates_outputs(self):
        assert hkdf(b"k", b"a", 32) != hkdf(b"k", b"b", 32)

    def test_salt_changes_output(self):
        assert hkdf(b"k", b"i", 32, salt=b"s1") != hkdf(b"k", b"i", 32, salt=b"s2")

    def test_deterministic(self):
        assert hkdf(b"k", b"i", 32) == hkdf(b"k", b"i", 32)


class TestContentKeyDerivation:
    def test_length_and_determinism(self):
        key = derive_content_key(b"session-bytes", b"ctx")
        assert len(key) == 32
        assert key == derive_content_key(b"session-bytes", b"ctx")

    def test_context_separation(self):
        assert derive_content_key(b"s", b"record/a") != derive_content_key(
            b"s", b"record/b"
        )

    def test_session_separation(self):
        assert derive_content_key(b"s1") != derive_content_key(b"s2")

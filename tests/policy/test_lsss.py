"""Property tests for the LSSS machinery — the heart of the access control."""

import itertools
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PolicyNotSatisfiedError
from repro.policy.ast import And, Attribute, Or
from repro.policy.lsss import lsss_from_policy

ORDER = 0x8BE5EA5F01D1943560CD  # TOY80 group order

POLICIES = [
    "a",
    "a AND b",
    "a OR b",
    "a AND (b OR c)",
    "(a AND b) OR (c AND d)",
    "a AND b AND c AND d",
    "a OR b OR c",
    "(a OR b) AND (c OR d) AND e",
    "2 of (a, b, c)",
    "2 of (a AND b, c, d)",
]


def _universe(matrix):
    return sorted(set(matrix.row_labels))


def _all_subsets(universe):
    for size in range(len(universe) + 1):
        yield from (set(c) for c in itertools.combinations(universe, size))


class TestConstruction:
    def test_single_attribute_matrix(self):
        matrix = lsss_from_policy("a")
        assert matrix.rows == ((1,),)
        assert matrix.row_labels == ("a",)

    def test_or_shares_vector(self):
        matrix = lsss_from_policy("a OR b")
        assert matrix.rows == ((1,), (1,))

    def test_and_introduces_column(self):
        matrix = lsss_from_policy("a AND b")
        assert matrix.n_cols == 2
        assert len(matrix.rows) == 2
        # Rows sum to the target (1, 0).
        total = [
            sum(row[j] for row in matrix.rows) % ORDER
            for j in range(matrix.n_cols)
        ]
        assert total == [1, 0]

    def test_row_count_equals_expanded_leaves(self):
        matrix = lsss_from_policy("2 of (a, b, c)")
        # expands to (a^b) v (a^c) v (b^c): 6 rows
        assert matrix.n_rows == 6

    def test_injectivity_detection(self):
        assert lsss_from_policy("a AND b").is_injective()
        assert not lsss_from_policy("2 of (a, b, c)").is_injective()


class TestSatisfiability:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_boolean_evaluation(self, policy):
        matrix = lsss_from_policy(policy)
        formula = matrix.policy
        for subset in _all_subsets(_universe(matrix)):
            assert matrix.is_satisfied_by(subset, ORDER) == formula.evaluate(
                subset
            ), (policy, subset)

    def test_empty_set_never_satisfies(self):
        for policy in POLICIES:
            assert not lsss_from_policy(policy).is_satisfied_by(set(), ORDER)


class TestShareReconstruct:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_reconstruction_recovers_secret(self, policy):
        rng = random.Random(hash(policy) & 0xFFFF)
        matrix = lsss_from_policy(policy)
        formula = matrix.policy
        secret = rng.randrange(ORDER)
        shares = matrix.share(secret, ORDER, rng)
        for subset in _all_subsets(_universe(matrix)):
            if not formula.evaluate(subset):
                continue
            weights = matrix.reconstruction_coefficients(subset, ORDER)
            recovered = (
                sum(weights[i] * shares[i] for i in weights) % ORDER
            )
            assert recovered == secret, (policy, subset)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_unauthorized_raises(self, policy):
        matrix = lsss_from_policy(policy)
        formula = matrix.policy
        for subset in _all_subsets(_universe(matrix)):
            if formula.evaluate(subset):
                continue
            with pytest.raises(PolicyNotSatisfiedError):
                matrix.reconstruction_coefficients(subset, ORDER)

    @given(st.integers(0, ORDER - 1), st.integers(0, 2**32))
    def test_share_randomness_hides_secret_for_single_and_branch(
        self, secret, seed
    ):
        # For "a AND b" neither share alone determines the secret: two
        # different sharings of the same secret give different shares.
        rng1 = random.Random(seed)
        rng2 = random.Random(seed + 1)
        matrix = lsss_from_policy("a AND b")
        shares1 = matrix.share(secret, ORDER, rng1)
        shares2 = matrix.share(secret, ORDER, rng2)
        # Equal only with probability 1/ORDER; treat equality as failure.
        assert shares1 != shares2

    def test_coefficients_only_use_held_rows(self):
        matrix = lsss_from_policy("a OR (b AND c)")
        weights = matrix.reconstruction_coefficients({"a"}, ORDER)
        assert set(weights) <= set(matrix.rows_for({"a"}))

    def test_zero_coefficients_pruned(self):
        matrix = lsss_from_policy("a OR b")
        weights = matrix.reconstruction_coefficients({"a", "b"}, ORDER)
        assert all(value != 0 for value in weights.values())


class TestDeepFormulas:
    def test_deep_nesting(self):
        policy = "a AND (b OR (c AND (d OR (e AND f))))"
        matrix = lsss_from_policy(policy)
        rng = random.Random(7)
        secret = rng.randrange(ORDER)
        shares = matrix.share(secret, ORDER, rng)
        weights = matrix.reconstruction_coefficients(
            {"a", "c", "e", "f"}, ORDER
        )
        assert sum(weights[i] * shares[i] for i in weights) % ORDER == secret

    def test_wide_and(self):
        names = [f"x{i}" for i in range(20)]
        matrix = lsss_from_policy(" AND ".join(names))
        assert matrix.n_rows == 20
        assert matrix.n_cols == 20
        rng = random.Random(8)
        secret = 12345
        shares = matrix.share(secret, ORDER, rng)
        weights = matrix.reconstruction_coefficients(set(names), ORDER)
        assert sum(weights[i] * shares[i] for i in weights) % ORDER == secret
        assert not matrix.is_satisfied_by(set(names[:-1]), ORDER)

"""Element-size accounting for the paper's storage/communication tables.

Tables II-IV of the paper express costs in the symbolic units |p| (a Z_p
scalar), |G| (a source-group element) and |GT| (a target-group element).
:class:`ElementSizes` turns a parameter set into concrete byte counts so
the analytic cost model and the measured serialized sizes can be compared
apples-to-apples.

For a type-A curve with a 512-bit base field (the paper's α-curve):
|G| = 65 bytes compressed, |GT| = 128 bytes, |p| = 20 bytes — the same
proportions PBC reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ec.params import TypeAParams


@dataclass(frozen=True)
class ElementSizes:
    """Concrete byte sizes of the three element kinds for a parameter set."""

    zr: int   # |p| in the paper: a scalar modulo the group order
    g1: int   # |G|: a compressed source-group element
    gt: int   # |GT|: a target-group element (F_p², two base-field coords)

    def of(self, n_zr: int = 0, n_g1: int = 0, n_gt: int = 0) -> int:
        """Total bytes of a bundle of n_zr scalars, n_g1 G and n_gt GT elements."""
        return n_zr * self.zr + n_g1 * self.g1 + n_gt * self.gt


def element_sizes(params: TypeAParams) -> ElementSizes:
    """Byte sizes of Z_r, G (compressed) and GT elements for ``params``."""
    field_bytes = (params.p.bit_length() + 7) // 8
    return ElementSizes(
        zr=(params.r.bit_length() + 7) // 8,
        g1=field_bytes + 1,
        gt=2 * field_bytes,
    )

"""The cost models must agree with the sizes of real serialized objects."""

import pytest

from repro.analysis.costmodel import (
    SystemShape,
    decrypt_ops_lewko,
    decrypt_ops_ours,
    encrypt_ops_lewko,
    encrypt_ops_ours,
    table2_lewko,
    table2_ours,
    table3_lewko,
    table3_ours,
    table4_lewko,
    table4_ours,
)
from repro.analysis.timing import build_lewko, build_ours
from repro.ec.params import TOY80
from repro.pairing.serialize import element_sizes
from repro.system.sizes import measure

SHAPE = SystemShape(
    n_authorities=2,
    attrs_per_authority=3,
    user_attrs_per_authority=3,
    policy_rows=6,
)
SIZES = element_sizes(TOY80)


@pytest.fixture(scope="module")
def ours():
    return build_ours(TOY80, SHAPE.n_authorities, SHAPE.attrs_per_authority,
                      seed=11)


@pytest.fixture(scope="module")
def lewko():
    return build_lewko(TOY80, SHAPE.n_authorities, SHAPE.attrs_per_authority,
                       seed=11)


class TestOursMeasuredAgainstModel:
    def test_ciphertext(self, ours):
        model = table2_ours(SHAPE)["ciphertext"].bytes(SIZES)
        ciphertext = ours.encrypt()
        assert ciphertext.element_size_bytes(ours.group) == model

    def test_secret_key(self, ours):
        model = table2_ours(SHAPE)["secret_key"].bytes(SIZES)
        measured = sum(
            measure(key, ours.group) for key in ours.secret_keys.values()
        )
        assert measured == model

    def test_public_key(self, ours):
        # n_A · (n_k·|G| + |GT|): per authority, attribute keys + PK_o.
        model = table2_ours(SHAPE)["public_key"].bytes(SIZES)
        group = ours.group
        measured = SHAPE.n_authorities * (
            SHAPE.attrs_per_authority * group.g1_bytes + group.gt_bytes
        )
        assert measured == model

    def test_authority_key_is_one_scalar(self):
        assert table2_ours(SHAPE)["authority_key"].bytes(SIZES) == SIZES.zr


class TestLewkoMeasuredAgainstModel:
    def test_ciphertext(self, lewko):
        model = table2_lewko(SHAPE)["ciphertext"].bytes(SIZES)
        ciphertext = lewko.encrypt()
        assert ciphertext.element_size_bytes(lewko.group) == model

    def test_secret_key(self, lewko):
        model = table2_lewko(SHAPE)["secret_key"].bytes(SIZES)
        measured = sum(
            measure(key, lewko.group) for key in lewko.user_keys.values()
        )
        assert measured == model

    def test_public_key(self, lewko):
        model = table2_lewko(SHAPE)["public_key"].bytes(SIZES)
        measured = sum(
            measure(pk, lewko.group) for pk in lewko.public_keys.values()
        )
        assert measured == model


class TestPaperClaims:
    """The comparative statements of Section VI must hold in the models."""

    def test_our_ciphertext_smaller(self):
        for rows in (1, 2, 5, 10, 50):
            shape = SystemShape(2, 3, 3, rows)
            ours = table2_ours(shape)["ciphertext"].bytes(SIZES)
            lewko = table2_lewko(shape)["ciphertext"].bytes(SIZES)
            assert ours < lewko

    def test_our_authority_storage_smaller(self):
        ours = table3_ours(SHAPE)["authority"].bytes(SIZES)
        lewko = table3_lewko(SHAPE)["authority"].bytes(SIZES)
        assert ours < lewko

    def test_our_owner_storage_comparable_or_smaller(self):
        # Ours: 2|p| + Σ(n_k|G| + |GT|); Lewko: Σ n_k(|GT|+|G|).
        ours = table3_ours(SHAPE)["owner"].bytes(SIZES)
        lewko = table3_lewko(SHAPE)["owner"].bytes(SIZES)
        assert ours < lewko

    def test_user_storage_almost_equal(self):
        # "the storage overhead on each user is almost the same".
        ours = table3_ours(SHAPE)["user"].bytes(SIZES)
        lewko = table3_lewko(SHAPE)["user"].bytes(SIZES)
        assert abs(ours - lewko) == SHAPE.n_authorities * SIZES.g1

    def test_server_to_user_communication_smaller(self):
        ours = table4_ours(SHAPE)[("server", "user")].bytes(SIZES)
        lewko = table4_lewko(SHAPE)[("server", "user")].bytes(SIZES)
        assert ours < lewko

    def test_aa_to_owner_communication_smaller(self):
        ours = table4_ours(SHAPE)[("aa", "owner")].bytes(SIZES)
        lewko = table4_lewko(SHAPE)[("aa", "owner")].bytes(SIZES)
        assert ours < lewko


class TestOperationCounts:
    def test_encryption_ours_cheaper(self):
        """Fig 3(a)/4(a) shape: our encryption does fewer exponentiations."""
        for shape in (SHAPE, SystemShape(5, 5, 5, 25), SystemShape(20, 5, 5, 100)):
            ours = encrypt_ops_ours(shape)
            lewko = encrypt_ops_lewko(shape)
            assert (
                ours.g1_exponentiations + ours.gt_exponentiations
                < lewko.g1_exponentiations + lewko.gt_exponentiations
            )

    def test_decryption_ours_slightly_more(self):
        """Fig 3(b)/4(b) shape: our decryption pays n_A extra pairings."""
        for shape in (SHAPE, SystemShape(5, 5, 5, 25), SystemShape(20, 5, 5, 100)):
            ours = decrypt_ops_ours(shape)
            lewko = decrypt_ops_lewko(shape)
            assert ours.pairings == lewko.pairings + shape.n_authorities

    def test_counts_linear_in_rows(self):
        small = encrypt_ops_ours(SystemShape(1, 1, 1, 10))
        large = encrypt_ops_ours(SystemShape(1, 1, 1, 20))
        assert (large.g1_exponentiations - small.g1_exponentiations) == 20

    def test_weighted_prediction(self):
        ops = decrypt_ops_ours(SystemShape(2, 2, 2, 4))
        assert ops.weighted(1.0, 0.1, 0.2) == pytest.approx(
            ops.pairings + 0.2 * ops.gt_exponentiations
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SystemShape(0, 1, 1, 1)

"""Fixed-base windowed scalar multiplication.

Exponentiations of the *generator* dominate KeyGen and Encrypt (every
``g^x`` in the scheme). For a fixed base, precomputing the table
``T[i][j] = (j · W^i) · P`` for a window width ``w`` (``W = 2^w``)
reduces a scalar multiplication to at most ``ceil(bits/w)`` point
additions and no doublings — a 4-6× speedup over double-and-add in this
pure-Python setting.

The table costs ``(W - 1) · ceil(bits/w)`` precomputed points; for a
160-bit order and w = 4 that is 600 points (~75 KB at 512-bit p), built
once per base. Construction walks the whole table in Jacobian
coordinates and converts every entry to affine with ONE Montgomery batch
inversion; ``multiply`` accumulates the affine entries into a Jacobian
accumulator (inversion-free mixed additions) and pays a single inversion
at the end.
"""

from __future__ import annotations

from repro.ec.curve import (
    INFINITY,
    _JAC_INFINITY,
    SupersingularCurve,
    _jac_add,
    _jac_add_affine,
)


class FixedBaseTable:
    """Precomputed multiples of one point for windowed multiplication."""

    __slots__ = ("curve", "point", "window", "levels")

    def __init__(self, curve: SupersingularCurve, point, order: int,
                 window: int = 4):
        if not 1 <= window <= 8:
            raise ValueError("window width must be in [1, 8]")
        self.curve = curve
        self.point = point
        self.window = window
        width = 1 << window
        n_levels = (order.bit_length() + window - 1) // window
        p = curve.p
        # Walk every entry in Jacobian coordinates: row[j] = j·(W^i·P),
        # chained by additions; the next level's base W^(i+1)·P is one
        # more addition past the last row entry. One batch inversion at
        # the end converts the whole table to affine.
        flat = []
        base = (point[0], point[1], 1) if point is not INFINITY else _JAC_INFINITY
        for _ in range(n_levels):
            accumulator = base
            flat.append(accumulator)
            for _ in range(width - 2):
                accumulator = _jac_add(accumulator, base, p)
                flat.append(accumulator)
            base = _jac_add(accumulator, base, p)  # W · (level base)
        affine = curve.batch_normalize(flat)
        self.levels = []
        for level in range(n_levels):
            row = [INFINITY]
            row.extend(affine[level * (width - 1):(level + 1) * (width - 1)])
            self.levels.append(row)

    def multiply(self, scalar: int):
        """``scalar · P`` using the precomputed table."""
        return self.curve.to_affine(self.multiply_jacobian(scalar))

    def multiply_jacobian(self, scalar: int):
        """:meth:`multiply` without the final affine conversion.

        Lets callers (the multi-exponentiation fast path) combine several
        table-based partial results with a single shared inversion.
        """
        if scalar < 0:
            x, y, z = self.multiply_jacobian(-scalar)
            return (x, -y % self.curve.p, z)
        p = self.curve.p
        mask = (1 << self.window) - 1
        result = _JAC_INFINITY
        level = 0
        while scalar and level < len(self.levels):
            digit = scalar & mask
            if digit:
                result = _jac_add_affine(result, self.levels[level][digit], p)
            scalar >>= self.window
            level += 1
        if scalar:
            # Scalar exceeded the table (not reduced mod order): fall back
            # for the remaining high part.
            high = self.curve.mul(self.point, scalar << (self.window * level))
            result = _jac_add_affine(result, high, p)
        return result

"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 660 editable installs (which build a wheel) fail. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern environments with ``wheel``) work either
way. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Micro-benchmark for the pluggable arithmetic cores (ISSUE-6).

Times the four primitives every higher layer reduces to — F_p
multiplication, F_p inversion, G1 scalar multiplication (plain
double-and-add, no fixed-base table), and a full Tate pairing — under
each arithmetic configuration the box can run:

* ``pure``        — CPython big-int ``a * b % p`` (the default core);
* ``pure-mont``   — the Montgomery REDC core (``REPRO_MONTGOMERY``):
  field ops run in the Montgomery domain via
  :class:`repro.math.montgomery.MontgomeryContext`;
* ``gmpy2``       — the GMP-backed core, **only if the interpreter has
  gmpy2**. When absent (the common container state) the config is
  recorded as unavailable instead of hard-resolving the backend, which
  would raise.

Cross-config byte-identity is asserted before any timing is reported:
the encoded G1 scalar-mul result and the encoded pairing output must
be identical across every configuration that ran (exit 1 on mismatch).
This is the micro-level version of the differential suite in
``tests/math/test_backend_differential.py``.

Timings are best-of-``SAMPLES`` loop averages — the min-of-N
convention every other bench here uses against CPU noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_field_backend.py            # SS512
    REPRO_BENCH_PRESET=TOY80 PYTHONPATH=src \
        python benchmarks/bench_field_backend.py --smoke --out /tmp/f.json

Writes ``BENCH_field_backend.json`` (or ``--out``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.ec.params import PRESETS
from repro.math.backend import gmpy2_available
from repro.math.field import PrimeField
from repro.pairing.group import PairingGroup

from bench_common import arith_metadata, counter_summary

SEED = 0xF1E1D
SAMPLES = 3                      # best-of-N noise estimator per primitive


def _best_of(samples, fn):
    return min(fn() for _ in range(samples))


def _time_loop(pairs, op):
    """Wall-clock seconds for ``op`` over every pair, as one loop."""
    start = time.perf_counter()
    for a, b in pairs:
        op(a, b)
    return time.perf_counter() - start


def _bench_config(name, preset, *, backend, montgomery, smoke):
    """Time the four primitives under one arithmetic configuration.

    The group is constructed inside this function with
    ``REPRO_MONTGOMERY`` pinned, because :class:`PairingGroup` reads
    the Montgomery toggle from the environment at field construction.
    """
    n_mul = 2000 if smoke else 20000
    n_inv = 50 if smoke else 500
    n_g1 = 2 if smoke else 8
    n_pair = 1 if smoke else 4

    saved = os.environ.get("REPRO_MONTGOMERY")
    os.environ["REPRO_MONTGOMERY"] = "1" if montgomery else "0"
    try:
        group = PairingGroup(preset, seed=SEED, backend=backend)
    finally:
        if saved is None:
            os.environ.pop("REPRO_MONTGOMERY", None)
        else:
            os.environ["REPRO_MONTGOMERY"] = saved

    field = group.field
    rng = random.Random(SEED)
    mul_pairs = [
        (field.random_nonzero(rng), field.random_nonzero(rng))
        for _ in range(n_mul)
    ]
    inv_operands = [field.random_nonzero(rng) for _ in range(n_inv)]

    if montgomery:
        mont = field.mont
        mont_pairs = [(mont.to_mont(a), mont.to_mont(b)) for a, b in mul_pairs]
        mont_invs = [(mont.to_mont(a), None) for a in inv_operands]
        mul_s = _best_of(SAMPLES, lambda: _time_loop(mont_pairs, mont.mul))
        inv_s = _best_of(
            SAMPLES,
            lambda: _time_loop(mont_invs, lambda a, _b: mont.inv(a)),
        )
    else:
        mul_s = _best_of(SAMPLES, lambda: _time_loop(mul_pairs, field.mul))
        inv_s = _best_of(
            SAMPLES,
            lambda: _time_loop([(a, None) for a in inv_operands],
                               lambda a, _b: field.inv(a)),
        )

    # G1 scalar mul: plain curve.mul on a non-generator base, so the
    # fixed-base tables cannot mask the field core under test.
    base = group.random_g1()
    scalars = [group.random_scalar() for _ in range(n_g1)]
    g1_s = _best_of(
        SAMPLES,
        lambda: _time_loop([(base.point, s) for s in scalars],
                           group.curve.mul),
    )

    h = group.random_g1()
    pair_s = _best_of(
        SAMPLES,
        lambda: _time_loop([(group.g, h)] * n_pair, group.pair),
    )

    # Byte-identity witnesses: same seed -> same base/scalars/h in every
    # config, so these encodings must agree across configs.
    g1_witness = (base ** scalars[0]).to_bytes().hex()
    gt_witness = group.pair(base, h).to_bytes().hex()

    return {
        "config": name,
        "arithmetic": arith_metadata(group),
        "fp_mul_us": mul_s / n_mul * 1e6,
        "fp_inv_us": inv_s / n_inv * 1e6,
        "g1_scalar_mul_ms": g1_s / n_g1 * 1e3,
        "pairing_ms": pair_s / n_pair * 1e3,
        "loop_sizes": {"fp_mul": n_mul, "fp_inv": n_inv,
                       "g1_scalar_mul": n_g1, "pairing": n_pair},
        "op_counts": counter_summary(group),
        "witness": {"g1": g1_witness, "gt": gt_witness},
    }


def run(preset_name: str, out_path: str, smoke: bool) -> dict:
    preset = PRESETS[preset_name]

    configs = [
        ("pure", dict(backend="pure", montgomery=False)),
        ("pure-mont", dict(backend="pure", montgomery=True)),
    ]
    if gmpy2_available():
        configs.append(("gmpy2", dict(backend="gmpy2", montgomery=False)))

    results = []
    for name, options in configs:
        print(f"[field-backend] timing config {name!r} on {preset_name}...")
        results.append(_bench_config(name, preset, smoke=smoke, **options))

    # Cross-config byte-identity gate.
    reference = results[0]["witness"]
    mismatches = [
        r["config"] for r in results[1:] if r["witness"] != reference
    ]

    report = {
        "benchmark": "field_backend",
        "preset": preset_name,
        "smoke": smoke,
        "samples": SAMPLES,
        "gmpy2_available": gmpy2_available(),
        "configs": results,
        "byte_identical": not mismatches,
        "mismatched_configs": mismatches,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), os.pardir, "BENCH_field_backend.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny loops for CI")
    args = parser.parse_args()

    preset_name = os.environ.get("REPRO_BENCH_PRESET", "SS512")
    report = run(preset_name, args.out, args.smoke)

    print(f"\n== field backend micro-bench ({preset_name}) ==")
    header = f"{'config':<12} {'fp_mul us':>10} {'fp_inv us':>10} " \
             f"{'G1 mul ms':>10} {'pairing ms':>11}"
    print(header)
    for entry in report["configs"]:
        print(f"{entry['config']:<12} {entry['fp_mul_us']:>10.3f} "
              f"{entry['fp_inv_us']:>10.2f} "
              f"{entry['g1_scalar_mul_ms']:>10.2f} "
              f"{entry['pairing_ms']:>11.2f}")
    if not report["gmpy2_available"]:
        print("gmpy2: unavailable in this interpreter (config skipped)")

    if not report["byte_identical"]:
        print(f"FAIL: outputs differ across configs: "
              f"{report['mismatched_configs']}")
        return 1
    print("byte-identity: all configs agree on G1/GT witnesses")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pluggable big-integer arithmetic backends.

The whole crypto stack works on plain Python ints, with the modulus
held by context objects (:class:`repro.math.field.PrimeField`,
:class:`repro.ec.curve.SupersingularCurve`, the Miller loop). That
gives us a zero-rewrite acceleration point: if the *modulus* is a
``gmpy2.mpz``, every ``a * b % p`` in the hot paths promotes to mpz
arithmetic automatically (int ⊙ mpz → mpz in both operand orders), and
GMP does the multiplies and divisions. Serialization converts back
with ``int(...)`` at the byte boundaries, so encodings — and therefore
ciphertexts, keys, and every on-disk artifact — are byte-identical
across backends.

Selection precedence (first match wins):

1. explicit :func:`set_backend` (or the CLI's ``--arith-backend``)
2. the ``REPRO_ARITH_BACKEND`` environment variable
   (``auto`` | ``pure`` | ``gmpy2``)
3. ``auto``: gmpy2 when importable, else pure python

``gmpy2`` is an *optional* accelerator: requesting it explicitly when
it is not installed raises, but ``auto`` silently falls back to pure —
the container this repo grows in does not ship gmpy2, and nothing may
depend on it. The CI matrix runs the tier-1 suite and the encrypt
smoke bench both with and without it installed and fails on any
cross-backend byte mismatch.

Worker processes inherit the backend through the group registry:
:func:`repro.pairing.group._rebuild_group` re-resolves the pickled
backend name, so CryptoPool workers, EncryptionSession pool builds,
and the REENCRYPT_SWEEP path all compute with the same arithmetic as
the parent.
"""

from __future__ import annotations

import os

from repro.errors import MathError

_VALID = ("auto", "pure", "gmpy2")

try:  # optional accelerator — never a hard dependency
    import gmpy2 as _gmpy2
    _mpz = _gmpy2.mpz
except ImportError:  # pragma: no cover - exercised by the no-gmpy2 CI leg
    _gmpy2 = None
    _mpz = None


class ArithBackend:
    """One arithmetic implementation: a name plus int wrap/unwrap."""

    __slots__ = ("name", "wrap")

    def __init__(self, name: str, wrap):
        self.name = name
        self.wrap = wrap  # int -> backend integer type (used on moduli)

    def __repr__(self) -> str:
        return f"ArithBackend({self.name!r})"


_PURE = ArithBackend("pure", lambda a: a)
_GMPY2 = ArithBackend("gmpy2", _mpz) if _mpz is not None else None

_forced = None  # set_backend override, beats the environment


def available_backends() -> tuple:
    """Names usable on this interpreter, preference order."""
    return ("gmpy2", "pure") if _GMPY2 is not None else ("pure",)


def gmpy2_available() -> bool:
    return _GMPY2 is not None


def set_backend(name) -> None:
    """Force a backend process-wide (``None`` returns to env/auto)."""
    if name is not None and name not in _VALID:
        raise MathError(f"unknown arithmetic backend {name!r}")
    global _forced
    _forced = name


def resolve_backend(name=None) -> ArithBackend:
    """Map a requested name (or the active default) to a backend.

    ``None`` applies the precedence chain documented above; ``auto``
    degrades to pure when gmpy2 is missing; a hard ``gmpy2`` request
    without the library raises so CI mismatches cannot pass silently.
    """
    if name is None:
        name = _forced if _forced is not None else os.environ.get(
            "REPRO_ARITH_BACKEND", "auto")
    if name not in _VALID:
        raise MathError(f"unknown arithmetic backend {name!r}")
    if name == "auto":
        return _GMPY2 if _GMPY2 is not None else _PURE
    if name == "gmpy2":
        if _GMPY2 is None:
            raise MathError(
                "arithmetic backend 'gmpy2' requested but gmpy2 is not "
                "importable (install it or use REPRO_ARITH_BACKEND=auto)")
        return _GMPY2
    return _PURE


def active_backend_name() -> str:
    """The resolved default backend's name (for bench metadata)."""
    return resolve_backend().name


def montgomery_requested() -> bool:
    """Whether Montgomery form is enabled (``REPRO_MONTGOMERY=1``).

    Off by default: measured slower than CPython's ``%`` on this
    interpreter (see :mod:`repro.math.montgomery`); kept as a
    correctness-verified representation, selectable for experiments.
    """
    return os.environ.get("REPRO_MONTGOMERY", "0").lower() in ("1", "true", "on")

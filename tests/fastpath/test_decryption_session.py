"""Behavior of :class:`repro.fastpath.decrypt.DecryptionSession`."""

import pytest

from repro.core.decrypt import decrypt_fast
from repro.errors import PolicyNotSatisfiedError, SchemeError
from repro.fastpath import DecryptionSession
from repro.system.meter import Meter

POLICY = "hospital:doctor AND trial:researcher"

POLICY_SHAPES = [
    POLICY,
    "hospital:doctor OR trial:researcher",
    "(hospital:doctor AND hospital:nurse) OR trial:pi",
    "hospital:surgeon AND (trial:researcher OR trial:pi)",
]


def _session_for(fabric, ciphertext, **kwargs):
    return DecryptionSession(
        fabric.scheme.group, ciphertext, fabric.bob_pk, fabric.bob_keys,
        **kwargs,
    )


class TestByteIdentity:
    @pytest.mark.parametrize("policy", POLICY_SHAPES)
    def test_identical_to_cold_path(self, fabric, policy):
        group = fabric.scheme.group
        messages = [fabric.scheme.random_message() for _ in range(3)]
        ciphertexts = [
            fabric.owner.encrypt(message, policy) for message in messages
        ]
        session = _session_for(fabric, ciphertexts[0])
        fast = session.decrypt_many(ciphertexts)
        for message, ciphertext, value in zip(messages, ciphertexts, fast):
            cold = decrypt_fast(group, ciphertext, fabric.bob_pk,
                                fabric.bob_keys)
            assert value.to_bytes() == cold.to_bytes()
            assert value == message

    def test_single_decrypt_matches_batch(self, fabric):
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(message, POLICY)
        session = _session_for(fabric, ciphertext)
        assert session.decrypt(ciphertext).to_bytes() \
            == session.decrypt_many([ciphertext])[0].to_bytes()

    def test_identical_to_naive_eq1(self, fabric):
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(message, POLICY)
        naive = fabric.scheme.decrypt(ciphertext, fabric.bob_pk,
                                      fabric.bob_keys)
        session = _session_for(fabric, ciphertext)
        assert session.decrypt(ciphertext).to_bytes() == naive.to_bytes()


class TestAmortization:
    def test_two_pairings_per_ciphertext(self, fabric):
        group = fabric.scheme.group
        ciphertexts = [
            fabric.owner.encrypt(fabric.scheme.random_message(), POLICY)
            for _ in range(4)
        ]
        session = _session_for(fabric, ciphertexts[0])
        group.counter.reset()
        session.decrypt_many(ciphertexts)
        # The cold path walks 3 Miller loops per ciphertext; the session
        # merges the two C'-side pairings into one prepared chain.
        assert group.counter.pairings == 2 * len(ciphertexts)

    def test_stats_and_meter(self, fabric):
        meter = Meter(fabric.scheme.group)
        ciphertexts = [
            fabric.owner.encrypt(fabric.scheme.random_message(), POLICY)
            for _ in range(3)
        ]
        session = _session_for(fabric, ciphertexts[0], meter=meter)
        session.decrypt_many(ciphertexts)
        session.decrypt(ciphertexts[0])
        assert session.stats == {"decrypted": 4, "batches": 2}
        assert meter.counters["decrypt.session.decrypt"] == 4
        assert meter.counters["decrypt.session.batch"] == 2


class TestValidation:
    def test_unsatisfied_policy_rejected_at_setup(self, fabric):
        ciphertext = fabric.owner.encrypt(
            fabric.scheme.random_message(), POLICY
        )
        poor_keys = {
            "hospital": fabric.bob_keys["hospital"],
        }
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            DecryptionSession(fabric.scheme.group, ciphertext,
                              fabric.bob_pk, poor_keys)

    def test_foreign_policy_shape_rejected(self, fabric):
        first = fabric.owner.encrypt(fabric.scheme.random_message(), POLICY)
        other = fabric.owner.encrypt(
            fabric.scheme.random_message(), "hospital:nurse"
        )
        session = _session_for(fabric, first)
        with pytest.raises(SchemeError, match="policy"):
            session.decrypt(other)

    def test_foreign_owner_rejected(self, fabric):
        first = fabric.owner.encrypt(fabric.scheme.random_message(), POLICY)
        session = _session_for(fabric, first)
        stranger = fabric.scheme.setup_owner(
            "mallory", [fabric.hospital, fabric.trial]
        )
        foreign = stranger.encrypt(fabric.scheme.random_message(), POLICY)
        with pytest.raises(SchemeError, match="owner"):
            session.decrypt(foreign)


class TestRevocationFreshness:
    def _roll_epoch(self, fabric, ciphertext):
        """Revoke a bystander so bob's keys roll without losing access."""
        eve_pk = fabric.scheme.register_user("eve")
        fabric.hospital.keygen(eve_pk, ["doctor"], "alice")
        result = fabric.scheme.revoke("hospital", "eve", ["doctor"])
        update_key = result.update_key
        update_info = fabric.owner.update_info(ciphertext, update_key)
        fabric.owner.apply_update_key(update_key)
        reencrypted = fabric.scheme.reencrypt(
            ciphertext, update_key, update_info
        )
        rolled_keys = dict(fabric.bob_keys)
        rolled_keys["hospital"] = fabric.scheme.apply_update_key(
            fabric.bob_keys["hospital"], update_key
        )
        return reencrypted, rolled_keys

    def test_stale_session_rejects_reencrypted_ciphertext(self, fabric):
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(message, POLICY)
        session = _session_for(fabric, ciphertext)
        reencrypted, rolled_keys = self._roll_epoch(fabric, ciphertext)
        # Typed rejection, same class as the cold path — never garbage.
        with pytest.raises(SchemeError, match="version"):
            session.decrypt(reencrypted)
        with pytest.raises(SchemeError, match="version"):
            decrypt_fast(fabric.scheme.group, reencrypted, fabric.bob_pk,
                         fabric.bob_keys)

    def test_matches_detects_rolled_keys(self, fabric):
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(message, POLICY)
        session = _session_for(fabric, ciphertext)
        assert session.matches(fabric.bob_pk, fabric.bob_keys)
        reencrypted, rolled_keys = self._roll_epoch(fabric, ciphertext)
        assert not session.matches(fabric.bob_pk, rolled_keys)
        assert not session.matches(fabric.bob_pk, {})

    def test_rebuilt_session_decrypts_reencrypted(self, fabric):
        message = fabric.scheme.random_message()
        ciphertext = fabric.owner.encrypt(message, POLICY)
        reencrypted, rolled_keys = self._roll_epoch(fabric, ciphertext)
        fresh = DecryptionSession(fabric.scheme.group, reencrypted,
                                  fabric.bob_pk, rolled_keys)
        cold = decrypt_fast(fabric.scheme.group, reencrypted,
                            fabric.bob_pk, rolled_keys)
        assert fresh.decrypt(reencrypted).to_bytes() == cold.to_bytes()
        assert fresh.decrypt(reencrypted) == message

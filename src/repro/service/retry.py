"""Retry policy, retry logging, and idempotent-request deduplication.

The client side uses :class:`RetryPolicy` (exponential backoff with
deterministic jitter, a bounded attempt budget) plus
:func:`is_retryable` to decide which failures are worth a reconnect —
transport-level breakage (:class:`repro.errors.TransportError`, dropped
connections, timeouts) and the server's typed
:class:`repro.errors.UnavailableError` are retryable; every other
application error is final. Each :class:`repro.service.client.
ServiceConnection` keeps a :class:`RetryLog` so tests (and the chaos
smoke cycle) can assert that every injected fault was seen and
recovered from.

The server side uses :class:`IdempotencyTable`, a bounded LRU of
``idempotency key -> cached reply``: a mutating request retried across
a reconnect replays the reply that the lost original earned, instead of
being applied a second time (exactly-once semantics for `store`,
`replace`, `delete`, and ReEncrypt).
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter, OrderedDict

from repro.errors import TransportError, UnavailableError

#: Exception types a retry can fix: the connection broke (OSError covers
#: ConnectionError and friends), the peer vanished mid-frame
#: (IncompleteReadError is an EOFError), the reply timed out or was
#: garbled (TransportError), or the server said "retry later"
#: (UnavailableError). Everything else is a final answer.
RETRYABLE_EXCEPTIONS = (
    OSError,
    EOFError,
    TimeoutError,
    TransportError,
    UnavailableError,
)


def is_retryable(exc: BaseException) -> bool:
    """Whether a failed request may be re-sent on a fresh connection."""
    return isinstance(exc, RETRYABLE_EXCEPTIONS)


def new_idempotency_key() -> str:
    """A fresh client-generated key for one logical mutation."""
    return os.urandom(16).hex()


class RetryPolicy:
    """Exponential backoff with jitter and a bounded attempt budget.

    ``attempt`` is 1-based: ``backoff(1)`` is the delay after the first
    failure. With a seeded ``rng`` the jitter — and therefore the whole
    retry schedule — is deterministic, which the fault-injection tests
    rely on.

    The policy object carries the *parameters*; the walk state of one
    request's failure sequence (the decorrelated previous delay, the
    deadline anchor) lives in a :class:`RetrySequence`. Calling
    :meth:`backoff`/:meth:`deadline_overrun` directly on the policy uses
    a built-in default sequence — exactly the pre-pipelining behaviour,
    correct as long as only one request retries at a time. Pipelined
    clients run many requests' retry loops concurrently, so each takes
    its own :meth:`sequence`.

    Two jitter shapes:

    * the default multiplies the fixed ``base * multiplier**k`` ladder
      by ``1 ± jitter`` — fine for one client, but every client that
      fails at the same moment climbs the *same* ladder, so a fleet of
      replicas failing over from one dead node re-converges on it in
      synchronized waves (the ±25% wobble never de-phases the herd);
    * ``decorrelated=True`` uses decorrelated jitter: each delay is
      drawn uniformly from ``[base, 3 * previous delay]`` (capped at
      ``max_delay``), so concurrent retriers spread across the whole
      window instead of thundering together, while the expected delay
      still grows geometrically. The cluster client's failover
      connections default to this shape, one independently-seeded
      policy per node.
    """

    def __init__(self, *, max_attempts: int = 5, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.25, decorrelated: bool = False,
                 deadline: float = None, rng: random.Random = None,
                 clock=None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.decorrelated = decorrelated
        #: Total wall-clock budget (seconds) for one request's retry
        #: sequence, on top of the per-attempt count. ``None`` = no
        #: deadline. Under adversarial delay injection every attempt
        #: can eat a full client timeout, so a per-attempt budget alone
        #: lets failover storms retry for minutes; the deadline bounds
        #: the whole sequence.
        self.deadline = deadline
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock if clock is not None else time.monotonic
        self._default_sequence = RetrySequence(self)

    def sequence(self) -> "RetrySequence":
        """A fresh per-request failure sequence over this policy."""
        return RetrySequence(self)

    def attempts_left(self, attempt: int) -> bool:
        """Whether another attempt fits the budget after ``attempt``."""
        return attempt < self.max_attempts

    def deadline_overrun(self, next_delay: float = 0.0) -> bool:
        """Whether sleeping ``next_delay`` would land past the deadline
        (on the policy's built-in default sequence)."""
        return self._default_sequence.deadline_overrun(next_delay)

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep after the ``attempt``-th failure (on the
        policy's built-in default sequence)."""
        return self._default_sequence.backoff(attempt)


class RetrySequence:
    """One request's retry state over a shared :class:`RetryPolicy`.

    Jitter draws still come from the policy's single ``rng`` (so a
    seeded policy keeps a deterministic *stream* of delays), but the
    decorrelated-jitter walk and the wall-clock deadline anchor are
    per-sequence: two pipelined requests retrying concurrently each get
    their own deadline measured from their own first failure, instead
    of corrupting each other's walk state.
    """

    __slots__ = ("policy", "_previous_delay", "_deadline_start")

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self._previous_delay = None  # decorrelated jitter's walk state
        self._deadline_start = None  # wall-clock anchor of the sequence

    @property
    def deadline(self):
        return self.policy.deadline

    def attempts_left(self, attempt: int) -> bool:
        """Whether another attempt fits the budget after ``attempt``."""
        return attempt < self.policy.max_attempts

    def deadline_overrun(self, next_delay: float = 0.0) -> bool:
        """Whether sleeping ``next_delay`` would land past the deadline.

        The clock anchors at the first failure of a sequence (see
        :meth:`backoff`, which restarts it whenever ``attempt <= 1``,
        exactly like the decorrelated walk), so the deadline measures
        the whole retry sequence for one request, not the process
        lifetime.
        """
        policy = self.policy
        if policy.deadline is None:
            return False
        if self._deadline_start is None:
            self._deadline_start = policy.clock()
        elapsed = policy.clock() - self._deadline_start
        return elapsed + next_delay > policy.deadline

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep after the ``attempt``-th failure."""
        policy = self.policy
        if attempt <= 1 or self._deadline_start is None:
            # A new failure sequence re-anchors the wall-clock budget.
            self._deadline_start = policy.clock()
        if policy.decorrelated:
            if attempt <= 1 or self._previous_delay is None:
                # A new failure sequence restarts the walk at the base.
                self._previous_delay = policy.base_delay
            delay = min(
                policy.max_delay,
                policy.rng.uniform(policy.base_delay,
                                   max(policy.base_delay,
                                       3.0 * self._previous_delay)),
            )
            self._previous_delay = delay
            return max(0.0, delay)
        delay = min(policy.max_delay,
                    policy.base_delay * policy.multiplier ** (attempt - 1))
        if policy.jitter:
            delay *= 1.0 + policy.jitter * (2.0 * policy.rng.random() - 1.0)
        return max(0.0, delay)


class RetryLog:
    """A flat, append-only trail of everything the retry layer did."""

    def __init__(self):
        self.entries = []

    def note(self, event: str, request: str, *, attempt: int = 0,
             cause: str = "", delay: float = 0.0) -> None:
        self.entries.append({
            "event": event,        # retry | discard | exhausted | fatal
            "request": request,
            "attempt": attempt,
            "cause": cause,
            "delay": round(delay, 4),
        })

    def events(self, event: str) -> list:
        return [e for e in self.entries if e["event"] == event]

    def counts(self) -> Counter:
        return Counter(e["event"] for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


class IdempotencyTable:
    """Bounded LRU of idempotency key -> ``(reply type, reply body)``.

    The bound keeps the table from growing with traffic; a key only
    needs to survive for the client's retry window, so an LRU of a few
    thousand entries is plenty even under heavy load.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = max(1, max_entries)
        self._replies = OrderedDict()
        self.hits = 0

    def get(self, key: str):
        """The cached reply for a replayed key, or ``None``."""
        reply = self._replies.get(key)
        if reply is not None:
            self._replies.move_to_end(key)
            self.hits += 1
        return reply

    def put(self, key: str, reply: tuple) -> None:
        self._replies[key] = reply
        self._replies.move_to_end(key)
        while len(self._replies) > self.max_entries:
            self._replies.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return key in self._replies

    def __len__(self) -> int:
        return len(self._replies)

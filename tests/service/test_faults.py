"""Fault-tolerance suite: chaos proxy, retry/idempotency, crash recovery.

Covers the ISSUE tentpole end to end — seeded fault injection through
:class:`ChaosProxy`, retry with reconnect + re-HELLO, exactly-once
mutations via the server's idempotency table, read-only degradation,
the HEALTH heartbeat — plus the satellites: the ``_roundtrip`` timeout
desync regression, the HELLO frame cap, and crash-recovery invariants
checked across a real process kill.
"""

import asyncio
import random
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import (
    ProtocolError,
    StorageError,
    TransportError,
    UnavailableError,
)
from repro.service import protocol
from repro.service.client import BaseClient, OwnerClient, ServiceConnection
from repro.service.faults import ChaosProxy, FaultSpec
from repro.service.protocol import MessageType
from repro.service.retry import (
    IdempotencyTable,
    RetryPolicy,
    is_retryable,
)
from repro.service.smoke import run_smoke
from repro.service.store import RecordStore

from .conftest import run, start_service

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

DISRUPTIVE = ("drop", "delay", "corrupt", "truncate")


def make_connection(group, host, port, *, role="user", name="user:bob",
                    retry=None, timeout=2.0):
    return ServiceConnection(group, host, port, role=role, name=name,
                             retry=retry, timeout=timeout)


async def start_proxied(group, root, *, schedule=None, spec=None, seed=0,
                        **kwargs):
    service = await start_service(group, root, **kwargs)
    proxy = ChaosProxy(service.host, service.port, spec=spec, seed=seed,
                       schedule=schedule)
    await proxy.start()
    return service, proxy


def quick_retry(attempts=6, seed=0):
    """A fast deterministic policy so tests never sleep for real."""
    return RetryPolicy(max_attempts=attempts, base_delay=0.01,
                       max_delay=0.05, rng=random.Random(seed))


# -- retry policy / classification units --------------------------------------

def test_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.0)
    delays = [policy.backoff(n) for n in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_jitter_is_deterministic_with_seeded_rng():
    a = RetryPolicy(jitter=0.5, rng=random.Random(42))
    b = RetryPolicy(jitter=0.5, rng=random.Random(42))
    assert [a.backoff(n) for n in range(1, 8)] \
        == [b.backoff(n) for n in range(1, 8)]


def test_attempt_budget():
    policy = RetryPolicy(max_attempts=3)
    assert policy.attempts_left(1) and policy.attempts_left(2)
    assert not policy.attempts_left(3)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_retryable_classification():
    assert is_retryable(ConnectionResetError())
    assert is_retryable(asyncio.IncompleteReadError(b"", 4))
    assert is_retryable(TimeoutError())
    assert is_retryable(TransportError("garbled"))
    assert is_retryable(UnavailableError("read-only"))
    assert not is_retryable(StorageError("no record"))
    assert not is_retryable(ProtocolError("preset mismatch"))


def test_idempotency_table_lru_and_hits():
    table = IdempotencyTable(max_entries=2)
    table.put("a", (MessageType.OK, b""))
    table.put("b", (MessageType.OK, b""))
    assert table.get("a") == (MessageType.OK, b"")  # refreshes 'a'
    table.put("c", (MessageType.OK, b""))           # evicts 'b'
    assert "b" not in table
    assert "a" in table and "c" in table
    assert len(table) == 2
    assert table.hits == 1
    assert table.get("b") is None


# -- satellite: timeout desync regression -------------------------------------

async def _laggy_server(first_delay):
    """A protocol-speaking v1 server that answers the first request late."""
    state = {"first": True}

    async def handle(reader, writer):
        _, body = await protocol.read_frame(reader)
        hello = protocol.decode_json(body)
        await protocol.write_frame(
            writer, MessageType.HELLO_ACK,
            protocol.encode_json({"version": 1, "preset": hello["preset"],
                                  "server": "laggy"}),
        )
        try:
            while True:
                _, body = await protocol.read_frame(reader)
                if state["first"]:
                    state["first"] = False
                    await asyncio.sleep(first_delay)
                await protocol.write_frame(writer, MessageType.PONG, body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass

    return await asyncio.start_server(handle, "127.0.0.1", 0)


def test_timed_out_connection_is_closed_not_reused(group):
    """A late reply must never be consumed as the next request's answer."""
    async def body():
        server = await _laggy_server(first_delay=0.4)
        host, port = server.sockets[0].getsockname()[:2]
        conn = make_connection(group, host, port, timeout=0.1)
        await conn.connect()
        assert conn.version == 1  # the stale-reply trap needs v1 framing
        try:
            with pytest.raises(asyncio.TimeoutError):
                await conn.request(MessageType.PING, b"first",
                                   expect=MessageType.PONG)
            # The connection was marked broken, so the next request
            # refuses to run instead of reading the late "first" PONG.
            assert not conn.connected
            with pytest.raises(TransportError, match="not open"):
                await conn.request(MessageType.PING, b"second",
                                   expect=MessageType.PONG)
        finally:
            await conn.close()
            server.close()
            await server.wait_closed()

    run(body())


def test_timed_out_request_recovers_with_retry(group):
    async def body():
        server = await _laggy_server(first_delay=0.4)
        host, port = server.sockets[0].getsockname()[:2]
        conn = make_connection(group, host, port, timeout=0.1,
                               retry=quick_retry())
        await conn.connect()
        try:
            _, reply = await conn.request(MessageType.PING, b"payload",
                                          expect=MessageType.PONG)
        finally:
            await conn.close()
            server.close()
            await server.wait_closed()
        return reply, conn.retry_log

    reply, log = run(body())
    assert reply == b"payload"
    retries = log.events("retry")
    assert retries and "TimeoutError" in retries[0]["cause"]


# -- satellite: HELLO frame cap -----------------------------------------------

def test_oversized_hello_gets_typed_error(group, store_root):
    async def body():
        service = await start_service(group, store_root)
        reader, writer = await asyncio.open_connection(
            service.host, service.port
        )
        try:
            await protocol.write_frame(
                writer, MessageType.HELLO, b"x" * (2 * protocol.HELLO_MAX_BYTES)
            )
            msg_type, body_raw = await protocol.read_frame(reader)
            assert msg_type is MessageType.ERROR
            with pytest.raises(ProtocolError, match="maximum"):
                protocol.raise_error(body_raw)
        finally:
            writer.close()
            await service.stop()

    run(body())


def test_reasonable_hello_still_fits_under_the_cap(group, store_root):
    async def body():
        service = await start_service(group, store_root)
        conn = make_connection(group, service.host, service.port)
        try:
            await conn.connect()
            assert conn.version == max(protocol.PROTOCOL_VERSIONS)
        finally:
            await conn.close()
            await service.stop()

    run(body())


# -- injected faults, one at a time -------------------------------------------

def test_dropped_reply_without_retry_raises(group, store_root):
    async def body():
        # Frame 0 is the HELLO_ACK; frame 1 (first PONG) is dropped.
        service, proxy = await start_proxied(group, store_root,
                                             schedule={1: "drop"})
        conn = make_connection(group, proxy.host, proxy.port)
        await conn.connect()
        try:
            with pytest.raises(asyncio.IncompleteReadError):
                await conn.request(MessageType.PING, b"x",
                                   expect=MessageType.PONG)
            assert not conn.connected
        finally:
            await conn.close()
            await proxy.stop()
            await service.stop()
        return proxy.injected

    injected = run(body())
    assert [f["fault"] for f in injected] == ["drop"]


def test_corrupted_reply_is_transport_error_then_recovers(group, store_root):
    async def body():
        service, proxy = await start_proxied(group, store_root,
                                             schedule={1: "corrupt"})
        conn = make_connection(group, proxy.host, proxy.port,
                               retry=quick_retry())
        await conn.connect()
        try:
            _, reply = await conn.request(MessageType.PING, b"x",
                                          expect=MessageType.PONG)
        finally:
            await conn.close()
            await proxy.stop()
            await service.stop()
        return reply, conn.retry_log

    reply, log = run(body())
    assert reply == b"x"
    assert any("garbled" in e["cause"] for e in log.events("retry"))


def test_truncated_reply_recovers(group, store_root):
    async def body():
        service, proxy = await start_proxied(group, store_root,
                                             schedule={1: "truncate"})
        conn = make_connection(group, proxy.host, proxy.port,
                               retry=quick_retry())
        await conn.connect()
        try:
            _, reply = await conn.request(MessageType.PING, b"x",
                                          expect=MessageType.PONG)
        finally:
            await conn.close()
            await proxy.stop()
            await service.stop()
        return reply, conn.retry_log

    reply, log = run(body())
    assert reply == b"x"
    assert log.events("retry")


def test_duplicated_reply_is_discarded_by_seq(group, store_root):
    async def body():
        service, proxy = await start_proxied(group, store_root,
                                             schedule={1: "duplicate"})
        conn = make_connection(group, proxy.host, proxy.port)
        await conn.connect()
        try:
            _, first = await conn.request(MessageType.PING, b"one",
                                          expect=MessageType.PONG)
            # The duplicate of "one" is still buffered; without seq
            # correlation it would be read as the answer to "two".
            _, second = await conn.request(MessageType.PING, b"two",
                                           expect=MessageType.PONG)
        finally:
            await conn.close()
            await proxy.stop()
            await service.stop()
        return first, second, conn.retry_log

    first, second, log = run(body())
    assert first == b"one"
    assert second == b"two"
    discards = log.events("discard")
    assert discards and "stale reply" in discards[0]["cause"]


# -- exactly-once mutations ---------------------------------------------------

def test_mutation_retried_across_reconnect_applies_once(group, scenario,
                                                        store_root):
    """The acceptance-criteria dedup test: drop the OK of a STORE_RECORD
    after the server applied it; the client's retry (fresh connection,
    same idempotency key) must be answered from the dedup table instead
    of failing with 'already exists'."""
    async def body():
        service, proxy = await start_proxied(group, store_root,
                                             schedule={1: "drop"})
        conn = make_connection(group, proxy.host, proxy.port, role="owner",
                               name="owner:alice", retry=quick_retry())
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            await owner.upload("r", {"note": (b"exactly once",
                                              "hospital:doctor")})
        finally:
            await owner.close()
            await proxy.stop()
            await service.stop()
        return service, proxy, conn.retry_log

    service, proxy, log = run(body())
    assert [f["fault"] for f in proxy.injected] == ["drop"]
    assert [e["request"] for e in log.events("retry")] == ["STORE_RECORD"]
    assert service.store.record_ids() == ["r"]  # applied exactly once
    assert service.dedup.hits == 1              # the retry was a replay


def test_replayed_key_returns_cached_reply(group, scenario, store_root):
    """Same idempotency key, same connection: the second send replays
    the cached OK instead of raising 'already exists'."""
    async def body():
        service = await start_service(group, store_root)
        conn = make_connection(group, service.host, service.port,
                               role="owner", name="owner:alice")
        await conn.connect()
        record = scenario.make_record("r")
        wire = protocol.wrap_idempotency("key-1", record.to_bytes())
        try:
            first = await conn._roundtrip(MessageType.STORE_RECORD, wire)
            second = await conn._roundtrip(MessageType.STORE_RECORD, wire)
            # A *different* key is a genuinely new request and must fail.
            other = protocol.wrap_idempotency("key-2", record.to_bytes())
            third = await conn._roundtrip(MessageType.STORE_RECORD, other)
        finally:
            await conn.close()
            await service.stop()
        return service, first, second, third

    service, first, second, third = run(body())
    assert first == (MessageType.OK, b"")
    assert second == (MessageType.OK, b"")
    assert third[0] is MessageType.ERROR
    assert service.dedup.hits == 1


def test_cached_application_error_is_replayed(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        conn = make_connection(group, service.host, service.port)
        await conn.connect()
        wire = protocol.wrap_idempotency(
            "del-1", protocol.encode_json({"record": "ghost"})
        )
        try:
            first = await conn._roundtrip(MessageType.DELETE_RECORD, wire)
            second = await conn._roundtrip(MessageType.DELETE_RECORD, wire)
        finally:
            await conn.close()
            await service.stop()
        return first, second, service.dedup.hits

    first, second, hits = run(body())
    assert first[0] is MessageType.ERROR and second[0] is MessageType.ERROR
    assert first[1] == second[1]
    assert hits == 1


# -- read-only degradation & health -------------------------------------------

def test_read_only_server_refuses_writes_serves_reads(group, scenario,
                                                      store_root):
    async def body():
        service = await start_service(group, store_root)
        service.store.put(scenario.make_record("r"))
        await service.stop()

        reborn = await start_service(group, store_root, read_only=True)
        conn = make_connection(group, reborn.host, reborn.port, role="owner",
                               name="owner:alice")
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            health = await owner.health()
            assert health["status"] == "read-only"
            with pytest.raises(UnavailableError, match="read-only"):
                await owner.upload("r2", {"note": (b"x", "hospital:doctor")})
            # Reads keep serving.
            assert await owner.list_records() == ["r"]
            assert await owner.read_own("r", "note") == b"plaintext body"
        finally:
            await owner.close()
            await reborn.stop()

    run(body())


def test_failing_disk_degrades_to_read_only(group, scenario, store_root):
    async def body():
        service = await start_service(group, store_root)
        service.store.put(scenario.make_record("r"))
        conn = make_connection(group, service.host, service.port,
                               role="owner", name="owner:alice")
        owner = OwnerClient(await conn.connect(), scenario.owner_core)

        def full_disk(blob):
            raise OSError(28, "No space left on device")

        service.store.blobs.put = full_disk
        try:
            with pytest.raises(UnavailableError, match="read-only"):
                await owner.upload("r2", {"note": (b"x", "hospital:doctor")})
            assert service.read_only
            health = await owner.health()
            assert health["status"] == "read-only"
            # Fetches keep serving from the intact store.
            assert await owner.read_own("r", "note") == b"plaintext body"
            # Operator fixes the disk and flips the mode back on. (The
            # owner's ledger burned the r2 ciphertext ids on the failed
            # try, so the re-upload uses a fresh record id.)
            del service.store.blobs.put
            service.read_only = False
            await owner.upload("r3", {"note": (b"y", "hospital:doctor")})
            listing = await owner.list_records()
        finally:
            await owner.close()
            await service.stop()
        return listing

    assert run(body()) == ["r", "r3"]


def test_unavailable_error_is_retried_until_exhausted(group, scenario,
                                                      store_root):
    async def body():
        service = await start_service(group, store_root, read_only=True)
        conn = make_connection(group, service.host, service.port,
                               role="owner", name="owner:alice",
                               retry=quick_retry(attempts=3))
        owner = OwnerClient(await conn.connect(), scenario.owner_core)
        try:
            with pytest.raises(UnavailableError):
                await owner.upload("r", {"note": (b"x", "hospital:doctor")})
        finally:
            await owner.close()
            await service.stop()
        return conn.retry_log

    log = run(body())
    assert len(log.events("retry")) == 2   # attempts 1 and 2 backed off
    assert len(log.events("exhausted")) == 1


def test_health_on_a_healthy_server(group, store_root):
    async def body():
        service = await start_service(group, store_root, name="nimbus")
        client = BaseClient(await make_connection(
            group, service.host, service.port
        ).connect())
        try:
            health = await client.health()
            stats = await client.stats()
        finally:
            await client.close()
            await service.stop()
        return health, stats

    health, stats = run(body())
    assert health == {"server": "nimbus", "status": "ok",
                      "read_only": False, "degraded": False, "records": 0,
                      "connections": 1, "workers": 0}
    assert stats["read_only"] is False
    assert stats["dedup_hits"] == 0


# -- chaos proxy determinism --------------------------------------------------

def _ping_workload(group, store_root, seed):
    async def body():
        spec = FaultSpec(drop=0.1, corrupt=0.08, truncate=0.05,
                         duplicate=0.1)
        service, proxy = await start_proxied(group, store_root, spec=spec,
                                             seed=seed)
        conn = make_connection(group, proxy.host, proxy.port,
                               retry=quick_retry(attempts=10, seed=seed))
        await conn.connect()
        try:
            for n in range(30):
                _, reply = await conn.request(
                    MessageType.PING, b"%d" % n, expect=MessageType.PONG
                )
                assert reply == b"%d" % n
        finally:
            await conn.close()
            await proxy.stop()
            await service.stop()
        return [(f["conn"], f["frame"], f["fault"]) for f in proxy.injected]

    return run(body())


def test_chaos_proxy_is_deterministic_per_seed(group, tmp_path):
    first = _ping_workload(group, tmp_path / "a", seed=13)
    second = _ping_workload(group, tmp_path / "b", seed=13)
    assert first == second
    assert first  # the seed actually injected something


# -- the acceptance smoke cycle under chaos -----------------------------------

def test_smoke_cycle_with_scheduled_faults(group, store_root):
    """Drops + a delay + one corrupted frame at fixed points: the cycle
    completes and every injected fault shows up in the retry log."""
    from repro.ec.params import TOY80

    async def body():
        service = await start_service(group, store_root)
        report = {}
        try:
            rc = await run_smoke(
                TOY80, service.host, service.port, seed=7,
                chaos=FaultSpec(delay_seconds=0.8), chaos_seed=0,
                chaos_schedule={3: "drop", 7: "delay",
                                11: "corrupt", 15: "drop"},
                timeout=0.4, report=report,
            )
        finally:
            await service.stop()
        return rc, report

    rc, report = run(body())
    assert rc == 0
    assert sorted(f["fault"] for f in report["injected"]) == \
        ["corrupt", "delay", "drop", "drop"]
    # Every injected fault is visible as a recovery in the retry log.
    retries = report["retry_counts"].get("retry", 0)
    assert retries >= len(report["injected"])


def test_smoke_cycle_under_seeded_chaos(group, store_root):
    from repro.ec.params import TOY80

    async def body():
        service = await start_service(group, store_root)
        spec = FaultSpec(drop=0.06, delay=0.04, corrupt=0.04,
                         truncate=0.03, duplicate=0.05, delay_seconds=1.0)
        report = {}
        try:
            rc = await run_smoke(TOY80, service.host, service.port, seed=7,
                                 chaos=spec, chaos_seed=1, timeout=0.5,
                                 report=report)
        finally:
            await service.stop()
        return rc, report

    rc, report = run(body())
    assert rc == 0
    fault_counts = report["fault_counts"]
    retry_counts = report["retry_counts"]
    assert sum(fault_counts.values()) > 0
    disruptive = sum(fault_counts.get(kind, 0) for kind in DISRUPTIVE)
    duplicates = fault_counts.get("duplicate", 0)
    # Each disruptive fault forced a logged retry; each duplicate a
    # logged discard (a duplicate may also surface as a retry when the
    # copy arrives garbled mid-recovery).
    assert retry_counts.get("retry", 0) >= disruptive
    assert retry_counts.get("discard", 0) + retry_counts.get("retry", 0) \
        >= disruptive + duplicates


# -- crash recovery across a real process kill --------------------------------

_CRASH_SCRIPT = r"""
import os, sys

src, root, mode = sys.argv[1], sys.argv[2], sys.argv[3]
sys.path.insert(0, src)

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.crypto.hybrid import seal
from repro.ec.params import TOY80
from repro.pairing.group import PairingGroup
from repro.service import store as store_mod
from repro.system.records import StoredComponent, StoredRecord

group = PairingGroup(TOY80, seed=0x5EED)
ca = CertificateAuthority(group)
aa = AttributeAuthority(group, "hospital", ["doctor"])
ca.register_authority("hospital")
owner = DataOwner(group, "alice")
ca.register_owner("alice")
aa.register_owner(owner.secret_key)
owner.learn_authority(aa.authority_public_key(), aa.public_attribute_keys())


def component(name, cid, text):
    session = group.random_gt()
    return StoredComponent(
        name=name,
        abe_ciphertext=owner.encrypt(session, "hospital:doctor",
                                     ciphertext_id=cid),
        data_ciphertext=seal(session, cid, text),
    )


store = store_mod.RecordStore(root, group)
old = StoredRecord(record_id="r", owner_id="alice",
                   components={"note": component("note", "r/note", b"old")})
store.put(old)
replacement = component("note", "r/note#v0", b"new")
new = old.with_component(replacement)
with open(os.path.join(root, "old.bin"), "wb") as fh:
    fh.write(old.to_bytes())
with open(os.path.join(root, "new.bin"), "wb") as fh:
    fh.write(new.to_bytes())

if mode == "mid-replace":
    # Die after the new blob landed, before the ref repoints.
    real_write = store_mod._atomic_write

    def crash_on_ref(directory, path, data):
        if path.parent.name == "refs":
            os._exit(3)
        real_write(directory, path, data)

    store_mod._atomic_write = crash_on_ref
elif mode == "mid-gc":
    # Die after the ref repointed, while collecting the old blob.
    def crash_on_delete(digest):
        os._exit(3)

    store.blobs.delete = crash_on_delete
else:
    raise SystemExit(f"unknown mode {mode!r}")

store.replace_component("r", replacement)
os._exit(9)  # the crash hook should have fired
"""


def _crash_run(tmp_path, mode):
    script = tmp_path / "crash.py"
    script.write_text(_CRASH_SCRIPT)
    root = tmp_path / "store"
    proc = subprocess.run(
        [sys.executable, str(script), SRC_DIR, str(root), mode],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 3, (proc.stdout, proc.stderr)
    return root


def test_process_killed_mid_replace_keeps_old_record(group, tmp_path):
    root = _crash_run(tmp_path, "mid-replace")
    store = RecordStore(root, group)
    # The ref still points at the old, digest-valid record.
    assert store.get("r").to_bytes() == (root / "old.bin").read_bytes()
    assert store.locate_ciphertext("r/note") == ("r", "note")
    report = store.check()
    assert not report["missing_blobs"] and not report["corrupt_blobs"]
    assert not report["index_mismatches"]
    # The only residue is the orphaned new blob, which gc reclaims.
    assert len(report["orphan_blobs"]) == 1
    assert store.gc() == report["orphan_blobs"]
    assert store.check()["ok"]
    assert store.get("r").to_bytes() == (root / "old.bin").read_bytes()


def test_process_killed_mid_gc_keeps_new_record(group, tmp_path):
    root = _crash_run(tmp_path, "mid-gc")
    store = RecordStore(root, group)
    # The replace completed: the ref resolves to the new record.
    assert store.get("r").to_bytes() == (root / "new.bin").read_bytes()
    assert store.locate_ciphertext("r/note#v0") == ("r", "note")
    report = store.check()
    assert not report["missing_blobs"] and not report["corrupt_blobs"]
    assert not report["index_mismatches"]
    # The uncollected old blob is the only residue.
    assert len(report["orphan_blobs"]) == 1
    assert store.gc() == report["orphan_blobs"]
    assert store.check()["ok"]


# -- decorrelated jitter ------------------------------------------------------

def test_decorrelated_backoff_walks_its_window_and_caps():
    policy = RetryPolicy(max_attempts=10, base_delay=0.05, max_delay=2.0,
                         decorrelated=True, rng=random.Random(7))
    previous = policy.base_delay
    for attempt in range(1, 10):
        delay = policy.backoff(attempt)
        assert policy.base_delay <= delay <= 2.0
        assert delay <= max(policy.base_delay, 3.0 * previous)
        previous = delay
    # A fresh failure sequence restarts the walk at the base, so the
    # first delay is never an inherited multi-second wait.
    assert policy.backoff(1) <= 3.0 * policy.base_delay


def test_decorrelated_backoff_is_deterministic_and_seed_dephased():
    def schedule(seed):
        policy = RetryPolicy(max_attempts=6, decorrelated=True,
                             rng=random.Random(seed))
        return [policy.backoff(attempt) for attempt in range(1, 6)]

    # Same seed, same schedule (tests depend on this); different seeds
    # de-phase — the point of per-node policies in the cluster client.
    assert schedule("0:node-0") == schedule("0:node-0")
    assert schedule("0:node-0") != schedule("0:node-1")


# -- chaos fleet --------------------------------------------------------------

def _fleet_ping_workload(group, root, *, specs, seed):
    """Two proxied upstreams, 15 pings each; returns injected-by-node."""
    from repro.service.faults import ChaosFleet

    async def body():
        services = [await start_service(group, root / f"n{i}")
                    for i in range(2)]
        fleet = ChaosFleet(
            {f"node-{i}": (service.host, service.port)
             for i, service in enumerate(services)},
            specs=specs, seed=seed,
        )
        await fleet.start()
        try:
            for name in ("node-0", "node-1"):
                host, port = fleet.address(name)
                conn = make_connection(
                    group, host, port,
                    retry=quick_retry(attempts=10, seed=f"{seed}:{name}"),
                )
                await conn.connect()
                try:
                    for n in range(15):
                        _, reply = await conn.request(
                            MessageType.PING, b"%d" % n,
                            expect=MessageType.PONG,
                        )
                        assert reply == b"%d" % n
                finally:
                    await conn.close()
            counts = fleet.fault_counts()
            injected = {
                name: [(f["frame"], f["fault"]) for f in faults]
                for name, faults in fleet.injected_by_node().items()
            }
        finally:
            await fleet.stop()
            for service in services:
                await service.stop()
        return counts, injected

    return run(body())


def test_chaos_fleet_fault_streams_are_independent(group, tmp_path):
    """Adding faults in front of node-0 must not shift node-1's stream:
    each proxy draws from its own ``{seed}:{name}`` RNG."""
    noisy = FaultSpec(drop=0.12, corrupt=0.08, truncate=0.05)
    _, only_zero = _fleet_ping_workload(
        group, tmp_path / "a", specs={"node-0": noisy}, seed=13)
    _, both = _fleet_ping_workload(
        group, tmp_path / "b",
        specs={"node-0": noisy, "node-1": noisy}, seed=13)

    assert only_zero["node-0"]          # the spec actually fired
    assert not only_zero["node-1"]      # absent spec = faithful proxy
    # node-0's stream is bit-for-bit identical whether or not node-1
    # has its own chaos.
    assert both["node-0"] == only_zero["node-0"]


def test_chaos_fleet_aggregates_fault_counts(group, tmp_path):
    noisy = FaultSpec(drop=0.12, corrupt=0.08, truncate=0.05)
    counts, injected = _fleet_ping_workload(
        group, tmp_path,
        specs={"node-0": noisy, "node-1": noisy}, seed=13)
    assert counts  # something fired across the fleet
    assert sum(counts.values()) == sum(
        len(faults) for faults in injected.values()
    )

"""Miller's algorithm for the reduced Tate pairing on type-A curves.

We compute ``f_{r,P}(φ(Q))`` where ``φ(x, y) = (-x, i·y)`` is the
distortion map into E(F_p²). Two structural facts make the loop cheap:

* the second argument's x-coordinate ``-x_Q`` lies in the *base* field, so
  every vertical-line evaluation lands in F_p^* and is annihilated by the
  final exponentiation ``(p² - 1)/r = (p - 1)·(p + 1)/r`` — this is the
  classic *denominator elimination* for even embedding degree;
* all slope computations happen on F_p-rational points, so the only F_p²
  work is accumulating the running Miller value.

The fast path runs the chain of tangent/chord lines in *Jacobian*
coordinates with no modular inversions at all: each line is stored as a
coefficient triple ``(A, B, C)`` meaning ``l(φ(Q)) = (A - B·x̄_Q) +
(C·y_Q)·i``, correct up to a factor in F_p^* (the cleared denominators),
which the final exponentiation annihilates for the same reason verticals
do. Because the triples depend only on the *first* pairing argument,
:func:`line_coefficients` doubles as the precomputation behind
:class:`repro.pairing.prepared.PreparedPairing`: pairing against a cached
first argument replays the stored lines and skips the whole chain walk.

Points of the order-``r`` subgroup never hit 2-torsion inside the loop
(``r`` is an odd prime), so the doubling step needs no special cases; the
only degenerate line is the final vertical when the addition step lands on
infinity, which we simply skip (it is a vertical, hence eliminated).
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.errors import MathError
from repro.math.field_ext import QuadraticExtension

# Step kinds inside a coefficient list: a doubling step squares the
# running Miller value before multiplying the line in; an addition step
# only multiplies.
_DOUBLE = 0
_ADD = 1


def line_coefficients(curve: SupersingularCurve, point: tuple,
                      order: int) -> list:
    """Line-coefficient triples of ``f_{order,point}``, inversion-free.

    Returns ``[(kind, A, B, C), ...]`` in evaluation order, where the line
    through the current chain point evaluates at ``φ(Q) = (-x_Q, y_Q·i)``
    to ``(A - B·(-x_Q % p)) + (C·y_Q)·i`` — up to an F_p^* factor killed
    by the final exponentiation. Depends only on ``point`` and ``order``,
    so the result can be cached and replayed against many second
    arguments (:class:`repro.pairing.prepared.PreparedPairing`).
    """
    if point is INFINITY:
        return []
    p = curve.p
    px, py = point
    tx_, ty_, tz_ = px, py, 1  # the chain point T in Jacobian coordinates
    steps = []
    append = steps.append
    for bit_index in range(order.bit_length() - 2, -1, -1):
        # Doubling step: tangent line at T.
        if tz_ == 0 or ty_ == 0:  # pragma: no cover - unreachable for odd order
            break
        x, y, z = tx_, ty_, tz_
        zz = z * z % p
        yy = y * y % p
        s = 4 * x * yy % p
        m = (3 * x * x + zz * zz) % p  # a = 1 contributes Z⁴
        nx = (m * m - 2 * s) % p
        nz = 2 * y * z % p
        ny = (m * (s - nx) - 8 * yy * yy) % p
        append((
            _DOUBLE,
            (m * x - 2 * yy) % p,   # A
            m * zz % p,             # B
            nz * zz % p,            # C — the cleared denominator 2Y·Z³
        ))
        tx_, ty_, tz_ = nx, ny, nz

        if (order >> bit_index) & 1:
            # Addition step: chord through T and P (mixed coordinates).
            x, y, z = tx_, ty_, tz_
            zz = z * z % p
            zzz = zz * z % p
            u2 = px * zz % p
            s2 = py * zzz % p
            h = (u2 - x) % p
            r = (s2 - y) % p
            if h == 0:
                if r == 0:
                    # T == P: tangent line, and T ← 2T.
                    yy = y * y % p
                    s = 4 * x * yy % p
                    m = (3 * x * x + zz * zz) % p
                    nx = (m * m - 2 * s) % p
                    nz = 2 * y * z % p
                    ny = (m * (s - nx) - 8 * yy * yy) % p
                    append((
                        _ADD,
                        (m * x - 2 * yy) % p,
                        m * zz % p,
                        nz * zz % p,
                    ))
                    tx_, ty_, tz_ = nx, ny, nz
                    continue
                # T + P = O: the line is the vertical x - px, eliminated;
                # the chain is exhausted (only happens at the loop end for
                # order-r points).
                break
            append((
                _ADD,
                (r * x - y * h) % p,    # A
                r * zz % p,             # B
                zzz * h % p,            # C — the cleared denominator H·Z³
            ))
            hh = h * h % p
            hhh = h * hh % p
            v = x * hh % p
            nx = (r * r - hhh - 2 * v) % p
            ny = (r * (v - nx) - y * hhh) % p
            tx_, ty_, tz_ = nx, ny, z * h % p
    return steps


def evaluate_line_steps(ext: QuadraticExtension, steps: list,
                        q_point: tuple) -> tuple:
    """Replay cached line coefficients against ``φ(q_point)``.

    This is the whole per-pairing work once the first argument's
    coefficients exist: two F_p multiplications plus one F_p² square/mul
    per step, no inversions.
    """
    if q_point is INFINITY or not steps:
        return ext.one
    p = ext.p
    xq, yq = q_point
    x_eval = -xq % p
    # The F_p² square/multiply are inlined (Karatsuba over locals, no
    # tuples between steps): per-step call overhead was the measured
    # bottleneck of batch re-encryption's pairing replay. Each line
    # component takes exactly one reduction — the lazy-reduction shape
    # the Montgomery variant below shares. Bit-identical to
    # ``mul(square(f), line)`` per step.
    fr, fi = 1, 0
    for kind, a, b, c in steps:
        lr = (a - b * x_eval) % p
        li = c * yq % p
        if kind:  # _ADD: f · line
            sa, sb = fr, fi
        else:     # _DOUBLE: f² · line
            sa = (fr + fi) * (fr - fi) % p
            sb = 2 * fr * fi % p
        ac = sa * lr
        bd = sb * li
        cross = (sa + sb) * (lr + li) - ac - bd
        fr = (ac - bd) % p
        fi = cross % p
    return (fr, fi)


def evaluate_line_steps_many(ext: QuadraticExtension, steps: list,
                             q_points) -> list:
    """Replay one cached coefficient list against MANY second arguments.

    Step-outer batching: each ``(kind, A, B, C)`` triple is unpacked
    once per *step* instead of once per (step, point) pair, and the
    accumulators live in flat parallel arrays — the per-step Python
    overhead of :func:`evaluate_line_steps` amortizes across the whole
    batch. Entry ``i`` is bit-identical to
    ``evaluate_line_steps(ext, steps, q_points[i])``: the arithmetic
    per point is the same operation sequence, only the loop nesting is
    transposed.
    """
    q_points = list(q_points)
    results = [None] * len(q_points)
    live = []
    for index, q_point in enumerate(q_points):
        if q_point is INFINITY or not steps:
            results[index] = ext.one
        else:
            live.append(index)
    if not live:
        return results
    p = ext.p
    x_evals = [-q_points[i][0] % p for i in live]
    yqs = [q_points[i][1] for i in live]
    count = len(live)
    frs = [1] * count
    fis = [0] * count
    indices = range(count)
    for kind, a, b, c in steps:
        if kind:  # _ADD: f · line
            for j in indices:
                lr = (a - b * x_evals[j]) % p
                li = c * yqs[j] % p
                sa = frs[j]
                sb = fis[j]
                ac = sa * lr
                bd = sb * li
                cross = (sa + sb) * (lr + li) - ac - bd
                frs[j] = (ac - bd) % p
                fis[j] = cross % p
        else:     # _DOUBLE: f² · line
            for j in indices:
                lr = (a - b * x_evals[j]) % p
                li = c * yqs[j] % p
                fr = frs[j]
                fi = fis[j]
                sa = (fr + fi) * (fr - fi) % p
                sb = 2 * fr * fi % p
                ac = sa * lr
                bd = sb * li
                cross = (sa + sb) * (lr + li) - ac - bd
                frs[j] = (ac - bd) % p
                fis[j] = cross % p
    for position, index in enumerate(live):
        results[index] = (frs[position], fis[position])
    return results


def mont_line_steps(steps: list, mont) -> list:
    """Pre-convert cached line coefficients into the Montgomery domain.

    Done once per prepared first argument; replays then run REDC-only
    (:func:`evaluate_line_steps_mont`).
    """
    to_mont = mont.to_mont
    return [(kind, to_mont(a), to_mont(b), to_mont(c))
            for kind, a, b, c in steps]


def evaluate_line_steps_mont(ext: QuadraticExtension, mont_steps: list,
                             q_point: tuple, mont) -> tuple:
    """Montgomery-domain replay; returns a *canonical* F_p² element.

    ``mont_steps`` holds ``(kind, Â, B̂, Ĉ)`` with coefficients already
    in the domain; the second argument converts on entry, the
    accumulator leaves the domain only on return — the conversion
    boundary of the pairing fast path. Bit-identical to
    :func:`evaluate_line_steps` on the same inputs.
    """
    if q_point is INFINITY or not mont_steps:
        return ext.one
    p = ext.p
    redc = mont.redc
    xq, yq = q_point
    x_eval = mont.to_mont(-xq % p)
    yq_m = mont.to_mont(yq)
    fr, fi = mont.one, 0
    for kind, a, b, c in mont_steps:
        lr = (a - redc(b * x_eval)) % p
        li = redc(c * yq_m)
        if kind:
            sa, sb = fr, fi
        else:
            # + p bias keeps the REDC input non-negative (operand < 2p,
            # inside the context's lazy-reduction headroom).
            sa = redc((fr + fi) * (fr - fi + p))
            sb = redc(2 * fr * fi)
        ac = redc(sa * lr)
        bd = redc(sb * li)
        cross = redc((sa + sb) * (lr + li)) - ac - bd
        fr = (ac - bd) % p
        fi = cross % p
    return (redc(fr), redc(fi))


def miller_loop(curve: SupersingularCurve, ext: QuadraticExtension,
                point: tuple, q_point: tuple, order: int) -> tuple:
    """Evaluate f_{order,point} at φ(q_point); returns an F_p² element.

    ``point`` and ``q_point`` are affine points in E(F_p)[r]; the
    distortion map is applied internally to ``q_point``. The result is
    the affine Miller value up to a factor in F_p^*, which the final
    exponentiation removes — so reduced pairings are bit-identical to the
    affine reference :func:`miller_loop_affine`.
    """
    if point is INFINITY or q_point is INFINITY:
        return ext.one
    steps = line_coefficients(curve, point, order)
    mont = ext.base.mont
    if mont is not None:
        return evaluate_line_steps_mont(ext, mont_line_steps(steps, mont),
                                        q_point, mont)
    return evaluate_line_steps(ext, steps, q_point)


def miller_loop_affine(curve: SupersingularCurve, ext: QuadraticExtension,
                       point: tuple, q_point: tuple, order: int) -> tuple:
    """Reference implementation: affine chain with per-step inversions.

    Kept as the cross-check oracle for the inversion-free fast path (and
    for readers following the textbook algorithm). One modular inversion
    per chain step makes it ~4× slower at 512-bit sizes.
    """
    if point is INFINITY or q_point is INFINITY:
        return ext.one
    p = curve.p
    xq, yq = q_point
    x_eval = -xq % p  # x-coordinate of φ(Q), in F_p

    f = ext.one
    tx, ty = point
    px, py = point

    # Process bits of `order` from the second-most-significant down.
    for bit_index in range(order.bit_length() - 2, -1, -1):
        # Doubling step: line tangent at T, evaluated at φ(Q).
        slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
        # l(X, Y) = Y - ty - slope*(X - tx) at (x_eval, yq*i):
        real = (-ty - slope * (x_eval - tx)) % p
        f = ext.mul(ext.square(f), (real, yq))
        # T = 2T (affine doubling reusing the slope).
        new_x = (slope * slope - 2 * tx) % p
        ty = (slope * (tx - new_x) - ty) % p
        tx = new_x

        if (order >> bit_index) & 1:
            if tx == px and (ty + py) % p == 0:
                # T + P = O: the line is the vertical x - px, eliminated.
                tx, ty = None, None  # pragma: no cover - only at loop end
                break
            if tx == px and ty == py:
                slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
            else:
                slope = (py - ty) * pow(px - tx, -1, p) % p
            real = (-ty - slope * (x_eval - tx)) % p
            f = ext.mul(f, (real, yq))
            new_x = (slope * slope - tx - px) % p
            ty = (slope * (tx - new_x) - ty) % p
            tx = new_x
    return f


def final_exponentiation(ext: QuadraticExtension, value: tuple, order: int) -> tuple:
    """Raise a Miller value to ``(p² - 1)/r``, landing in the order-r subgroup.

    Uses the factorization ``(p² - 1)/r = (p - 1) · ((p + 1)/r)``; the
    first factor is a cheap Frobenius-and-divide (``x^p = conj(x)``), the
    second a short exponentiation (``(p + 1)/r`` is the cofactor ``h``).
    This factor ``p - 1`` is also what annihilates the F_p^* denominators
    the projective fast path leaves in its Miller values.
    """
    p = ext.p
    # value^(p-1) = conj(value) / value.
    powered = ext.mul(ext.conjugate(value), ext.inv(value))
    return ext.pow(powered, (p + 1) // order)


def final_exponentiation_many(ext: QuadraticExtension, values: list,
                              order: int) -> list:
    """Batch :func:`final_exponentiation` sharing one modular inversion.

    The F_p² inversion inside the ``p - 1`` factor routes through a single
    base-field inversion of the norm ``a² + b²``; Montgomery batch
    inversion (:func:`repro.math.integers.batch_invmod`) replaces the
    ``n`` norm inversions with one inversion plus ``3(n-1)``
    multiplications. Modular inverses are unique, so each result is
    bit-identical to the per-value computation.
    """
    from repro.math.integers import batch_invmod

    values = list(values)
    if not values:
        return []
    p = ext.p
    norms = [ext.norm(value) for value in values]
    if any(n == 0 for n in norms):
        raise MathError("0 is not invertible in F_p²")
    norm_invs = batch_invmod(norms, p)
    cofactor = (p + 1) // order
    powereds = []
    for value, ninv in zip(values, norm_invs):
        a, b = value
        inverse = (a * ninv % p, -b * ninv % p)
        powereds.append(ext.mul(ext.conjugate(value), inverse))
    if ext.base.mont is not None:
        return [ext.pow(powered, cofactor) for powered in powereds]
    return _pow_many_shared_exponent(ext, powereds, cofactor)


def _pow_many_shared_exponent(ext: QuadraticExtension, values: list,
                              exponent: int) -> list:
    """``[v ** exponent for v in values]``, vectorized across the batch.

    MSB-first square-and-multiply transposed step-outer: every exponent
    bit squares (and, when set, multiplies) ALL accumulators in one flat
    inlined-Karatsuba loop, removing the per-operation call overhead of
    ``ext.pow``. Modular exponentiation has a unique result whatever
    the addition chain, so each entry is bit-identical to
    ``ext.pow(values[i], exponent)``.
    """
    if exponent == 0:
        return [ext.one for _ in values]
    if exponent < 0:
        raise MathError("negative exponents need an explicit inverse")
    p = ext.p
    frs = [value[0] for value in values]
    fis = [value[1] for value in values]
    base_rs = list(frs)
    base_is = list(fis)
    indices = range(len(values))
    for bit_index in range(exponent.bit_length() - 2, -1, -1):
        for j in indices:
            fr = frs[j]
            fi = fis[j]
            frs[j] = (fr + fi) * (fr - fi) % p
            fis[j] = 2 * fr * fi % p
        if (exponent >> bit_index) & 1:
            for j in indices:
                sa = frs[j]
                sb = fis[j]
                br = base_rs[j]
                bi = base_is[j]
                ac = sa * br
                bd = sb * bi
                cross = (sa + sb) * (br + bi) - ac - bd
                frs[j] = (ac - bd) % p
                fis[j] = cross % p
    return list(zip(frs, fis))

"""Pirretti et al. timed re-keying (CCS 2006) — the expiration baseline.

Reference [26] of the paper: "a timed rekeying mechanism, where an
expiration time is set for each attribute. This approach requires the
user to periodically go to the authority for key update, which incurs
high overhead. … user's secret keys can only be disabled at a designated
time and thus the attribute revocation cannot take immediate effect."

We realize it the standard way on top of any attribute-based layer:
every attribute is *epoch-qualified* (``doctor@17``), owners encrypt
under the current epoch, and users must refresh their keys every epoch.
Revocation = simply not re-issuing at the next rollover, so:

* a revoked user keeps access until the epoch ends (non-immediacy — the
  exact weakness the reproduced paper fixes with update keys + proxy
  re-encryption);
* every user pays a full key refresh every epoch whether or not anything
  was revoked (the "high overhead").

Both properties are demonstrated by tests and quantified in the
revocation ablation bench.
"""

from __future__ import annotations

from repro.baselines.bsw import BswCiphertext, BswScheme, BswUserKey
from repro.errors import SchemeError
from repro.pairing.group import GTElement
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold
from repro.policy.parser import parse


def epoch_qualify(attribute: str, epoch: int) -> str:
    """``doctor`` at epoch 17 becomes ``doctor@17``."""
    if "@" in attribute:
        raise SchemeError(f"attribute {attribute!r} is already epoch-qualified")
    return f"{attribute}@{epoch}"


def _qualify_policy(node: PolicyNode, epoch: int) -> PolicyNode:
    if isinstance(node, Attribute):
        return Attribute(epoch_qualify(node.name, epoch))
    children = [_qualify_policy(child, epoch) for child in node.children]
    if isinstance(node, And):
        return And(children)
    if isinstance(node, Or):
        return Or(children)
    assert isinstance(node, Threshold)
    return Threshold(node.k, children)


class PirrettiSystem:
    """Timed re-keying over a BSW deployment.

    The authority tracks per-user attribute grants; ``advance_epoch``
    rolls the clock forward, after which only refreshed keys work.
    """

    def __init__(self, bsw: BswScheme):
        self.bsw = bsw
        self.epoch = 0
        self._grants = {}   # uid -> set of (unqualified) attributes
        self._refresh_count = 0

    # -- authority side ------------------------------------------------------

    def grant(self, uid: str, attributes) -> BswUserKey:
        """Grant attributes and issue the current epoch's key."""
        held = self._grants.setdefault(uid, set())
        held.update(attributes)
        return self._issue(uid)

    def revoke(self, uid: str, attributes) -> None:
        """Remove grants. Takes effect only at the NEXT epoch rollover —
        the key already in the user's hands keeps working until then."""
        held = self._grants.get(uid)
        if not held:
            raise SchemeError(f"user {uid!r} holds nothing to revoke")
        held.difference_update(attributes)

    def advance_epoch(self) -> dict:
        """Roll over; re-issue keys for EVERY user with surviving grants.

        Returns {uid: fresh key} — the O(all users) per-epoch cost the
        paper criticizes.
        """
        self.epoch += 1
        refreshed = {}
        for uid, held in self._grants.items():
            if held:
                refreshed[uid] = self._issue(uid)
        return refreshed

    def _issue(self, uid: str) -> BswUserKey:
        held = self._grants[uid]
        if not held:
            raise SchemeError(f"user {uid!r} holds no attributes")
        self._refresh_count += 1
        qualified = [epoch_qualify(name, self.epoch) for name in held]
        return self.bsw.keygen(qualified)

    @property
    def keys_issued(self) -> int:
        """Total issuance work so far (the overhead metric)."""
        return self._refresh_count

    # -- owner side ------------------------------------------------------------

    def encrypt(self, message: GTElement, policy) -> BswCiphertext:
        """Encrypt under the CURRENT epoch's qualified policy."""
        qualified = _qualify_policy(parse(policy), self.epoch)
        return self.bsw.encrypt(message, qualified)

    # -- user side ----------------------------------------------------------------

    def decrypt(self, ciphertext: BswCiphertext, key: BswUserKey) -> GTElement:
        return self.bsw.decrypt(ciphertext, key)

"""Tests for Chase's multi-authority ABE — including its Table-I flaws."""

import pytest

from repro.baselines import chase
from repro.errors import PolicyNotSatisfiedError, SchemeError


@pytest.fixture()
def setup(group):
    central = chase.ChaseCentralAuthority(group)
    uni = chase.ChaseAuthority(
        group, "uni", ["prof", "student", "dean"], threshold=2, seed=b"uni"
    )
    gov = chase.ChaseAuthority(
        group, "gov", ["citizen", "official"], threshold=1, seed=b"gov"
    )
    central.register_authority(uni)
    central.register_authority(gov)
    authorities = {"uni": uni, "gov": gov, "__central__": central}
    return central, uni, gov, authorities


def _encrypt_all(group, setup_tuple):
    central, uni, gov, authorities = setup_tuple
    message = group.random_gt()
    ciphertext = chase.encrypt(
        group, message,
        {"uni": ["prof", "student", "dean"], "gov": ["citizen", "official"]},
        authorities,
    )
    return message, ciphertext


class TestRoundTrip:
    def test_authorized(self, group, setup):
        central, uni, gov, _ = setup
        message, ciphertext = _encrypt_all(group, setup)
        keys = {
            "uni": uni.keygen("bob", ["prof", "dean"]),      # meets d=2
            "gov": gov.keygen("bob", ["citizen"]),           # meets d=1
        }
        result = chase.decrypt(group, ciphertext, central.central_key("bob"),
                               keys)
        assert result == message

    def test_extra_attributes_fine(self, group, setup):
        central, uni, gov, _ = setup
        message, ciphertext = _encrypt_all(group, setup)
        keys = {
            "uni": uni.keygen("ada", ["prof", "student", "dean"]),
            "gov": gov.keygen("ada", ["citizen", "official"]),
        }
        assert chase.decrypt(
            group, ciphertext, central.central_key("ada"), keys
        ) == message

    def test_below_threshold_rejected(self, group, setup):
        central, uni, gov, _ = setup
        _, ciphertext = _encrypt_all(group, setup)
        keys = {
            "uni": uni.keygen("eve", ["prof"]),  # below d=2
            "gov": gov.keygen("eve", ["citizen"]),
        }
        with pytest.raises(PolicyNotSatisfiedError):
            chase.decrypt(group, ciphertext, central.central_key("eve"), keys)

    def test_missing_authority_rejected(self, group, setup):
        """AND across ALL involved authorities — the Table I limitation."""
        central, uni, gov, _ = setup
        _, ciphertext = _encrypt_all(group, setup)
        keys = {"uni": uni.keygen("dan", ["prof", "dean"])}
        with pytest.raises(SchemeError, match="no key from"):
            chase.decrypt(group, ciphertext, central.central_key("dan"), keys)


class TestCollusion:
    def test_mixed_gids_rejected(self, group, setup):
        central, uni, gov, _ = setup
        _, ciphertext = _encrypt_all(group, setup)
        pooled = {
            "uni": uni.keygen("alice", ["prof", "dean"]),
            "gov": gov.keygen("bob", ["citizen"]),
        }
        with pytest.raises(SchemeError, match="belongs"):
            chase.decrypt(group, ciphertext, central.central_key("bob"),
                          pooled)

    def test_forced_collusion_yields_garbage(self, group, setup):
        import dataclasses

        central, uni, gov, _ = setup
        message, ciphertext = _encrypt_all(group, setup)
        alice_key = uni.keygen("alice", ["prof", "dean"])
        forged = dataclasses.replace(alice_key, gid="bob")
        pooled = {"uni": forged, "gov": gov.keygen("bob", ["citizen"])}
        result = chase.decrypt(group, ciphertext, central.central_key("bob"),
                               pooled)
        assert result != message


class TestCentralAuthorityFlaw:
    def test_central_authority_decrypts_everything(self, group, setup):
        """Table I's criticism, executable: the CA needs no attributes."""
        central, _, _, _ = setup
        message, ciphertext = _encrypt_all(group, setup)
        assert central.central_authority_decrypt(ciphertext) == message

    def test_our_ca_cannot_do_this(self):
        """Contrast: the reproduced paper's CA holds only identifier
        state; there is no ciphertext-independent master secret at all
        (the blinding factor aggregates per-authority version keys)."""
        from repro.core.ca import CertificateAuthority

        assert not hasattr(CertificateAuthority, "central_authority_decrypt")
        assert not hasattr(CertificateAuthority, "system_key")


class TestApiErrors:
    def test_threshold_out_of_range(self, group):
        with pytest.raises(SchemeError):
            chase.ChaseAuthority(group, "x", ["a"], threshold=2, seed=b"s")

    def test_encrypt_below_threshold(self, group, setup):
        central, uni, gov, authorities = setup
        with pytest.raises(SchemeError, match="threshold"):
            chase.encrypt(group, group.random_gt(), {"uni": ["prof"]},
                          authorities)

    def test_unknown_attribute(self, group, setup):
        _, uni, _, _ = setup
        with pytest.raises(SchemeError):
            uni.keygen("bob", ["pilot"])

    def test_missing_central(self, group, setup):
        _, uni, _, _ = setup
        with pytest.raises(SchemeError, match="central"):
            chase.encrypt(group, group.random_gt(),
                          {"uni": ["prof", "dean"]}, {"uni": uni})

    def test_duplicate_authority_registration(self, group, setup):
        central, uni, _, _ = setup
        with pytest.raises(SchemeError):
            central.register_authority(uni)

    def test_prf_deterministic_per_user(self, group, setup):
        _, uni, _, _ = setup
        assert uni.user_secret("bob") == uni.user_secret("bob")
        assert uni.user_secret("bob") != uni.user_secret("alice")

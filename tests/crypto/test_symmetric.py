"""Tests for the authenticated DEM (SHA-256-CTR + HMAC)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.symmetric import (
    KEY_LEN,
    SymmetricCiphertext,
    decrypt,
    encrypt,
    generate_content_key,
)
from repro.errors import IntegrityError

KEY = bytes(range(32))
OTHER_KEY = bytes(range(1, 33))


class TestRoundTrip:
    @given(st.binary(max_size=4096))
    def test_roundtrip(self, plaintext):
        assert decrypt(KEY, encrypt(KEY, plaintext)) == plaintext

    def test_empty_plaintext(self):
        assert decrypt(KEY, encrypt(KEY, b"")) == b""

    def test_large_plaintext(self):
        data = bytes(random.Random(1).getrandbits(8) for _ in range(100_000))
        assert decrypt(KEY, encrypt(KEY, data)) == data

    def test_fixed_nonce_is_deterministic(self):
        nonce = b"\x01" * 16
        assert (
            encrypt(KEY, b"data", nonce).to_bytes()
            == encrypt(KEY, b"data", nonce).to_bytes()
        )

    def test_fresh_nonce_randomizes(self):
        assert encrypt(KEY, b"data").to_bytes() != encrypt(KEY, b"data").to_bytes()


class TestSecurityProperties:
    def test_ciphertext_differs_from_plaintext(self):
        plaintext = b"top secret medical record" * 10
        assert encrypt(KEY, plaintext).body != plaintext

    def test_wrong_key_rejected(self):
        ct = encrypt(KEY, b"hello")
        with pytest.raises(IntegrityError):
            decrypt(OTHER_KEY, ct)

    @given(st.binary(min_size=1, max_size=128), st.integers(0, 10**6))
    def test_tampered_body_rejected(self, plaintext, position_seed):
        ct = encrypt(KEY, plaintext)
        position = position_seed % len(ct.body)
        tampered_body = bytearray(ct.body)
        tampered_body[position] ^= 0x01
        tampered = SymmetricCiphertext(
            nonce=ct.nonce, body=bytes(tampered_body), tag=ct.tag
        )
        with pytest.raises(IntegrityError):
            decrypt(KEY, tampered)

    def test_tampered_nonce_rejected(self):
        ct = encrypt(KEY, b"payload")
        tampered = SymmetricCiphertext(
            nonce=bytes(b ^ 1 for b in ct.nonce), body=ct.body, tag=ct.tag
        )
        with pytest.raises(IntegrityError):
            decrypt(KEY, tampered)

    def test_tampered_tag_rejected(self):
        ct = encrypt(KEY, b"payload")
        tampered = SymmetricCiphertext(
            nonce=ct.nonce, body=ct.body, tag=bytes(b ^ 1 for b in ct.tag)
        )
        with pytest.raises(IntegrityError):
            decrypt(KEY, tampered)


class TestApi:
    def test_wrong_key_length_raises(self):
        with pytest.raises(ValueError):
            encrypt(b"short", b"x")

    def test_wrong_nonce_length_raises(self):
        with pytest.raises(ValueError):
            encrypt(KEY, b"x", nonce=b"short")

    @given(st.binary(max_size=256))
    def test_wire_format_roundtrip(self, plaintext):
        ct = encrypt(KEY, plaintext)
        parsed = SymmetricCiphertext.from_bytes(ct.to_bytes())
        assert decrypt(KEY, parsed) == plaintext

    def test_from_bytes_too_short(self):
        with pytest.raises(IntegrityError):
            SymmetricCiphertext.from_bytes(b"\x00" * 10)

    def test_len_accounts_overhead(self):
        ct = encrypt(KEY, b"1234")
        assert len(ct) == 16 + 4 + 32

    def test_generate_content_key(self):
        assert len(generate_content_key()) == KEY_LEN
        rng = random.Random(5)
        a = generate_content_key(rng)
        b = generate_content_key(random.Random(5))
        assert a == b
        assert generate_content_key() != generate_content_key()

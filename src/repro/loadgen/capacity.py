"""Turn repeated load runs into a capacity model.

Two instruments:

* :func:`capacity_model` sweeps closed-loop concurrency levels on one
  harness and reports ops/sec (total and per worker) plus the **knee
  point** — the first level whose fetch p99 exceeds a latency bound.
  The default bound is relative (a multiple of the lowest level's
  p99), because an absolute bound would encode one machine's speed
  into the model; an explicit absolute bound can be passed instead.
* :func:`pipelined_vs_serial` runs the *same* deterministic fetch-only
  schedule through a serial (``max_inflight=1``) and a pipelined fleet
  against the same server, checks every reply body is byte-identical
  between the two (per ``(worker, op index)`` SHA-256), and reports the
  aggregate fetch-throughput speedup — the PR-gating number.
"""

from __future__ import annotations

from repro.loadgen.runner import LoadHarness
from repro.loadgen.workload import OpMix


async def capacity_model(harness: LoadHarness, *,
                         levels=(4, 16, 32), ops_per_worker: int = 40,
                         warmup_ops: int = 5, mix: OpMix = None,
                         p99_bound: float = None,
                         p99_bound_factor: float = 5.0) -> dict:
    """Closed-loop sweep over ``levels`` workers; find the knee.

    Levels run on one live harness in ascending order (pass them
    sorted), so later levels see a warm cache — exactly what a
    long-running service sees. The knee is the first level whose fetch
    p99 exceeds ``p99_bound`` seconds (or ``p99_bound_factor`` × the
    lowest level's fetch p99 when no absolute bound is given); ``None``
    means the service never kneeled inside the swept range.
    """
    if len(levels) < 1:
        raise ValueError("need at least one concurrency level")
    mix = mix if mix is not None else OpMix.default()
    results = []
    for level in levels:
        result = await harness.run_closed(
            level, ops_per_worker, warmup_ops=warmup_ops, mix=mix
        )
        result["ops_per_worker_per_sec"] = round(
            result["throughput_ops"] / level, 3
        )
        results.append(result)
    bound = p99_bound
    if bound is None:
        baseline = results[0]["per_class"].get("fetch", {}).get("p99")
        if baseline:
            bound = baseline * p99_bound_factor
    knee = None
    if bound is not None:
        for result in results:
            p99 = result["per_class"].get("fetch", {}).get("p99")
            if p99 is not None and p99 > bound:
                knee = result["concurrency"]
                break
    return {
        "levels": results,
        "knee": {
            "concurrency": knee,
            "fetch_p99_bound_seconds": bound,
            "relative_bound_factor": (None if p99_bound is not None
                                      else p99_bound_factor),
        },
    }


async def pipelined_vs_serial(group, host: str, port: int, *,
                              workers: int = 32, ops_per_worker: int = 30,
                              warmup_ops: int = 4, connections: int = 4,
                              max_inflight: int = 32, rtt: float = 0.0,
                              **harness_kwargs) -> dict:
    """Same fetch schedule, serial vs pipelined, byte-identity checked.

    Both fleets use ``connections`` physical connections for ``workers``
    workers — the serial fleet funnels workers through per-connection
    locks, the pipelined fleet multiplexes — so the comparison isolates
    *pipelining*, not connection count. Fetch-only and seeded schedules
    make the two runs issue identical requests, so every reply must be
    byte-identical; a mismatch is a correctness failure, never noise.

    ``rtt`` > 0 routes both fleets through a
    :class:`~repro.loadgen.netem.LatencyProxy` emulating that round
    trip — the regime the comparison is about, since on raw loopback a
    serial connection's 1/RTT cap is effectively infinite.
    """
    mix = OpMix.fetch_only()
    proxy = None
    if rtt > 0:
        from repro.loadgen.netem import LatencyProxy

        proxy = await LatencyProxy(host, port, rtt=rtt).start()
        host, port = proxy.host, proxy.port
    try:
        serial = LoadHarness(group, host, port, connections=connections,
                             max_inflight=1, **harness_kwargs)
        await serial.setup()
        try:
            serial_result = await serial.run_closed(
                workers, ops_per_worker, warmup_ops=warmup_ops, mix=mix,
                capture_digests=True,
            )
        finally:
            await serial.close()
        pipelined = LoadHarness(group, host, port, connections=connections,
                                max_inflight=max_inflight, **harness_kwargs)
        await pipelined.setup(populate=False)  # pools already on the server
        try:
            pipelined_result = await pipelined.run_closed(
                workers, ops_per_worker, warmup_ops=warmup_ops, mix=mix,
                capture_digests=True,
            )
        finally:
            await pipelined.close()
    finally:
        if proxy is not None:
            await proxy.stop()
    serial_digests = serial_result.pop("fetch_digests")
    pipelined_digests = pipelined_result.pop("fetch_digests")
    byte_identical = serial_digests == pipelined_digests
    serial_fetch = serial_result["per_class"]["fetch"]["throughput_ops"]
    pipelined_fetch = pipelined_result["per_class"]["fetch"][
        "throughput_ops"]
    return {
        "workers": workers,
        "connections": connections,
        "ops_per_worker": ops_per_worker,
        "rtt_seconds": rtt,
        "serial": serial_result,
        "pipelined": pipelined_result,
        "fetch_throughput_serial": serial_fetch,
        "fetch_throughput_pipelined": pipelined_fetch,
        "fetch_speedup": (round(pipelined_fetch / serial_fetch, 2)
                          if serial_fetch else None),
        "byte_identical": byte_identical,
        "compared_responses": len(serial_digests),
    }

"""Tests for the KEK binary tree (complete-subtree revocation substrate)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.kek_tree import KEK_LEN, KekTree
from repro.errors import SchemeError


def _tree(capacity=8, n_users=None, seed=1):
    tree = KekTree(capacity, random.Random(seed))
    for i in range(n_users if n_users is not None else capacity):
        tree.assign_slot(f"u{i}")
    return tree


class TestConstruction:
    def test_capacity_must_be_power_of_two(self):
        for bad in (0, 3, 6, 12):
            with pytest.raises(SchemeError):
                KekTree(bad)
        KekTree(1)
        KekTree(16)

    def test_all_nodes_have_keks(self):
        tree = KekTree(8, random.Random(0))
        for node in range(1, 16):
            assert len(tree.kek(node)) == KEK_LEN

    def test_unknown_node_rejected(self):
        tree = KekTree(4, random.Random(0))
        with pytest.raises(SchemeError):
            tree.kek(99)


class TestSlots:
    def test_assignment_and_lookup(self):
        tree = _tree(8, 3)
        assert tree.slot_of("u0") == 0
        assert tree.leaf_of("u2") == 8 + 2
        assert tree.users == {"u0", "u1", "u2"}

    def test_duplicate_rejected(self):
        tree = _tree(8, 1)
        with pytest.raises(SchemeError):
            tree.assign_slot("u0")

    def test_full_tree_rejected(self):
        tree = _tree(2, 2)
        with pytest.raises(SchemeError):
            tree.assign_slot("overflow")

    def test_unknown_user_rejected(self):
        tree = _tree(4, 1)
        with pytest.raises(SchemeError):
            tree.slot_of("ghost")


class TestPaths:
    def test_path_length_is_log_plus_one(self):
        tree = _tree(8)
        assert len(tree.path_nodes("u0")) == 4  # leaf + 3 ancestors

    def test_path_ends_at_root(self):
        tree = _tree(8)
        assert tree.path_nodes("u5")[-1] == 1

    def test_path_keks_match_tree(self):
        tree = _tree(8)
        for node, kek in tree.path_keks("u3").items():
            assert tree.kek(node) == kek


class TestMinCover:
    def _leaves_under(self, tree, node):
        low = high = node
        while low < tree.capacity:
            low, high = 2 * low, 2 * high + 1
        return set(range(low, high + 1))

    @given(st.integers(0, 2**16 - 1))
    def test_cover_is_exact_partition(self, membership_bits):
        tree = _tree(16)
        members = {f"u{i}" for i in range(16) if membership_bits >> i & 1}
        cover = tree.min_cover(members)
        covered = set()
        for node in cover:
            leaves = self._leaves_under(tree, node)
            assert not (covered & leaves), "cover nodes overlap"
            covered |= leaves
        assert covered == {tree.leaf_of(uid) for uid in members}

    def test_full_membership_is_root(self):
        tree = _tree(8)
        assert tree.min_cover(tree.users) == [1]

    def test_empty_membership(self):
        tree = _tree(8)
        assert tree.min_cover(set()) == []

    def test_single_member_is_leaf(self):
        tree = _tree(8)
        assert tree.min_cover({"u3"}) == [tree.leaf_of("u3")]

    def test_all_but_one_is_logarithmic(self):
        tree = _tree(64)
        members = tree.users - {"u0"}
        # Complete-subtree bound: log2(64) = 6 nodes for n-1 members.
        assert tree.cover_size(members) == 6

    def test_cover_only_reaches_members(self):
        """The security property: a non-member's path never intersects
        the cover."""
        tree = _tree(16)
        members = {f"u{i}" for i in range(16) if i % 3 == 0}
        cover = set(tree.min_cover(members))
        for uid in tree.users - members:
            assert not (cover & set(tree.path_nodes(uid))), uid
        for uid in members:
            assert cover & set(tree.path_nodes(uid)), uid

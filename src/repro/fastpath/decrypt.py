"""Per-(user, policy) decryption sessions — the read-path fast path.

A cloud-storage user reads *many* components encrypted under the *same*
policy (one policy per record class), yet the cold
:func:`repro.core.decrypt.decrypt_fast` re-derives everything — LSSS
reconstruction coefficients, the combined key product, the per-row
exponent vector — per call, and walks three full Miller loops per
ciphertext.

:class:`DecryptionSession` splits that work the way
:class:`repro.fastpath.session.EncryptionSession` does for Encrypt:

* **setup (once per (user keys, policy shape))** — validate the key
  bundle, solve the LSSS reconstruction ``{w_i}`` once, fix the
  per-row exponents ``w_i·n_A``, fold the numerator key product
  ``∏_k K_{UID,AID_k}`` and the combined attribute key
  ``∏ K_{ρ(i)}^{w_i·n_A}`` — then MERGE the two key-side pairing
  arguments (both paired against the varying ``C'``) into one point by
  bilinearity, and cache :class:`~repro.pairing.prepared.
  PreparedPairing` line coefficients for the two pairing arguments
  that never change across ciphertexts (the pairing is symmetric, so
  the *varying* arguments — ``C'`` and the combined row point — ride
  the cached chains as second arguments);
* **per ciphertext** — one multi-exponentiation over the used rows and
  two Miller-loop *replays*, no fresh line-coefficient chains;
* **batch** — :meth:`DecryptionSession.decrypt_many` accumulates the
  raw Miller products of N ciphertexts and reduces them through ONE
  :func:`repro.pairing.miller.final_exponentiation_many` call, sharing
  a single modular inversion across the whole batch.

Outputs are byte-identical to the cold path: the merged raw Miller
product differs from :func:`~repro.core.decrypt.decrypt_fast`'s only
by a factor the final exponentiation annihilates (the reduced pairing
is bilinear), and the batched final exponentiation is bit-identical
per entry to the per-value reduction (modular inverses are unique).

**Revocation safety**: the session snapshots every secret key's version
at setup and re-runs the cold path's eager validation per ciphertext —
a ciphertext re-encrypted past the session's key versions raises the
same typed :class:`~repro.errors.SchemeError` the cold path raises
(REJECTED, never silently-wrong plaintext), and
:meth:`DecryptionSession.matches` lets callers drop cached sessions the
moment an update key rolls any underlying secret key forward.
"""

from __future__ import annotations

from repro.core.attributes import authority_of
from repro.core.ciphertext import Ciphertext
from repro.core.decrypt import _validate_inputs
from repro.core.keys import UserPublicKey
from repro.ec.curve import INFINITY
from repro.errors import SchemeError
from repro.pairing.group import GTElement, PairingGroup
from repro.pairing.miller import final_exponentiation_many


class DecryptionSession:
    """Amortized Decrypt for one (user key bundle, policy shape) pair.

    Build from any ciphertext of the target policy class::

        session = DecryptionSession(group, ciphertext, public_key, keys)
        message = session.decrypt(ciphertext)          # one ciphertext
        messages = session.decrypt_many(ciphertexts)   # shared final exp

    ``secret_keys`` maps AID → :class:`~repro.core.keys.UserSecretKey`;
    as with the cold path, one key per involved authority is required
    and the bundle must satisfy the policy
    (:class:`~repro.errors.PolicyNotSatisfiedError` at setup otherwise).
    """

    def __init__(self, group: PairingGroup, ciphertext: Ciphertext,
                 user_public_key: UserPublicKey, secret_keys: dict, *,
                 meter=None):
        _validate_inputs(ciphertext, user_public_key, secret_keys)
        self.group = group
        self.user_public_key = user_public_key
        self.secret_keys = dict(secret_keys)
        self.owner_id = ciphertext.owner_id
        self.matrix = ciphertext.matrix
        self.involved_aids = ciphertext.involved_aids
        #: aid -> secret key version this session was built against.
        self.versions = {
            aid: secret_keys[aid].version for aid in ciphertext.involved_aids
        }
        self.meter = meter
        order = group.order
        held = set()
        for aid in ciphertext.involved_aids:
            held |= set(secret_keys[aid].attribute_keys)
        coefficients = self.matrix.reconstruction_coefficients(held, order)
        n_involved = len(ciphertext.involved_aids)
        # The exact quantities decrypt_fast derives per call, fixed here
        # because keys and policy shape are fixed for the session's life.
        used = sorted(coefficients.items())
        self._row_indices = tuple(index for index, _ in used)
        self._exponents = tuple(w * n_involved % order for _, w in used)
        k_product = group.identity_g1()
        for aid in ciphertext.involved_aids:
            k_product = k_product * secret_keys[aid].k
        key_combined = group.multiexp_g1(
            [
                secret_keys[authority_of(self.matrix.row_labels[index])]
                .attribute_keys[self.matrix.row_labels[index]]
                for index, _ in used
            ],
            list(self._exponents),
        )
        self._key_combined_inv = key_combined.inverse()
        # Two of Eq. (1)'s three pairings share the varying argument C':
        # e(∏K_k, C') · e((∏K_ρ(i)^{w_i·n_A})^{-1}, C') =
        # e(∏K_k · (∏K_ρ(i)^{w_i·n_A})^{-1}, C') by bilinearity, so the
        # session folds both fixed sides into ONE prepared Miller chain
        # — two line replays per ciphertext instead of three. The raw
        # Miller value differs from the cold path's by a factor the
        # final exponentiation annihilates, so reduced outputs stay
        # byte-identical. The per-ciphertext arguments (C', combined row
        # point) replay the cached chains by pairing symmetry.
        self._prepared_keys = group.prepare_pairing(
            k_product * self._key_combined_inv
        )
        self._prepared_pk = group.prepare_pairing(user_public_key.element)
        self.stats = {"decrypted": 0, "batches": 0}

    # -- freshness ---------------------------------------------------------

    def matches(self, user_public_key: UserPublicKey,
                secret_keys: dict) -> bool:
        """True iff a live key bundle is the one this session embeds.

        Used by session caches: an update key rolls a secret key's
        version forward (a *new* key object), so a session built before
        the roll stops matching and must be rebuilt — it can never
        silently decrypt with superseded key material.
        """
        if user_public_key is None or (
            user_public_key is not self.user_public_key
            and user_public_key.uid != self.user_public_key.uid
        ):
            return False
        for aid, key in self.secret_keys.items():
            live = secret_keys.get(aid)
            if live is None:
                return False
            if live is not key and live.version != key.version:
                return False
        return True

    def _check_shape(self, ciphertext: Ciphertext) -> None:
        if ciphertext.owner_id != self.owner_id:
            raise SchemeError(
                f"decryption session is scoped to owner {self.owner_id!r}; "
                f"the ciphertext was produced by {ciphertext.owner_id!r}"
            )
        matrix = ciphertext.matrix
        if matrix is not self.matrix and (
            matrix.rows != self.matrix.rows
            or matrix.row_labels != self.matrix.row_labels
        ):
            raise SchemeError(
                "ciphertext policy differs from this session's; build one "
                "session per policy shape"
            )

    # -- decryption --------------------------------------------------------

    def _miller_raw(self, ciphertext: Ciphertext):
        """The accumulated raw Miller product of one ciphertext's
        blinding (or None when every pairing is trivial). The cold
        path's 3-pairing product collapses to two Miller replays here
        because both key-side pairings share the varying argument C'
        (see ``__init__``); the reduced value is byte-identical."""
        group = self.group
        c_combined = group.multiexp_g1(
            [ciphertext.c_rows[index] for index in self._row_indices],
            list(self._exponents),
        )
        group.counter.pairings += 2
        accumulator = None
        for prepared, varying in (
            (self._prepared_keys, ciphertext.c_prime),
            (self._prepared_pk, c_combined.inverse()),
        ):
            if prepared.point is INFINITY or varying.point is INFINITY:
                continue
            raw = prepared.miller(varying.point)
            accumulator = (
                raw if accumulator is None else group.ext.mul(accumulator, raw)
            )
        return accumulator

    def decrypt_many(self, ciphertexts) -> list:
        """Decrypt N ciphertexts with one shared final exponentiation.

        Each ciphertext is validated exactly like the cold path (stale
        versions raise the cold path's :class:`SchemeError`), and each
        recovered message is byte-identical to
        :func:`repro.core.decrypt.decrypt_fast` of the same ciphertext.
        """
        ciphertexts = list(ciphertexts)
        group = self.group
        raws = []
        for ciphertext in ciphertexts:
            self._check_shape(ciphertext)
            _validate_inputs(ciphertext, self.user_public_key,
                             self.secret_keys)
            raws.append(self._miller_raw(ciphertext))
        slots = [index for index, raw in enumerate(raws) if raw is not None]
        reduced = final_exponentiation_many(
            group.ext, [raws[index] for index in slots], group.order
        )
        blindings = [group.identity_gt()] * len(ciphertexts)
        for index, value in zip(slots, reduced):
            blindings[index] = GTElement(group, value)
        self.stats["decrypted"] += len(ciphertexts)
        self.stats["batches"] += 1
        if self.meter is not None:
            self.meter.bump("decrypt.session.decrypt", len(ciphertexts))
            self.meter.bump("decrypt.session.batch")
        return [
            ciphertext.c / blinding
            for ciphertext, blinding in zip(ciphertexts, blindings)
        ]

    def decrypt(self, ciphertext: Ciphertext) -> GTElement:
        """Recover one GT message (byte-identical to ``decrypt_fast``)."""
        return self.decrypt_many([ciphertext])[0]

    def __repr__(self) -> str:
        return (
            f"DecryptionSession(uid={self.user_public_key.uid!r}, "
            f"owner={self.owner_id!r}, rows={len(self._row_indices)}, "
            f"decrypted={self.stats['decrypted']})"
        )

"""Bulk-onboarding KeyGen sessions for one attribute authority.

An AA onboarding users issues ``SK_{UID,AID}`` over the *same*
attribute universe again and again; only the base ``PK_UID`` changes
per user, while every exponent — ``r/β`` for ``K`` and ``α·H(x)`` per
attribute — is fixed for the (owner, attribute-set, key-version)
triple. The cold path treats each call independently: it builds a
fixed-base window table for ``PK_UID`` (hundreds of point additions)
that only ever serves that one user's handful of exponentiations.

:class:`KeyGenSession` inverts the precomputation: the *exponents* are
recoded to 2-NAF once at session setup
(:class:`repro.ec.fixed_base.BatchExponentiator`), and each user costs
one shared doubling chain for ``PK_UID`` plus ~bits/3 mixed additions
per exponent. Batch entry points amortize further: ``issue_batch``
builds all users' chains level-by-level in affine with one batch
inversion per level, and :func:`issue_joint` lets every authority
onboarding the same users walk ONE chain per user — the
multi-authority shape the paper's deployment implies. ``K``'s second factor
``(g^{1/β})^α`` is constant across the session and folded in with a
single mixed addition before normalization. Issued keys are *exactly*
equal to the cold :meth:`repro.core.authority.AttributeAuthority.keygen`
output, and the authority's registries are updated identically.

**Revocation safety**: the session snapshots the authority's key
version (``α`` epoch) at setup; :meth:`KeyGenSession.issue` raises
:class:`repro.errors.RevocationError` once ReKey bumps the version, so
a stale session can never issue keys under a revoked ``α``.
"""

from __future__ import annotations

from repro.core.keys import UserPublicKey, UserSecretKey
from repro.ec.curve import _jac_add_affine
from repro.ec.fixed_base import BatchExponentiator, affine_doubling_chains
from repro.errors import RevocationError, SchemeError
from repro.pairing.group import G1Element


class KeyGenSession:
    """Amortized KeyGen for one (owner, attribute-set, key-version)."""

    def __init__(self, authority, owner_id: str, attributes):
        self.authority = authority
        self.group = authority.group
        self.owner_id = owner_id
        names, exponents, k_const = authority.keygen_session_material(
            owner_id, attributes
        )
        #: Authority key version (α epoch) this session was built for.
        self.version = authority.version
        #: Qualified attribute names, in issued-key order.
        self.qualified_names = names
        # Exponent 0 is r/β (the K component), then one per attribute.
        self._exponentiator = BatchExponentiator(
            self.group.curve, self.group.order, exponents
        )
        self._k_const_point = k_const.point  # (g^{1/β})^α, affine
        self.stats = {"issued": 0}

    def _check_current(self) -> None:
        if self.authority.version != self.version:
            raise RevocationError(
                f"keygen session is stale: authority {self.authority.aid!r} "
                f"rolled from version {self.version} to "
                f"{self.authority.version}; create a fresh session"
            )

    def issue(self, user_public_key: UserPublicKey,
              chain=None) -> UserSecretKey:
        """Issue one user's secret key (identical to cold ``keygen``).

        Unlike the cold path, no fixed-base table is registered for
        ``PK_UID`` — the session's shared-chain walk already amortizes
        this user's exponentiations, and a per-user table would cost
        more than the key it serves. ``chain`` is an optional
        precomputed doubling chain of ``PK_UID`` (see
        :func:`issue_joint`), shared when several authorities onboard
        the same user.
        """
        self._check_current()
        group = self.group
        p = group.params.p
        jacobians = self._exponentiator.powers_jacobian(
            user_public_key.element.point, chain
        )
        # K = PK_UID^{r/β} · (g^{1/β})^α — fold the constant factor in
        # before the shared normalization.
        k_jac = _jac_add_affine(jacobians[0], self._k_const_point, p)
        affine = group.curve.batch_normalize([k_jac] + jacobians[1:])
        # Mirror the cold path's operation accounting: one two-term
        # multiexp for K (2 G exps) plus one per attribute key.
        group.counter.g1_exponentiations += len(self.qualified_names) + 2
        attribute_keys = {
            name: G1Element(group, point)
            for name, point in zip(self.qualified_names, affine[1:])
        }
        self.authority.note_issued(
            user_public_key, self.owner_id, attribute_keys
        )
        self.stats["issued"] += 1
        return UserSecretKey(
            uid=user_public_key.uid,
            aid=self.authority.aid,
            owner_id=self.owner_id,
            k=G1Element(group, affine[0]),
            attribute_keys=attribute_keys,
            version=self.version,
        )

    def issue_batch(self, user_public_keys) -> list:
        """Issue keys for many users (bulk onboarding), in order.

        The users' doubling chains are independent, so they are built
        level-by-level in affine with one batch inversion per level
        (:func:`repro.ec.fixed_base.affine_doubling_chains`) — cheaper
        than the per-user Jacobian build + normalize whenever the batch
        has two or more users.
        """
        user_public_keys = list(user_public_keys)
        chains = affine_doubling_chains(
            self.group.curve,
            [public_key.element.point for public_key in user_public_keys],
            self._exponentiator.chain_length,
        )
        return [
            self.issue(public_key, chain)
            for public_key, chain in zip(user_public_keys, chains)
        ]


def issue_joint(sessions, user_public_keys) -> list:
    """Issue keys from several sessions to each user, one chain per user.

    The multi-authority onboarding shape: every AA involved in an
    owner's policies keys the same users, and the doubling chain for
    ``PK_UID`` — the dominant per-user cost of a lone session — depends
    only on the point, never on an authority's exponents. Building it
    once (at the longest length any session needs) and walking it from
    each session's programs drops the marginal cost of every authority
    after the first to ~bits/3 additions per exponent.

    Returns one ``{aid: UserSecretKey}`` dict per user, in input order.
    Sessions must come from distinct authorities over one pairing
    group; each is staleness-checked per issue exactly as
    :meth:`KeyGenSession.issue` alone would be.
    """
    sessions = list(sessions)
    if not sessions:
        return []
    group = sessions[0].group
    aids = [session.authority.aid for session in sessions]
    if len(set(aids)) != len(aids):
        raise SchemeError("joint issuance needs distinct authorities")
    for session in sessions[1:]:
        if session.group is not group:
            raise SchemeError(
                "joint issuance needs sessions over one pairing group"
            )
    length = max(
        session._exponentiator.chain_length for session in sessions
    )
    user_public_keys = list(user_public_keys)
    chains = affine_doubling_chains(
        group.curve,
        [public_key.element.point for public_key in user_public_keys],
        length,
    )
    return [
        {
            session.authority.aid: session.issue(public_key, chain)
            for session in sessions
        }
        for public_key, chain in zip(user_public_keys, chains)
    ]

"""Tests for the PairingGroup facade and element wrappers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.curve import INFINITY
from repro.ec.params import SS512, TOY80
from repro.errors import MathError
from repro.pairing.group import PairingGroup

scalars = st.integers(1, TOY80.r - 1)


class TestG1Element:
    @given(scalars, scalars)
    def test_mul_is_group_op(self, group, a, b):
        assert (group.g ** a) * (group.g ** b) == group.g ** (a + b)

    @given(scalars)
    def test_inverse(self, group, a):
        element = group.g ** a
        assert (element * element.inverse()).is_identity()

    @given(scalars)
    def test_div(self, group, a):
        element = group.g ** a
        assert (element / element).is_identity()

    def test_identity(self, group):
        assert group.identity_g1().is_identity()
        assert (group.g ** group.order).is_identity()

    @given(scalars)
    def test_pow_reduces_mod_order(self, group, a):
        assert group.g ** a == group.g ** (a + group.order)


class TestGTElement:
    @given(scalars, scalars)
    def test_mul_pow(self, group, a, b):
        assert (group.gt ** a) * (group.gt ** b) == group.gt ** (a + b)

    @given(scalars)
    def test_inverse_div(self, group, a):
        element = group.gt ** a
        assert (element * element.inverse()).is_identity()
        assert (element / element).is_identity()

    def test_gt_generator_cached(self, group):
        assert group.gt is group.gt  # computed once


class TestPairing:
    @given(scalars, scalars)
    def test_bilinear_through_wrappers(self, group, a, b):
        assert group.pair(group.g ** a, group.g ** b) == group.gt ** (a * b)

    def test_pair_prod(self, group):
        x, y = group.random_g1(), group.random_g1()
        assert group.pair_prod([(x, group.g), (y, group.g)]) == group.pair(
            x, group.g
        ) * group.pair(y, group.g)

    def test_pair_identity(self, group):
        assert group.pair(group.identity_g1(), group.g).is_identity()


class TestHashing:
    def test_hash_to_scalar_deterministic(self, group):
        assert group.hash_to_scalar("abc") == group.hash_to_scalar("abc")

    def test_hash_to_scalar_distinct(self, group):
        assert group.hash_to_scalar("abc") != group.hash_to_scalar("abd")

    def test_hash_injective_framing(self, group):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert group.hash_to_scalar("ab", "c") != group.hash_to_scalar("a", "bc")

    def test_hash_domain_separation(self, group):
        assert group.hash_to_scalar("x") != group.hash_to_scalar(
            "x", domain=b"other"
        )

    def test_hash_accepts_int_and_bytes(self, group):
        value = group.hash_to_scalar(123, b"raw", "text")
        assert 0 <= value < group.order

    def test_hash_rejects_unknown_type(self, group):
        with pytest.raises(MathError):
            group.hash_to_scalar(1.5)

    def test_hash_to_g1_in_subgroup(self, group):
        point = group.hash_to_g1("gid-42")
        assert not point.is_identity()
        assert (point ** group.order).is_identity()

    def test_hash_to_g1_deterministic_and_distinct(self, group):
        assert group.hash_to_g1("alice") == group.hash_to_g1("alice")
        assert group.hash_to_g1("alice") != group.hash_to_g1("bob")

    def test_hash_accepts_negative_int(self, group):
        # Negative ints previously crashed int.to_bytes with OverflowError.
        value = group.hash_to_scalar(-42)
        assert 0 <= value < group.order
        assert value == group.hash_to_scalar(-42)

    def test_hash_sign_distinguishes(self, group):
        # The sign prefix must keep the encoding injective: -n, n and the
        # byte string that n alone absorbs as must all hash apart.
        assert group.hash_to_scalar(-42) != group.hash_to_scalar(42)
        magnitude = (42).to_bytes(2, "big")
        assert group.hash_to_scalar(-42) != group.hash_to_scalar(
            b"\x01" + b"\x00" + magnitude
        )

    def test_hash_to_g1_memoized_identical_object(self, group):
        first = group.hash_to_g1("memo-check")
        second = group.hash_to_g1("memo-check")
        assert first.point is second.point


class TestSerialization:
    @given(scalars)
    def test_g1_roundtrip(self, group, a):
        element = group.g ** a
        data = group.encode_g1(element)
        assert len(data) == group.g1_bytes
        assert group.decode_g1(data) == element

    def test_g1_identity_roundtrip(self, group):
        data = group.encode_g1(group.identity_g1())
        assert group.decode_g1(data).is_identity()

    def test_g1_rejects_bad_tag(self, group):
        data = b"\x07" + b"\x00" * (group.g1_bytes - 1)
        with pytest.raises(MathError):
            group.decode_g1(data)

    def test_g1_rejects_wrong_length(self, group):
        with pytest.raises(MathError):
            group.decode_g1(b"\x02\x01")

    def test_g1_rejects_non_curve_x(self, group):
        # Find an x that is not on the curve and encode it.
        for x in range(2, 300):
            if group.curve.lift_x(x) is None:
                data = bytes([2]) + group.field.to_bytes(x)
                with pytest.raises(MathError):
                    group.decode_g1(data)
                return
        pytest.fail("no non-curve x found in range")  # pragma: no cover

    def test_g1_rejects_malformed_identity(self, group):
        data = b"\x00" + b"\x01" * (group.g1_bytes - 1)
        with pytest.raises(MathError):
            group.decode_g1(data)

    def test_g1_accepts_subgroup_points(self, group):
        # Valid order-r points (including hash outputs) must round-trip.
        element = group.hash_to_g1("subgroup-ok")
        assert group.decode_g1(group.encode_g1(element)) == element

    def test_g1_rejects_out_of_subgroup_point(self, group):
        # Find a curve point outside the order-r subgroup: the curve has
        # p + 1 = h·r points, so a random lift lands outside the subgroup
        # with overwhelming probability. Encode it directly.
        for x in range(2, 500):
            point = group.curve.lift_x(x)
            if point is None:
                continue
            if group.curve.mul(point, group.order) is INFINITY:
                continue  # genuinely in the subgroup; keep looking
            data = bytes([2 + (point[1] & 1)]) + group.field.to_bytes(x)
            with pytest.raises(MathError):
                group.decode_g1(data)
            return
        pytest.fail("no out-of-subgroup x found in range")  # pragma: no cover

    @given(scalars)
    def test_gt_roundtrip(self, group, a):
        element = group.gt ** a
        data = group.encode_gt(element)
        assert len(data) == group.gt_bytes
        assert group.decode_gt(data) == element

    @given(st.integers(0, TOY80.r - 1))
    def test_scalar_roundtrip(self, group, a):
        data = group.encode_scalar(a)
        assert len(data) == group.scalar_bytes
        assert group.decode_scalar(data) == a

    def test_scalar_rejects_wrong_length(self, group):
        with pytest.raises(MathError):
            group.decode_scalar(b"\x00")


class TestSampling:
    def test_random_scalar_range(self, group):
        for _ in range(50):
            assert 1 <= group.random_scalar() < group.order

    def test_seeded_reproducibility(self):
        a = PairingGroup(TOY80, seed=99)
        b = PairingGroup(TOY80, seed=99)
        assert [a.random_scalar() for _ in range(5)] == [
            b.random_scalar() for _ in range(5)
        ]

    def test_random_gt_in_group(self, group):
        assert (group.random_gt() ** group.order).is_identity()


class TestSS512Smoke:
    """One bilinearity check on the paper-scale preset."""

    def test_bilinearity(self):
        group = PairingGroup(SS512, seed=1)
        a, b = group.random_scalar(), group.random_scalar()
        assert group.pair(group.g ** a, group.g ** b) == group.gt ** (a * b)


class TestGtDecodingValidation:
    """decode_gt mirrors decode_g1: length, zero, and subgroup checks."""

    def test_wrong_length_rejected(self, group):
        for n in (0, 1, group.gt_bytes - 1, group.gt_bytes + 1):
            with pytest.raises(MathError, match="length"):
                group.decode_gt(b"\x00" * n)

    def test_zero_rejected(self, group):
        with pytest.raises(MathError, match="0 is not"):
            group.decode_gt(b"\x00" * group.gt_bytes)

    def test_out_of_subgroup_rejected(self, group):
        half = group.gt_bytes // 2
        # (2, 3) is a unit of F_p² but (for these parameters) not in the
        # order-r subgroup — the guard below keeps the test honest.
        data = (2).to_bytes(half, "big") + (3).to_bytes(half, "big")
        value = group.ext.from_bytes(data)
        assert not group.ext.is_one(group.ext.pow(value, group.order))
        with pytest.raises(MathError, match="subgroup"):
            group.decode_gt(data)

    def test_identity_is_accepted(self, group):
        identity = group.gt ** group.order
        assert group.decode_gt(identity.to_bytes()).is_identity()

    def test_valid_elements_still_roundtrip(self, group):
        element = group.random_gt()
        assert group.decode_gt(element.to_bytes()) == element

"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestDemo:
    def test_end_to_end(self):
        code, output = run(["demo", "--preset", "TOY80", "--seed", "3"])
        assert code == 0
        assert "bob reads        : b'the plan'" in output
        assert "denied (PolicyNotSatisfiedError)" in output
        assert "bob post-revoke  : denied" in output


class TestTables:
    def test_default_shape(self):
        code, output = run(["tables", "--preset", "SS512"])
        assert code == 0
        assert "Table I" in output
        assert "Table II" in output
        assert "Table III" in output
        assert "Table IV" in output
        assert "Lewko-Waters" in output
        # SS512 headline ciphertext size appears (l=25 → 1818 bytes).
        assert "1818" in output

    def test_custom_shape(self):
        code, output = run(
            ["tables", "--authorities", "2", "--attributes", "3",
             "--rows", "6"]
        )
        assert code == 0

    def test_shape_validation_propagates(self):
        with pytest.raises(ValueError):
            run(["tables", "--authorities", "0"])


class TestPrimitives:
    def test_runs_and_reports(self):
        code, output = run(
            ["primitives", "--preset", "TOY80", "--samples", "2"]
        )
        assert code == 0
        assert "pairing" in output
        assert "hash to G" in output
        assert "ms" in output


class TestFigures:
    def test_single_figure(self):
        code, output = run(
            ["figures", "--preset", "TOY80", "--sweep", "1,2",
             "--only", "3a"]
        )
        assert code == 0
        assert "Fig 3(a)" in output
        assert "Fig 3(b)" not in output
        assert "ours" in output and "lewko" in output


class TestParams:
    def test_generates_valid_parameters(self):
        code, output = run(
            ["params", "--rbits", "24", "--pbits", "48", "--seed", "5"]
        )
        assert code == 0
        assert output.startswith("r = 0x")
        # Parse back and validate the divisibility structure.
        lines = dict(
            line.split(" = ", 1) for line in output.splitlines()
            if " = " in line and not line.startswith("g")
        )
        r = int(lines["r"], 16)
        p = int(lines["p"], 16)
        assert (p + 1) % r == 0


class TestReport:
    def test_stdout_report(self):
        code, output = run(
            ["report", "--preset", "TOY80", "--authorities", "2",
             "--attributes", "2"]
        )
        assert code == 0
        assert "# Reproduction report — preset TOY80" in output
        assert "## Table I" in output
        assert "## Table IV" in output
        assert "| pairing |" in output

    def test_file_output(self, tmp_path):
        target = tmp_path / "report.md"
        code, output = run(
            ["report", "--preset", "TOY80", "--authorities", "2",
             "--attributes", "2", "--output", str(target)]
        )
        assert code == 0
        assert target.exists()
        text = target.read_text()
        assert "Table III" in text

    def test_measured_matches_model_in_report(self):
        """The measured columns in the report equal the model columns
        for the components with live objects."""
        from repro.analysis.costmodel import SystemShape
        from repro.analysis.report import generate_report
        from repro.ec.params import TOY80 as params

        shape = SystemShape(2, 2, 2, 4)
        text = generate_report(params, shape)
        for line in text.splitlines():
            if line.startswith("| secret_key") or line.startswith(
                "| ciphertext"
            ):
                cells = [cell.strip() for cell in line.split("|")[1:-1]]
                assert cells[1] == cells[2], line   # ours model == measured
                assert cells[3] == cells[4], line   # lewko model == measured


class TestAdversary:
    def test_list_names_every_scenario_with_its_control(self):
        code, output = run(["adversary", "list"])
        assert code == 0
        for name in ("revoked-key-replay", "collusion-pooling",
                     "rogue-authority", "sweep-withholding",
                     "spam-flood", "stale-replica"):
            assert f"{name}:" in output
        assert "claim" in output and "must fail" in output

    def test_run_requires_a_scenario(self):
        code, output = run(["adversary", "run"])
        assert code == 2
        assert "--scenario" in output

    def test_unknown_scenario_is_a_usage_error(self):
        code, output = run(["adversary", "run", "--scenario", "nope"])
        assert code == 2
        assert "unknown scenario" in output

    def test_bad_param_is_a_usage_error(self):
        code, output = run(["adversary", "run",
                            "--scenario", "collusion-pooling",
                            "--param", "records"])
        assert code == 2
        assert "KEY=VALUE" in output

    def test_run_one_scenario_both_modes(self, tmp_path):
        import json

        out_json = tmp_path / "verdict.json"
        code, output = run(["adversary", "run",
                            "--scenario", "collusion-pooling",
                            "--seed", "2"])
        assert code == 0
        assert "collusion-pooling" in output and "[honest]" in output
        code, output = run(["adversary", "run",
                            "--scenario", "collusion-pooling",
                            "--seed", "2", "--control", "--verbose",
                            "--out-json", str(out_json)])
        assert code == 0
        assert "[control]" in output
        assert "FAIL [pooled-keys-rejected]" in output  # --verbose
        verdict = json.loads(out_json.read_text())
        assert verdict["mode"] == "control" and verdict["ok"]

    def test_matrix_exit_code_tracks_the_aggregate(self, tmp_path):
        import json

        out_json = tmp_path / "matrix.json"
        code, output = run(["adversary", "matrix",
                            "--scenario", "rogue-authority",
                            "--seeds", "1,2",
                            "--param", "records=3",
                            "--out-json", str(out_json)])
        assert code == 0
        assert "adversary matrix: ok" in output
        report = json.loads(out_json.read_text())
        assert report["ok"] and len(report["verdicts"]) == 4
        modes = {(v["mode"], v["seed"]) for v in report["verdicts"]}
        assert modes == {("honest", 1), ("control", 1),
                         ("honest", 2), ("control", 2)}


class TestInfo:
    def test_lists_presets(self):
        code, output = run(["info"])
        assert code == 0
        assert "TOY80" in output and "SS512" in output
        assert "|GT|=128B" in output  # SS512


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_unknown_preset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--preset", "NOPE"])


class TestArithBackend:
    def test_pure_backend_flag(self):
        from repro.math import backend
        try:
            code, output = run(
                ["--arith-backend", "pure", "demo", "--seed", "3"]
            )
            assert code == 0
            assert backend.resolve_backend().name == "pure"
        finally:
            backend.set_backend(None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--arith-backend", "turbo", "info"])

    def test_missing_gmpy2_fails_fast(self):
        from repro.math import backend
        from repro.math.backend import gmpy2_available
        if gmpy2_available():
            pytest.skip("gmpy2 installed: the hard request succeeds")
        try:
            with pytest.raises(SystemExit):
                main(["--arith-backend", "gmpy2", "info"], out=io.StringIO())
            # The forced selection must be rolled back on failure.
            assert backend.resolve_backend().name == "pure"
        finally:
            backend.set_backend(None)


class TestService:
    def test_serve_then_client_ping_and_smoke(self, tmp_path):
        import re
        import threading
        import time

        server_out = io.StringIO()
        server = threading.Thread(
            target=main,
            args=(["serve", "--preset", "TOY80", "--port", "0",
                   "--root", str(tmp_path / "store"),
                   "--max-seconds", "60"],),
            kwargs={"out": server_out},
            daemon=True,
        )
        server.start()
        port = None
        for _ in range(200):
            match = re.search(
                r"listening on 127\.0\.0\.1:(\d+)", server_out.getvalue()
            )
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.05)
        assert port is not None, server_out.getvalue()

        code, output = run(
            ["client", "ping", "--preset", "TOY80", "--port", str(port)]
        )
        assert code == 0
        assert "pong" in output

        code, output = run(
            ["client", "smoke", "--preset", "TOY80", "--port", str(port)]
        )
        assert code == 0
        assert "smoke cycle passed" in output
        assert "revoked user's read now fails" in output

        code, output = run(
            ["client", "list", "--preset", "TOY80", "--port", str(port)]
        )
        assert code == 0
        assert "record" in output

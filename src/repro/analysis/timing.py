"""Timing harness helpers shared by the Figure 3/4 benchmarks.

``pytest-benchmark`` drives the per-point measurement; these helpers
build the *workloads* — a system with n_A authorities and n_k attributes
per authority, the all-AND policy over every attribute (the natural
reading of "the involved number of attributes per authority is set to
be 5"), and pre-issued user keys — so the benchmark bodies time exactly
one Encrypt or one Decrypt, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import lewko
from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.ec.params import TypeAParams
from repro.pairing.group import PairingGroup


def attribute_names(count: int) -> list:
    return [f"attr{i}" for i in range(count)]


def and_policy(aids, attrs_per_authority: int) -> str:
    """The all-AND policy over every attribute of every authority."""
    terms = [
        f"{aid}:attr{i}" for aid in aids for i in range(attrs_per_authority)
    ]
    return " AND ".join(terms)


@dataclass
class OursWorkload:
    """Everything needed to time our scheme's Encrypt/Decrypt once."""

    group: PairingGroup
    owner: DataOwner
    policy: str
    user_public_key: object
    secret_keys: dict
    message: object

    def encrypt(self):
        return self.owner.encrypt(self.message, self.policy)

    def decrypt(self, ciphertext):
        from repro.core.decrypt import decrypt

        return decrypt(self.group, ciphertext, self.user_public_key,
                       self.secret_keys)


def build_ours(params: TypeAParams, n_authorities: int,
               attrs_per_authority: int, seed: int = 1) -> OursWorkload:
    group = PairingGroup(params, seed=seed)
    ca = CertificateAuthority(group)
    names = attribute_names(attrs_per_authority)
    aids = [f"aa{k}" for k in range(n_authorities)]
    authorities = []
    for aid in aids:
        ca.register_authority(aid)
        authorities.append(AttributeAuthority(group, aid, names))
    owner = DataOwner(group, "owner")
    for authority in authorities:
        authority.register_owner(owner.secret_key)
        owner.learn_authority(
            authority.authority_public_key(), authority.public_attribute_keys()
        )
    user_public = ca.register_user("user")
    secret_keys = {
        authority.aid: authority.keygen(user_public, names, "owner")
        for authority in authorities
    }
    return OursWorkload(
        group=group,
        owner=owner,
        policy=and_policy(aids, attrs_per_authority),
        user_public_key=user_public,
        secret_keys=secret_keys,
        message=group.random_gt(),
    )


@dataclass
class LewkoWorkload:
    """Everything needed to time Lewko-Waters Encrypt/Decrypt once."""

    group: PairingGroup
    policy: str
    public_keys: dict
    user_keys: dict
    message: object
    gid: str = "user"

    def encrypt(self):
        return lewko.encrypt(self.group, self.message, self.policy,
                             self.public_keys)

    def decrypt(self, ciphertext):
        return lewko.decrypt(self.group, ciphertext, self.gid, self.user_keys)


def build_lewko(params: TypeAParams, n_authorities: int,
                attrs_per_authority: int, seed: int = 1) -> LewkoWorkload:
    group = PairingGroup(params, seed=seed)
    names = attribute_names(attrs_per_authority)
    aids = [f"aa{k}" for k in range(n_authorities)]
    public_keys = {}
    user_keys = {}
    for aid in aids:
        authority = lewko.LewkoAuthority(group, aid, names)
        public_keys.update(authority.public_key().elements)
        user_keys[aid] = authority.keygen("user", names)
    return LewkoWorkload(
        group=group,
        policy=and_policy(aids, attrs_per_authority),
        public_keys=public_keys,
        user_keys=user_keys,
        message=group.random_gt(),
    )

"""Tests for the policy AST."""

import pytest

from repro.errors import PolicyError
from repro.policy.ast import And, Attribute, Or, Threshold


class TestAttribute:
    def test_evaluate(self):
        leaf = Attribute("a")
        assert leaf.evaluate({"a", "b"})
        assert not leaf.evaluate({"b"})

    def test_rejects_empty_and_whitespace(self):
        with pytest.raises(PolicyError):
            Attribute("")
        with pytest.raises(PolicyError):
            Attribute("a b")

    def test_attributes_iter(self):
        assert list(Attribute("x").attributes()) == ["x"]


class TestAndOr:
    def test_and_semantics(self):
        node = And(Attribute("a"), Attribute("b"))
        assert node.evaluate({"a", "b"})
        assert not node.evaluate({"a"})

    def test_or_semantics(self):
        node = Or(Attribute("a"), Attribute("b"))
        assert node.evaluate({"b"})
        assert not node.evaluate({"c"})

    def test_list_constructor(self):
        node = And([Attribute("a"), Attribute("b")])
        assert len(node.children) == 2

    def test_empty_children_rejected(self):
        with pytest.raises(PolicyError):
            And()
        with pytest.raises(PolicyError):
            Or([])

    def test_non_node_child_rejected(self):
        with pytest.raises(PolicyError):
            And(Attribute("a"), "b")

    def test_attributes_duplicates_preserved(self):
        node = Or(Attribute("a"), And(Attribute("a"), Attribute("b")))
        assert list(node.attributes()) == ["a", "a", "b"]

    def test_str_roundtrippable_shape(self):
        node = And(Attribute("a"), Or(Attribute("b"), Attribute("c")))
        assert str(node) == "(a AND (b OR c))"


class TestThreshold:
    def test_semantics(self):
        node = Threshold(2, [Attribute("a"), Attribute("b"), Attribute("c")])
        assert node.evaluate({"a", "c"})
        assert not node.evaluate({"b"})

    def test_out_of_range_k(self):
        leaves = [Attribute("a"), Attribute("b")]
        with pytest.raises(PolicyError):
            Threshold(0, leaves)
        with pytest.raises(PolicyError):
            Threshold(3, leaves)

    def test_str(self):
        node = Threshold(2, [Attribute("a"), Attribute("b"), Attribute("c")])
        assert str(node) == "2 of (a, b, c)"


class TestExpandThresholds:
    @pytest.mark.parametrize(
        "k,n", [(1, 3), (2, 3), (3, 3), (2, 4), (3, 5)]
    )
    def test_equivalence_exhaustive(self, k, n):
        import itertools

        leaves = [Attribute(f"x{i}") for i in range(n)]
        node = Threshold(k, leaves)
        expanded = node.expand_thresholds()
        universe = [f"x{i}" for i in range(n)]
        for size in range(n + 1):
            for subset in itertools.combinations(universe, size):
                assert node.evaluate(set(subset)) == expanded.evaluate(
                    set(subset)
                ), (k, n, subset)

    def test_nested_thresholds(self):
        inner = Threshold(2, [Attribute("a"), Attribute("b"), Attribute("c")])
        outer = And(inner, Attribute("d"))
        expanded = outer.expand_thresholds()
        assert expanded.evaluate({"a", "b", "d"})
        assert not expanded.evaluate({"a", "b"})

    def test_k1_becomes_or(self):
        node = Threshold(1, [Attribute("a"), Attribute("b")])
        assert isinstance(node.expand_thresholds(), Or)

    def test_kn_becomes_and(self):
        node = Threshold(2, [Attribute("a"), Attribute("b")])
        assert isinstance(node.expand_thresholds(), And)

    def test_expansion_bound(self):
        leaves = [Attribute(f"x{i}") for i in range(30)]
        with pytest.raises(PolicyError, match="branches"):
            Threshold(15, leaves).expand_thresholds()

    def test_idempotent_on_and_or(self):
        node = And(Attribute("a"), Or(Attribute("b"), Attribute("c")))
        assert node.expand_thresholds() == node

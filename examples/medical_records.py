#!/usr/bin/env python3
"""The paper's motivating scenario: fine-grained medical-record sharing.

"A data owner may want to share medical data only with a user who has
the attribute of 'Doctor' issued by a medical organization and the
attribute 'Medical Researcher' issued by the administrator of a
clinical trial."

This example drives the full simulated cloud deployment (Fig. 1 of the
paper): a patient (the data owner) uploads a record split into
components of different sensitivity (the Fig. 2 layout), each under its
own cross-authority policy, and differently-privileged users see
different granularities of the data. The byte-metered network prints
Table-IV-style communication totals at the end.

Run:  python examples/medical_records.py
"""

from repro.ec import TOY80
from repro.errors import PolicyNotSatisfiedError
from repro.system import CloudStorageSystem


def try_read(system, uid, record, component):
    try:
        value = system.read(uid, record, component)
        return value.decode("utf-8")
    except PolicyNotSatisfiedError:
        return "(access denied)"


def main():
    system = CloudStorageSystem(TOY80, seed=99)

    # Two independent administrative domains.
    system.add_authority("hospital", ["doctor", "nurse", "billing"])
    system.add_authority("trial", ["researcher", "monitor"])

    # The patient owns her data and defines all policies herself.
    system.add_owner("patient-jane")

    # Staff with attributes from one or both domains.
    system.add_user("dr-smith")
    system.issue_keys("dr-smith", "hospital", ["doctor"], "patient-jane")
    system.issue_keys("dr-smith", "trial", ["researcher"], "patient-jane")

    system.add_user("nurse-kim")
    system.issue_keys("nurse-kim", "hospital", ["nurse"], "patient-jane")
    system.issue_keys("nurse-kim", "trial", ["monitor"], "patient-jane")

    system.add_user("accountant-lee")
    system.issue_keys("accountant-lee", "hospital", ["billing"],
                      "patient-jane")

    # One record, five components, five policies — the paper's example
    # granularity: {name, address, security number, employer, salary}.
    system.upload(
        "patient-jane",
        "jane-2026",
        {
            "name": (
                b"Jane Doe",
                "hospital:doctor OR hospital:nurse OR hospital:billing",
            ),
            "vitals": (
                b"BP 120/80, HR 64",
                "hospital:doctor OR hospital:nurse",
            ),
            "diagnosis": (
                b"stage II, protocol B",
                "hospital:doctor AND trial:researcher",
            ),
            "trial-notes": (
                b"cohort 7, double-blind",
                "trial:researcher OR trial:monitor",
            ),
            "invoice": (b"$12,400", "hospital:billing"),
        },
    )

    components = ["name", "vitals", "diagnosis", "trial-notes", "invoice"]
    users = ["dr-smith", "nurse-kim", "accountant-lee"]
    width = max(len(c) for c in components)

    print("Who sees what (fine-grained access, Fig. 2 layout):\n")
    header = f"{'component':<{width}}  " + "  ".join(
        f"{uid:<16}" for uid in users
    )
    print(header)
    print("-" * len(header))
    for component in components:
        row = f"{component:<{width}}  "
        for uid in users:
            # dr-smith holds keys from both AAs; others from a subset —
            # reads that need a missing AA key are denied upstream.
            try:
                cell = try_read(system, uid, "jane-2026", component)
            except Exception:
                cell = "(access denied)"
            row += f"{cell:<16}  "
        print(row)

    print("\nCommunication so far (byte-metered channels, cf. Table IV):")
    for (role_a, role_b), stats in sorted(system.network.channels.items()):
        print(f"  {role_a:>6} <-> {role_b:<6} : {stats.messages:3d} messages, "
              f"{stats.bytes:6d} bytes")

    print(f"\nCloud storage used: {system.server.storage_bytes()} bytes "
          f"(ciphertexts only — the server never sees a content key)")


if __name__ == "__main__":
    main()

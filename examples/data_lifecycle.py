#!/usr/bin/env python3
"""Full data-management lifecycle on the simulated cloud.

Beyond the paper's core protocols, a usable deployment needs day-two
operations. This example exercises them all:

* the owner reads its OWN data back without any ABE keys (the ledger's
  encryption exponent strips the blinding directly);
* the owner updates a component's data — and tightens its policy — with
  fresh keys throughout;
* policy cost estimation before encrypting (rows, bytes, exps), and the
  expand-vs-insert threshold decision;
* record deletion, and the audit log of everything that happened.

Run:  python examples/data_lifecycle.py
"""

from repro.ec import TOY80
from repro.errors import PolicyNotSatisfiedError
from repro.pairing.serialize import element_sizes
from repro.policy.estimate import cheapest_threshold_method, estimate_policy
from repro.system import AuditLog, CloudStorageSystem


def main():
    system = CloudStorageSystem(TOY80, seed=77)
    system.add_authority("hr", ["manager", "payroll", "it"])
    system.add_owner("acme")
    system.add_user("pat")
    system.issue_keys("pat", "hr", ["manager"], "acme")

    print("=== Estimate before encrypting ===")
    sizes = element_sizes(TOY80)
    for policy in ("hr:manager OR hr:payroll",
                   "2 of (hr:manager, hr:payroll, hr:it)"):
        best = cheapest_threshold_method(policy, sizes)
        naive = estimate_policy(policy, sizes)
        print(f"  {policy}")
        print(f"    expand: {naive.lsss_rows:3d} rows, "
              f"{naive.ciphertext_bytes} B; best method: "
              f"{best.threshold_method} ({best.lsss_rows} rows, "
              f"{best.ciphertext_bytes} B)")

    system.upload("acme", "salaries", {
        "summary": (b"Q2 totals: $1.2M", "hr:manager OR hr:payroll"),
    })

    print("\n=== Owner self-read (no ABE keys) ===")
    print(f"  acme reads own data: "
          f"{system.read_own('acme', 'salaries', 'summary').decode()}")

    print("\n=== Component update with policy tightening ===")
    system.update_component(
        "acme", "salaries", "summary",
        b"Q2 totals: $1.2M (restated)", "hr:payroll",
    )
    print(f"  new payload stored; manager pat now reads: ", end="")
    try:
        system.read("pat", "salaries", "summary")
        print("!! policy change failed")
    except PolicyNotSatisfiedError:
        print("denied (policy tightened to payroll-only)")
    system.issue_keys("pat", "hr", ["manager", "payroll"], "acme")
    print(f"  after payroll grant: "
          f"{system.read('pat', 'salaries', 'summary').decode()}")

    print("\n=== Deletion ===")
    system.delete_record("acme", "salaries")
    print(f"  records on server: {sorted(system.server.record_ids) or '[]'}")

    print("\n=== Audit trail (metadata only, payload-free) ===")
    audit = AuditLog(system.network)
    print(f"  {len(audit)} transfers; kinds: "
          f"{', '.join(sorted(audit.kinds()))}")
    for talker in audit.top_talkers(limit=3):
        print(f"  {talker.entity:<14} sent {talker.sent_bytes:5d} B in "
              f"{talker.sent_messages:2d} msgs, received "
              f"{talker.received_bytes:5d} B")


if __name__ == "__main__":
    main()

"""Number theory, finite fields and linear algebra substrate."""

from repro.math.field import PrimeField
from repro.math.field_ext import QuadraticExtension

__all__ = ["PrimeField", "QuadraticExtension"]

"""What a simulated user fleet asks for: popularity and operation mix.

Record popularity follows a Zipf law — a handful of hot records absorb
most fetches while a long tail stays cold — because that is the regime
the BlobStore read cache (and its new hit/miss counters) actually
faces; uniform sampling would overstate cache misses and understate
them both at once, depending on pool size. The op mix mirrors the
paper's workload shape: reads dominate, uploads and component
replacements trickle, and revocation sweeps are rare, heavyweight
events.
"""

from __future__ import annotations

import random
from bisect import bisect_left

#: Operation classes a workload can mix. ``fetch`` downloads raw record
#: bytes; ``decrypt`` is the full user read path (download + ABE
#: decryption through the session cache). ``sweep`` is the Section V-C
#: bulk re-encryption — rare and heavyweight, so its share should stay
#: tiny in any realistic mix.
OP_CLASSES = ("fetch", "decrypt", "upload", "replace", "sweep")


class ZipfPopularity:
    """Zipf(alpha) sampling over ``n`` ranks via a precomputed CDF.

    Rank 0 is the hottest record. Sampling is one uniform draw plus a
    binary search — O(log n) with no rejection loop — so a million-op
    schedule costs milliseconds to generate. With ``alpha == 0`` the
    distribution degenerates to uniform.
    """

    def __init__(self, n: int, alpha: float = 1.1):
        if n < 1:
            raise ValueError("need at least one rank")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """One rank in ``[0, n)`` drawn from the Zipf law."""
        return bisect_left(self._cdf, rng.random())


class OpMix:
    """A weighted mix over :data:`OP_CLASSES`.

    Weights need not sum to 1 — they are normalized. Parseable from the
    CLI string form ``"fetch=0.8,upload=0.1,replace=0.08,sweep=0.02"``;
    omitted classes get weight 0.
    """

    def __init__(self, **weights: float):
        unknown = set(weights) - set(OP_CLASSES)
        if unknown:
            raise ValueError(f"unknown op classes: {sorted(unknown)}")
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("op weights must be non-negative")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("op mix needs at least one positive weight")
        self.weights = {
            cls: weights.get(cls, 0.0) / total for cls in OP_CLASSES
        }
        self._classes = [cls for cls in OP_CLASSES if self.weights[cls] > 0]
        self._cdf = []
        acc = 0.0
        for cls in self._classes:
            acc += self.weights[cls]
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    @classmethod
    def parse(cls, text: str) -> "OpMix":
        """Parse ``"fetch=0.8,upload=0.2"``-style CLI mix strings."""
        weights = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition("=")
            name = name.strip()
            if not value:
                raise ValueError(f"malformed op-mix entry {part!r} "
                                 f"(want class=weight)")
            try:
                weights[name] = float(value)
            except ValueError:
                raise ValueError(
                    f"malformed op-mix weight in {part!r}"
                ) from None
        return cls(**weights)

    @classmethod
    def default(cls) -> "OpMix":
        """The read-dominated default mix (downloads + full decrypts)."""
        return cls(fetch=0.55, decrypt=0.25, upload=0.10, replace=0.08,
                   sweep=0.02)

    @classmethod
    def fetch_only(cls) -> "OpMix":
        """Pure raw reads — the mix the byte-identity comparison uses."""
        return cls(fetch=1.0)

    @classmethod
    def decrypt_only(cls) -> "OpMix":
        """Pure end-to-end user reads — the decrypt-path capacity mix."""
        return cls(decrypt=1.0)

    def sample(self, rng: random.Random) -> str:
        """One op class drawn by weight."""
        return self._classes[bisect_left(self._cdf, rng.random())]

    def as_dict(self) -> dict:
        return dict(self.weights)

    def __repr__(self) -> str:
        inner = ",".join(f"{cls}={weight:g}"
                         for cls, weight in self.weights.items() if weight)
        return f"OpMix({inner})"

"""Engine semantics: registration, context bookkeeping, verdict rules.

The verdict rules are the engine's whole contract — honest runs must
pass every invariant, control runs must *fail* their declared one, and
a crash is never ok — so each rule gets its own toy scenario here.
"""

from pathlib import Path

import pytest

from repro.adversary.engine import (
    SCENARIOS,
    ScenarioContext,
    get_scenario,
    run_scenario,
    scenario,
    scenario_names,
)
from repro.ec.params import TOY80
from repro.pairing.group import PairingGroup

BUILTINS = [
    "revoked-key-replay",
    "collusion-pooling",
    "rogue-authority",
    "sweep-withholding",
    "spam-flood",
    "stale-replica",
    "stale-transform-token",
]


@pytest.fixture()
def toy_scenario():
    """Register a throwaway scenario; unregister on teardown."""
    registered = []

    def make(name, fn, control_invariant="gate"):
        scenario(name, title=name, claim="toy", control="toy",
                 control_invariant=control_invariant)(fn)
        registered.append(name)
        return name

    yield make
    for name in registered:
        SCENARIOS.pop(name, None)


def test_builtin_registry_is_complete():
    names = scenario_names()
    assert names == BUILTINS
    for name in names:
        spec = get_scenario(name)
        assert spec.claim and spec.control
        # The declared control invariant must be meaningful: a control
        # run keys its entire verdict on it.
        assert spec.control_invariant


def test_unknown_scenario_names_the_known_ones():
    get_scenario("revoked-key-replay")  # loads the registry
    with pytest.raises(KeyError, match="collusion-pooling"):
        get_scenario("no-such-scenario")


def test_duplicate_registration_is_refused(toy_scenario):
    async def noop(ctx):
        pass

    name = toy_scenario("toy-dup", noop)
    with pytest.raises(ValueError, match="duplicate"):
        scenario(name, title="x", claim="x", control="x",
                 control_invariant="x")(noop)


def test_context_records_checks_and_notes(tmp_path):
    group = PairingGroup(TOY80, seed=3)
    ctx = ScenarioContext(group, seed=3, control=False,
                          root=Path(tmp_path), params={"records": 2})
    assert ctx.param("records", 9) == 2
    assert ctx.param("absent", 9) == 9
    assert ctx.check("good", 1 == 1, "fine") is True
    assert ctx.check("bad", 1 == 2) is False
    assert ctx.result("good").ok and not ctx.result("bad").ok
    assert ctx.result("missing") is None
    assert any("PASS [good]" in note for note in ctx.notes)
    assert any("FAIL [bad]" in note for note in ctx.notes)


def test_honest_verdict_requires_every_invariant(toy_scenario):
    async def mixed(ctx):
        ctx.check("gate", True)
        ctx.check("other", ctx.seed == 99)

    name = toy_scenario("toy-mixed", mixed)
    verdict = run_scenario(name, seed=99)
    assert verdict["ok"] and verdict["passed"] and not verdict["error"]
    verdict = run_scenario(name, seed=1)
    assert not verdict["ok"] and not verdict["passed"]


def test_control_verdict_keys_on_the_declared_invariant(toy_scenario):
    async def defense(ctx):
        ctx.check("unrelated", False)  # may fail freely under control
        ctx.check("gate", not ctx.control)

    name = toy_scenario("toy-defense", defense)
    verdict = run_scenario(name, control=True)
    assert verdict["ok"] and not verdict["passed"]
    assert verdict["mode"] == "control"

    async def vacuous(ctx):
        ctx.check("gate", True)  # "defense off" changes nothing

    name = toy_scenario("toy-vacuous", vacuous)
    # A control whose declared invariant still passes proves the
    # checker has no teeth — that is a failure of the scenario.
    assert not run_scenario(name, control=True)["ok"]


def test_control_that_never_evaluates_its_invariant_fails(toy_scenario):
    async def skips(ctx):
        ctx.check("something-else", False)

    name = toy_scenario("toy-skips", skips)
    assert not run_scenario(name, control=True)["ok"]


def test_a_crash_is_never_ok(toy_scenario):
    async def dies(ctx):
        ctx.check("gate", False)
        raise RuntimeError("scenario exploded")

    name = toy_scenario("toy-crash", dies)
    honest = run_scenario(name)
    assert not honest["ok"] and "scenario exploded" in honest["error"]
    # Even though the declared invariant failed, the crash wins: a
    # control must COMPLETE with a failing check, not die on the way.
    control = run_scenario(name, control=True)
    assert not control["ok"] and control["error"]


def test_verdict_shape_is_json_ready(toy_scenario):
    async def simple(ctx):
        ctx.note("hello")
        ctx.check("gate", True, "detail text")

    name = toy_scenario("toy-shape", simple)
    verdict = run_scenario(name, seed=7)
    assert verdict["scenario"] == name
    assert verdict["seed"] == 7 and verdict["preset"] == "TOY80"
    assert verdict["invariants"] == [
        {"name": "gate", "ok": True, "detail": "detail text"}
    ]
    assert "hello" in verdict["notes"]
    assert verdict["seconds"] >= 0

"""CryptoPool: inline fast path, process fan-out, ordering, lifecycle."""

import pytest

from repro.parallel.pool import CryptoPool, chunked


def _affine(x, a, b):
    """Module-level so the process pool can pickle it."""
    return a * x + b


def test_chunked_partitions_in_order():
    assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert chunked([], 3) == []
    assert chunked([1, 2], 10) == [[1, 2]]


def test_chunked_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        chunked([1], 0)


def test_inline_pool_runs_in_caller():
    pool = CryptoPool(0)
    assert pool.inline
    assert pool.map_jobs(_affine, [(x, 2, 1) for x in range(5)]) \
        == [2 * x + 1 for x in range(5)]
    with pytest.raises(ValueError):
        pool.executor


def test_negative_workers_rejected():
    with pytest.raises(ValueError):
        CryptoPool(-1)


def test_pooled_results_keep_submission_order():
    with CryptoPool(2) as pool:
        assert not pool.inline
        jobs = [(x, 3, -1) for x in range(20)]
        assert pool.map_jobs(_affine, jobs) == [3 * x - 1 for x in range(20)]


def test_shutdown_is_idempotent():
    pool = CryptoPool(1)
    pool.map_jobs(_affine, [(1, 1, 0)])
    pool.shutdown()
    pool.shutdown()


def test_warm_boots_workers_and_is_inline_noop():
    inline = CryptoPool(0)
    inline.warm()  # must not try to build an executor
    with pytest.raises(ValueError):
        inline.executor
    with CryptoPool(2) as pool:
        pool.warm(hold_seconds=0.01)
        assert pool.map_jobs(_affine, [(x, 1, 1) for x in range(4)]) \
            == [x + 1 for x in range(4)]

"""Ablation D: outsourced decryption (GHW-style transform keys).

Quantifies what moving the pairings to the server buys a constrained
user: local Decrypt (2l + n_A pairings) vs server_transform (same
pairings, but at the server) + user_finalize (one GT exponentiation).
"""

import pytest

from benchmarks.conftest import PRESET, run_once
from repro.analysis.timing import build_ours
from repro.core.decrypt import decrypt
from repro.core.outsourcing import (
    make_transform_key,
    server_transform,
    user_finalize,
)

N_AUTHORITIES = 3
ATTRS = 5


@pytest.fixture(scope="module")
def world():
    workload = build_ours(PRESET, N_AUTHORITIES, ATTRS, seed=55)
    ciphertext = workload.encrypt()
    transform, retrieval = make_transform_key(
        workload.group, workload.user_public_key, workload.secret_keys
    )
    partial = server_transform(workload.group, ciphertext, transform)
    return workload, ciphertext, transform, retrieval, partial


def test_local_decrypt(benchmark, world):
    workload, ciphertext, _, _, _ = world
    benchmark.group = "ablation outsourcing"
    message = run_once(
        benchmark, decrypt, workload.group, ciphertext,
        workload.user_public_key, workload.secret_keys,
    )
    assert message == workload.message


def test_server_transform(benchmark, world):
    workload, ciphertext, transform, retrieval, _ = world
    benchmark.group = "ablation outsourcing"
    partial = run_once(
        benchmark, server_transform, workload.group, ciphertext, transform
    )
    assert user_finalize(ciphertext, partial, retrieval) == workload.message


def test_user_finalize(benchmark, world):
    workload, ciphertext, _, retrieval, partial = world
    benchmark.group = "ablation outsourcing"
    message = run_once(benchmark, user_finalize, ciphertext, partial,
                       retrieval)
    assert message == workload.message


def test_make_transform_key(benchmark, world):
    workload, _, _, _, _ = world
    benchmark.group = "ablation outsourcing"
    transform, retrieval = run_once(
        benchmark, make_transform_key, workload.group,
        workload.user_public_key, workload.secret_keys,
    )
    assert transform.uid == retrieval.uid

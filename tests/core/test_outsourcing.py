"""Tests for outsourced decryption."""

import pytest

from repro.core.outsourcing import (
    make_transform_key,
    server_transform,
    server_transform_many,
    user_finalize,
)
from repro.errors import PolicyNotSatisfiedError, SchemeError

POLICY = "hospital:doctor AND trial:researcher"


@pytest.fixture()
def world(deployment):
    public, keys = deployment.add_user(
        "u", hospital_attrs=["doctor"], trial_attrs=["researcher"]
    )
    message = deployment.scheme.random_message()
    ciphertext = deployment.owner.encrypt(message, POLICY)
    return deployment, public, keys, message, ciphertext


class TestCorrectness:
    def test_roundtrip(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, retrieval = make_transform_key(group, public, keys)
        partial = server_transform(group, ciphertext, transform)
        assert user_finalize(ciphertext, partial, retrieval) == message

    def test_matches_local_decryption(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        local = deployment.scheme.decrypt(ciphertext, public, keys)
        transform, retrieval = make_transform_key(group, public, keys)
        outsourced = user_finalize(
            ciphertext, server_transform(group, ciphertext, transform),
            retrieval,
        )
        assert local == outsourced == message

    def test_user_does_zero_pairings(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, retrieval = make_transform_key(group, public, keys)
        partial = server_transform(group, ciphertext, transform)
        group.counter.reset()
        result = user_finalize(ciphertext, partial, retrieval)
        assert result == message
        assert group.counter.pairings == 0
        assert group.counter.gt_exponentiations == 1

    def test_server_does_all_pairings(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, retrieval = make_transform_key(group, public, keys)
        group.counter.reset()
        server_transform(group, ciphertext, transform)
        # 2 rows used + numerator over 2 authorities = 2*2 + 2 pairings.
        assert group.counter.pairings == 6


class TestSecurity:
    def test_partial_alone_does_not_reveal_message(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, _ = make_transform_key(group, public, keys)
        partial = server_transform(group, ciphertext, transform)
        # The server's best guess without z: divide C by the partial.
        assert ciphertext.c / partial != message
        assert partial != ciphertext.c / message  # i.e. blinding ≠ B itself

    def test_wrong_retrieval_key_fails(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, retrieval = make_transform_key(group, public, keys)
        partial = server_transform(group, ciphertext, transform)
        from repro.core.outsourcing import RetrievalKey

        wrong = RetrievalKey(uid="u", z=retrieval.z + 1)
        assert user_finalize(ciphertext, partial, wrong) != message

    def test_transform_key_respects_policy(self, world):
        """The server cannot transform ciphertexts the underlying key
        does not satisfy."""
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        other_ct = deployment.owner.encrypt(
            deployment.scheme.random_message(),
            "hospital:nurse AND trial:researcher",
        )
        transform, _ = make_transform_key(group, public, keys)
        with pytest.raises(PolicyNotSatisfiedError):
            server_transform(group, other_ct, transform)


class TestApi:
    def test_empty_keys_rejected(self, world):
        deployment, public, keys, message, ciphertext = world
        with pytest.raises(SchemeError):
            make_transform_key(deployment.scheme.group, public, {})

    def test_foreign_key_rejected(self, world):
        deployment, public, keys, message, ciphertext = world
        other_public, other_keys = deployment.add_user(
            "w", hospital_attrs=["doctor"]
        )
        mixed = {"hospital": other_keys["hospital"], "trial": keys["trial"]}
        with pytest.raises(SchemeError):
            make_transform_key(deployment.scheme.group, public, mixed)

    def test_version_discipline_still_enforced(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, retrieval = make_transform_key(group, public, keys)
        result = deployment.scheme.revoke("hospital", "u", ["doctor"])
        ui = deployment.owner.update_info(ciphertext, result.update_key)
        deployment.owner.apply_update_key(result.update_key)
        updated = deployment.scheme.reencrypt(
            ciphertext, result.update_key, ui
        )
        with pytest.raises(SchemeError, match="version"):
            server_transform(group, updated, transform)


class TestBatchTransform:
    def test_batch_matches_per_ciphertext(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        messages = [deployment.scheme.random_message() for _ in range(3)]
        # Two policy shapes in one batch: the batch path builds one
        # internal session per shape, never mixes them up.
        ciphertexts = [ciphertext] + [
            deployment.owner.encrypt(
                messages[0], "hospital:doctor OR trial:researcher"
            ),
            deployment.owner.encrypt(messages[1], POLICY),
        ]
        transform, retrieval = make_transform_key(group, public, keys)
        batched = server_transform_many(group, ciphertexts, transform)
        for one, many in zip(
            (server_transform(group, c, transform) for c in ciphertexts),
            batched,
        ):
            assert one.to_bytes() == many.to_bytes()
        assert user_finalize(ciphertexts[0], batched[0], retrieval) \
            == message

    def test_stale_batch_rejected_before_any_pairing(self, world):
        deployment, public, keys, message, ciphertext = world
        group = deployment.scheme.group
        transform, _ = make_transform_key(group, public, keys)
        result = deployment.scheme.revoke("hospital", "u", ["doctor"])
        ui = deployment.owner.update_info(ciphertext, result.update_key)
        deployment.owner.apply_update_key(result.update_key)
        updated = deployment.scheme.reencrypt(
            ciphertext, result.update_key, ui
        )
        group.counter.reset()
        with pytest.raises(SchemeError, match="version"):
            server_transform_many(group, [updated], transform)
        assert group.counter.pairings == 0

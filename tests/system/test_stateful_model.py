"""Model-based stateful testing of the full access-control system.

Hypothesis drives random interleavings of key issuance, uploads, reads
and revocations against a simple set-based model of "who currently
holds which attributes". After every read, the real system's outcome
(plaintext vs a denial) must match the model's prediction. This is the
strongest correctness statement in the suite: no sequence of supported
operations may leave keys, versions and re-encrypted ciphertexts in a
state where access control and the model disagree.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.ec.params import TOY80
from repro.errors import (
    AuthorizationError,
    PolicyNotSatisfiedError,
    SchemeError,
)
from repro.policy.parser import parse
from repro.system.workflow import CloudStorageSystem

ATTRS = ["a", "b", "c"]
POLICIES = [
    "aa:a",
    "aa:b",
    "aa:a AND aa:b",
    "aa:a OR aa:c",
    "(aa:a AND aa:b) OR aa:c",
]
USER_IDS = ["u0", "u1", "u2"]
DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)


class AccessControlMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.system = CloudStorageSystem(TOY80, seed=0xBEEF)
        self.system.add_authority("aa", ATTRS)
        self.system.add_owner("alice")
        self.users = {}
        for uid in USER_IDS:
            self.system.add_user(uid)
            self.users[uid] = None  # registered, no keys yet
        self.records = {}
        self.counter = 0
        self.op_log = []

    # -- rules -----------------------------------------------------------------

    @rule(
        uid=st.sampled_from(USER_IDS),
        subset=st.sets(st.sampled_from(ATTRS), min_size=1),
    )
    def issue_keys(self, uid, subset):
        self.system.issue_keys(uid, "aa", sorted(subset), "alice")
        self.users[uid] = set(subset)
        self.op_log.append(("issue", uid, tuple(sorted(subset))))

    @rule(policy=st.sampled_from(POLICIES))
    def upload(self, policy):
        self.counter += 1
        record_id = f"rec{self.counter}"
        payload = f"data-{self.counter}".encode("utf-8")
        self.system.upload("alice", record_id, {"body": (payload, policy)})
        self.records[record_id] = (policy, payload)
        self.op_log.append(("upload", record_id, policy))

    def _do_read(self, uid, data):
        record_id = data.draw(
            st.sampled_from(sorted(self.records)), label="record"
        )
        policy, payload = self.records[record_id]
        held = self.users[uid]
        if held is None:
            expect_success = False
        else:
            qualified = {f"aa:{name}" for name in held}
            expect_success = parse(policy).evaluate(qualified)
        context = (
            f"{uid} holding {held} reads {record_id} ({policy}); "
            f"history: {self.op_log}"
        )
        try:
            result = self.system.read(uid, record_id, "body")
            assert expect_success, f"unauthorized read SUCCEEDED: {context}"
            assert result == payload, f"wrong plaintext: {context}"
        except DENIED as exc:
            assert not expect_success, (
                f"authorized read DENIED ({type(exc).__name__}): {context}"
            )
        self.op_log.append(("read", uid, record_id))

    @precondition(lambda self: bool(self.records))
    @rule(uid=st.sampled_from(USER_IDS), data=st.data())
    def read(self, uid, data):
        self._do_read(uid, data)

    @precondition(lambda self: any(self.users.values()))
    @rule(data=st.data())
    def revoke(self, data):
        candidates = sorted(
            uid for uid, held in self.users.items() if held
        )
        uid = data.draw(st.sampled_from(candidates), label="revoked user")
        held = self.users[uid]
        attribute = data.draw(
            st.sampled_from(sorted(held)), label="revoked attribute"
        )
        self.system.revoke("aa", uid, [attribute])
        held.discard(attribute)
        if not held:
            self.users[uid] = None  # all keys gone
        self.op_log.append(("revoke", uid, attribute))

    @precondition(lambda self: bool(self.records))
    @rule(uid=st.sampled_from(USER_IDS), data=st.data())
    def read_again(self, uid, data):
        """Second read rule: doubles the probability that hypothesis
        schedules a read, so revoke-then-read sequences actually occur."""
        self._do_read(uid, data)

    # -- invariants ------------------------------------------------------------------

    @invariant()
    def server_never_stores_plaintext(self):
        if not hasattr(self, "records"):
            return
        for record_id, (_, payload) in self.records.items():
            stored = self.system.server.record(record_id)
            assert payload not in stored.component("body").data_ciphertext.body


AccessControlMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=20, deadline=None
)
TestAccessControlModel = AccessControlMachine.TestCase

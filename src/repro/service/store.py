"""Persistent content-addressed storage for the service deployment.

Two layers:

* :class:`BlobStore` — an immutable blob pool keyed by SHA-256. Blobs
  live in two-level sharded directories (``objects/ab/cd/<hex>``) so no
  single directory grows unboundedly; writes go to a private ``tmp/``
  file that is fsynced and then atomically :func:`os.replace`d into
  place, so a crash mid-write can never leave a partial object under a
  valid name (leftover tmp files are swept on open). Reads verify the
  digest — silent disk corruption surfaces as :class:`StorageError`,
  never as garbage ciphertext — and go through a bounded LRU cache.

* :class:`RecordStore` — the server's view: named, mutable record refs
  (``refs/<quoted-record-id>`` → blob digest) over the blob pool, plus
  the ciphertext-id index ReEncrypt needs. Replacing a record writes
  the new blob, atomically repoints the ref, then garbage-collects the
  old blob once nothing references it. Bulk replacement
  (:meth:`RecordStore.replace_record_bytes_many`) publishes all of a
  batch's repoints AND the new blob bytes as one atomically-renamed
  ``refbatches/<seq>`` pack file instead of per-record blob and ref
  writes; pack files overlay the loose refs at open (their embedded
  blobs served by offset) and are folded back into loose refs and
  loose blobs before any loose-ref mutation. Re-opening an existing
  root rebuilds all indexes from disk.

The on-disk record bytes are exactly
:meth:`repro.system.records.StoredRecord.to_bytes` — the same format
:meth:`repro.system.entities.ServerEntity.export_state` uses — so blobs
move freely between the simulation and the service.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from urllib.parse import quote, unquote

from repro.errors import StorageError
from repro.pairing.group import PairingGroup
from repro.system.records import StoredComponent, StoredRecord


class BlobStore:
    """SHA-256-keyed blob pool: sharded dirs, atomic writes, LRU reads."""

    def __init__(self, root, *, cache_entries: int = 128,
                 cache_bytes: int = 32 * 1024 * 1024):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tmp_dir = self.root / "tmp"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tmp_dir.mkdir(parents=True, exist_ok=True)
        # Interrupted writes leave orphans only in tmp/; sweep them.
        for leftover in self.tmp_dir.iterdir():
            leftover.unlink()
        self.cache_entries = max(1, cache_entries)
        self.cache_bytes = cache_bytes
        self._cache = OrderedDict()  # digest -> blob
        self._cache_total = 0
        # Plain-int telemetry (single interpreter lock per += is fine:
        # all store mutations run on the server's one offload thread).
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self._meter = None
        # Blobs living inside refpack files (see RecordStore's bulk
        # replacement): digest -> (pack path, byte offset, length).
        self._packs = {}

    def _path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest[2:4] / digest

    # -- cache ------------------------------------------------------------

    def attach_meter(self, meter) -> None:
        """Mirror cache telemetry into a :class:`repro.system.meter.
        Meter` as ``store.cache.{hit,miss,eviction}`` bumps, so the
        server's stats endpoint (and ``client stats``) expose the read
        cache's behaviour under load."""
        self._meter = meter

    def _cache_put(self, digest: str, blob: bytes) -> None:
        if len(blob) > self.cache_bytes:
            return
        if digest in self._cache:
            self._cache.move_to_end(digest)
            return
        self._cache[digest] = blob
        self._cache_total += len(blob)
        while (len(self._cache) > self.cache_entries
               or self._cache_total > self.cache_bytes):
            _, evicted = self._cache.popitem(last=False)
            self._cache_total -= len(evicted)
            self.cache_evictions += 1
            if self._meter is not None:
                self._meter.bump("store.cache.eviction")

    def _cache_drop(self, digest: str) -> None:
        blob = self._cache.pop(digest, None)
        if blob is not None:
            self._cache_total -= len(blob)

    def _note_cache_hit(self) -> None:
        self.cache_hits += 1
        if self._meter is not None:
            self._meter.bump("store.cache.hit")

    def _note_cache_miss(self) -> None:
        self.cache_misses += 1
        if self._meter is not None:
            self._meter.bump("store.cache.miss")

    def cache_stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "bytes": self._cache_total,
            "capacity_entries": self.cache_entries,
            "capacity_bytes": self.cache_bytes,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
        }

    # -- storage ----------------------------------------------------------

    def put(self, blob: bytes, *, force: bool = False) -> str:
        """Store a blob; returns its hex digest. Idempotent.

        ``force`` rewrites the object file even when a file already
        exists under the digest's path — the repair path uses it,
        because the very situation repair fixes is an existing file
        whose bytes no longer match its name.
        """
        digest = hashlib.sha256(blob).hexdigest()
        path = self._path(digest)
        if force or not path.exists():
            fd, tmp_name = tempfile.mkstemp(dir=self.tmp_dir)
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                try:
                    os.replace(tmp_name, path)
                except FileNotFoundError:
                    # First blob in this shard: create the directory
                    # lazily instead of stat-ing it on every put.
                    path.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(tmp_name, path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise
        self._cache_put(digest, blob)
        return digest

    def get(self, digest: str) -> bytes:
        blob = self._cache.get(digest)
        if blob is not None:
            self._cache.move_to_end(digest)
            self._note_cache_hit()
            return blob
        self._note_cache_miss()
        try:
            blob = self._path(digest).read_bytes()
        except FileNotFoundError:
            blob = None
        if blob is not None and hashlib.sha256(blob).hexdigest() != digest:
            # A bad loose copy with a live pack entry is a
            # half-materialized compaction (interrupted before its sync
            # barrier) — the pack it was copied from is authoritative.
            # With no pack entry it is disk corruption.
            if digest in self._packs:
                blob = None
            else:
                raise StorageError(f"blob {digest!r} is corrupted on disk")
        if blob is None:
            blob = self._read_packed(digest)
            if blob is None:
                raise StorageError(f"no blob {digest!r}")
        self._cache_put(digest, blob)
        return blob

    def contains(self, digest: str) -> bool:
        return (digest in self._cache or digest in self._packs
                or self._path(digest).exists())

    def delete(self, digest: str) -> None:
        self._cache_drop(digest)
        # Dropping the pack entry unreferences the packed bytes; the
        # dead span is physically reclaimed when compaction deletes the
        # whole pack file.
        self._packs.pop(digest, None)
        try:
            self._path(digest).unlink()
        except FileNotFoundError:
            pass

    def digests(self) -> list:
        loose = {
            path.name
            for path in self.objects_dir.glob("??/??/*")
            if path.is_file()
        }
        return sorted(loose | set(self._packs))

    # -- packed blobs ------------------------------------------------------

    def register_packed(self, digest: str, path, offset: int,
                        length: int) -> None:
        """Serve ``digest`` from ``length`` bytes at ``offset`` of a
        refpack file (verified against the digest on every read)."""
        self._packs[digest] = (path, offset, length)

    def clear_packed(self) -> None:
        """Forget every pack entry (compaction deletes the pack files
        after materializing the still-referenced blobs loose)."""
        self._packs.clear()

    def _read_packed(self, digest: str):
        entry = self._packs.get(digest)
        if entry is None:
            return None
        path, offset, length = entry
        with open(path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read(length)
        if hashlib.sha256(blob).hexdigest() != digest:
            raise StorageError(f"packed blob {digest!r} is corrupted on disk")
        return blob


_REFPACK_MAGIC = b"refpack1\n"


def _iter_refpack(path: Path):
    """Yield ``(record_id, digest, blob_offset, blob_length)`` per entry.

    Refpack layout (all integers big-endian u32): the magic line, then
    repeated ``id_len | id_utf8 | 64-byte hex digest | blob_len | blob``.
    Entries later in a pack (and in later packs) supersede earlier ones
    for the same record id.
    """
    data = path.read_bytes()
    if not data.startswith(_REFPACK_MAGIC):
        raise StorageError(f"refpack {path.name!r} has a bad header")
    pos = len(_REFPACK_MAGIC)
    end = len(data)
    try:
        while pos < end:
            id_len = int.from_bytes(data[pos:pos + 4], "big")
            pos += 4
            record_id = data[pos:pos + id_len].decode("utf-8")
            pos += id_len
            digest = data[pos:pos + 64].decode("ascii")
            pos += 64
            blob_len = int.from_bytes(data[pos:pos + 4], "big")
            pos += 4
            if pos + blob_len > end:
                raise StorageError(f"refpack {path.name!r} is truncated")
            yield record_id, digest, pos, blob_len
            pos += blob_len
    except (UnicodeDecodeError, IndexError) as exc:
        raise StorageError(f"refpack {path.name!r} is corrupted") from exc


def _atomic_write(directory: Path, path: Path, data: bytes) -> None:
    """tmp-file-then-rename write for small metadata files (refs)."""
    fd, tmp_name = tempfile.mkstemp(dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


class RecordStore:
    """The server's persistent record table over a :class:`BlobStore`."""

    def __init__(self, root, group: PairingGroup, *,
                 cache_entries: int = 128,
                 cache_bytes: int = 32 * 1024 * 1024):
        self.root = Path(root)
        self.group = group
        self.blobs = BlobStore(self.root, cache_entries=cache_entries,
                               cache_bytes=cache_bytes)
        self.refs_dir = self.root / "refs"
        self.keys_dir = self.root / "keys"
        self.refbatch_dir = self.root / "refbatches"
        self.refs_dir.mkdir(parents=True, exist_ok=True)
        self.keys_dir.mkdir(parents=True, exist_ok=True)
        self.refbatch_dir.mkdir(parents=True, exist_ok=True)
        self._refs = {}              # record id -> digest
        self._refcounts = {}         # digest -> number of refs pointing at it
        self._ciphertext_index = {}  # ciphertext id -> (record id, name)
        self._pending_collect = []   # old digests awaiting commit_replacements
        self._deferred_unlinks = []  # dead loose blobs awaiting reclamation
        # Replay order: loose refs first, then refpack files in
        # sequence order — each pack repoints ids whose loose refs are
        # stale (and whose old blobs may already be collected), so the
        # overlay must resolve before anything is decoded. The packs
        # carry their blobs inline; register them so reads resolve.
        refs = {}
        for ref_path in self.refs_dir.iterdir():
            refs[unquote(ref_path.name)] = ref_path.read_text("ascii").strip()
        self._refbatch_files = sorted(self.refbatch_dir.iterdir())
        for batch_path in self._refbatch_files:
            for record_id, digest, offset, length in _iter_refpack(batch_path):
                refs[record_id] = digest
                self.blobs.register_packed(digest, batch_path, offset, length)
        self._refbatch_seq = (
            int(self._refbatch_files[-1].name) + 1
            if self._refbatch_files else 0
        )
        for record_id, digest in refs.items():
            self._set_ref(record_id, digest)
            self._index_record(self._decode(digest))

    def attach_meter(self, meter) -> None:
        """Expose the blob cache's hit/miss/eviction telemetry through a
        shared :class:`repro.system.meter.Meter` (see
        :meth:`BlobStore.attach_meter`)."""
        self.blobs.attach_meter(meter)

    def cache_stats(self) -> dict:
        return self.blobs.cache_stats()

    def _ref_path(self, record_id: str) -> Path:
        return self.refs_dir / quote(record_id, safe="")

    def _decode(self, digest: str) -> StoredRecord:
        return StoredRecord.from_bytes(self.group, self.blobs.get(digest))

    def _index_record(self, record: StoredRecord) -> None:
        for name, component in record.components.items():
            self._ciphertext_index[component.abe_ciphertext.ciphertext_id] = (
                record.record_id, name
            )

    def _unindex_record(self, record: StoredRecord) -> None:
        for component in record.components.values():
            self._ciphertext_index.pop(
                component.abe_ciphertext.ciphertext_id, None
            )

    def _set_ref(self, record_id: str, digest: str) -> None:
        """Point a record id at a digest, keeping the refcounts exact."""
        old = self._refs.get(record_id)
        if old is not None:
            self._refcounts[old] -= 1
            if not self._refcounts[old]:
                del self._refcounts[old]
        self._refs[record_id] = digest
        self._refcounts[digest] = self._refcounts.get(digest, 0) + 1

    def _drop_ref(self, record_id: str) -> None:
        digest = self._refs.pop(record_id)
        self._refcounts[digest] -= 1
        if not self._refcounts[digest]:
            del self._refcounts[digest]

    def _compact_refbatches(self) -> None:
        """Fold live refpack files back into loose refs and blobs.

        Must run before any *loose*-ref mutation: open-time replay is
        loose refs first, then packs, so a fresh loose write (or a
        ref unlink) for an id that a surviving pack file also names
        would be overridden on the next open. For every packed id the
        current blob is materialized as a loose object (atomic rename,
        so a crash never leaves a torn blob under a valid name — and a
        renamed-but-unsynced one is outranked by the still-live pack
        entry, see :meth:`BlobStore.get`) and the loose ref is
        rewritten at the current in-memory digest. One ``os.sync()``
        makes it all durable, then the pack files are removed
        oldest-first — replaying whatever suffix a crash leaves behind
        still converges to this exact state, because later packs carry
        the newer digests and their blobs.
        """
        self._reclaim_dead_blobs()
        if not self._refbatch_files:
            return
        record_ids = set()
        for batch_path in self._refbatch_files:
            for record_id, _, _, _ in _iter_refpack(batch_path):
                record_ids.add(record_id)
        blobs = self.blobs
        tmp_dir = str(blobs.tmp_dir)
        tag = f"compact-{os.getpid()}"
        for index, record_id in enumerate(record_ids):
            digest = self._refs[record_id]
            blob_path = blobs._path(digest)
            if not blob_path.exists():
                tmp_name = os.path.join(tmp_dir, f"{tag}-blob-{index}")
                with open(tmp_name, "wb") as handle:
                    handle.write(blobs.get(digest))
                try:
                    os.replace(tmp_name, blob_path)
                except FileNotFoundError:
                    blob_path.parent.mkdir(parents=True, exist_ok=True)
                    os.replace(tmp_name, blob_path)
            tmp_name = os.path.join(tmp_dir, f"{tag}-{index}")
            with open(tmp_name, "wb") as handle:
                handle.write(digest.encode("ascii"))
            os.replace(tmp_name, self._ref_path(record_id))
        os.sync()
        for batch_path in self._refbatch_files:
            batch_path.unlink()
        self._refbatch_files = []
        blobs.clear_packed()

    def _collect(self, digest: str) -> None:
        """Drop a blob no ref points at any more (O(1) via refcounts —
        a bulk sweep replaces every record, so a scan of ``_refs`` here
        would make revocation quadratic in the store size)."""
        if digest not in self._refcounts:
            self.blobs.delete(digest)

    # -- records ----------------------------------------------------------

    def put(self, record: StoredRecord, replace: bool = False) -> str:
        """Persist a record; returns the blob digest.

        Ordered for crash safety: the new blob lands first, then the
        ref repoints atomically, and only then is the old blob eligible
        for collection. A crash (or write failure) at any point leaves
        the previous record fully readable — the worst case is an
        orphaned blob that :meth:`gc` reclaims later.
        """
        self._compact_refbatches()
        old_digest = self._refs.get(record.record_id)
        if old_digest is not None and not replace:
            raise StorageError(
                f"record {record.record_id!r} already exists "
                f"(pass replace=True to overwrite)"
            )
        old_record = None if old_digest is None else self._decode(old_digest)
        digest = self.blobs.put(record.to_bytes())
        _atomic_write(self.blobs.tmp_dir, self._ref_path(record.record_id),
                      digest.encode("ascii"))
        self._set_ref(record.record_id, digest)
        if old_record is not None:
            self._unindex_record(old_record)
        self._index_record(record)
        if old_digest is not None and old_digest != digest:
            self._collect(old_digest)
        return digest

    def get(self, record_id: str) -> StoredRecord:
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        return self._decode(digest)

    def get_record_bytes(self, record_id: str) -> bytes:
        """The digest-verified raw blob of a record, no element decode.

        The bulk sweep reads records this way and decodes them trusted
        inside a worker — the digest check here is what justifies
        skipping the per-element subgroup checks there.
        """
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        return self.blobs.get(digest)

    def digest(self, record_id: str) -> str:
        """The content digest a record's ref points at (no disk read)."""
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        return digest

    def verify_record(self, record_id: str) -> bool:
        """Whether the record's blob serves bytes matching its digest.

        ``True`` means this store can hand out digest-verified bytes for
        the record right now (a cached copy counts — the cache is
        digest-addressed, so a hit IS verified). ``False`` means the
        on-disk copy is corrupted or missing: the record needs repair
        from a healthy replica. Unknown record ids raise, they are a
        different failure (the ref itself is gone).
        """
        digest = self.digest(record_id)
        try:
            self.blobs.get(digest)
        except StorageError:
            return False
        return True

    def probe_writable(self) -> bool:
        """Whether the backing filesystem accepts writes right now.

        Writes, fsyncs, and unlinks a probe file in the blob pool's
        ``tmp/`` directory — the same directory every durable write
        stages through — so a ``True`` here means the failure mode that
        degraded the server (full disk, remount read-only, dead device)
        has cleared. Used by the server's read-only *recovery* path;
        never raises.
        """
        probe = self.blobs.tmp_dir / f"probe-{os.getpid()}"
        try:
            with open(probe, "wb") as handle:
                handle.write(b"writable?")
                handle.flush()
                os.fsync(handle.fileno())
            os.unlink(probe)
        except OSError:
            try:
                os.unlink(probe)
            except OSError:
                pass
            return False
        return True

    def put_record_bytes(self, record_id: str, blob: bytes) -> str:
        """Force-put pre-encoded record bytes — the repair write.

        Unlike :meth:`replace_record_bytes` the record may be missing
        (a replica that never saw the write) and the blob write is
        forced (the blob file may exist under the right name with the
        wrong bytes — exactly the corruption repair undoes). The bytes
        are fully decoded first, so a repair peddling garbage or group
        elements off the curve is rejected before anything lands on
        disk, and the ciphertext-id index follows the decoded record.
        Byte-preserving: the stored blob is ``blob`` itself, so replicas
        repaired from the same source stay digest-identical.
        """
        record = StoredRecord.from_bytes(self.group, blob)
        if record.record_id != record_id:
            raise StorageError(
                f"repair bytes encode record {record.record_id!r}, "
                f"not {record_id!r}"
            )
        self._compact_refbatches()
        old_digest = self._refs.get(record_id)
        if old_digest is not None:
            try:
                self._unindex_record(self._decode(old_digest))
            except StorageError:
                # The old blob is the corrupted thing being repaired;
                # its index entries are swept by record id instead.
                stale = [
                    ciphertext_id
                    for ciphertext_id, (owner_record_id, _)
                    in self._ciphertext_index.items()
                    if owner_record_id == record_id
                ]
                for ciphertext_id in stale:
                    del self._ciphertext_index[ciphertext_id]
        digest = self.blobs.put(blob, force=True)
        _atomic_write(self.blobs.tmp_dir, self._ref_path(record_id),
                      digest.encode("ascii"))
        self._set_ref(record_id, digest)
        self._index_record(record)
        if old_digest is not None and old_digest != digest:
            self._collect(old_digest)
        return digest

    def replace_record_bytes(self, record_id: str, blob: bytes) -> str:
        """Repoint an existing record at pre-encoded bytes; returns the
        new digest.

        Same crash-safe ordering as :meth:`put` with ``replace=True``
        (blob first, atomic ref repoint, then collect the old blob), but
        with *no* decode of either record. Only valid when the
        replacement preserves the record's ciphertext-id → component
        mapping, so the index needs no maintenance — ReEncrypt does:
        ids, component names and symmetric bodies are invariant under
        it. Callers that change the mapping must use :meth:`put`.
        """
        self._compact_refbatches()
        old_digest = self._refs.get(record_id)
        if old_digest is None:
            raise StorageError(f"no record {record_id!r}")
        digest = self.blobs.put(blob)
        _atomic_write(self.blobs.tmp_dir, self._ref_path(record_id),
                      digest.encode("ascii"))
        self._set_ref(record_id, digest)
        if old_digest != digest:
            self._collect(old_digest)
        return digest

    def replace_record_bytes_many(self, items, durable: bool = True) -> list:
        """Repoint many existing records as ONE durability group.

        Byte-wise identical to calling :meth:`replace_record_bytes` per
        ``(record_id, blob)`` pair; what changes is the file schedule.
        The per-record path pays two fsyncs, a blob file creation and
        two ref metadata ops per record — at sweep scale that is the
        dominant storage cost. Here the whole batch — every repoint
        AND every new blob's bytes — is serialized into ONE refpack
        file (see :func:`_iter_refpack`) that a single ``os.replace``
        publishes under ``refbatches/``. Packs are replayed over the
        loose refs on open (their blobs served by offset through
        :meth:`BlobStore.register_packed`) and folded back into loose
        refs and blobs by :meth:`_compact_refbatches` before any
        loose-ref mutation. The batch is made durable by the single
        ``os.sync()`` barrier in :meth:`commit_replacements` — called
        here when ``durable`` (the default), or deferred by a
        multi-batch caller (the sweep) that commits once after its
        last batch.

        Crash-safety invariants versus the per-record path:

        * refs and blobs publish in ONE atomic rename — there is no
          blob-before-ref ordering to maintain, and a visible pack can
          never name a blob it does not fully contain (a truncated
          rename target is impossible; a crash before the rename
          leaves only a tmp file that open-time sweeping removes);
        * an old blob is only *unlinked* by :meth:`commit_replacements`,
          after the sync barrier has made every repoint that released
          it durable;
        * the whole batch lands atomically, so each record reads back
          at its old or its new bytes, never in between — strictly
          coarser than the per-record path, whose crash mid-loop loses
          a suffix of the repoints.

        What deferral trades away is durable-on-return per batch: until
        the commit runs, an applied batch can be lost (never torn) by a
        crash. Callers that defer must commit before acknowledging the
        work. Returns the new digests in input order.
        """
        items = list(items)
        if not items:
            return []
        # Any unlinks the previous batch's commit deferred are paid
        # here, at the head of the NEXT bulk mutation — reclamation
        # amortizes across sweeps instead of sitting inside each
        # sweep's acknowledgement window.
        self._reclaim_dead_blobs()
        blobs = self.blobs
        new_digests = []
        old_digests = []
        for record_id, blob in items:
            old = self._refs.get(record_id)
            if old is None:
                raise StorageError(f"no record {record_id!r}")
            old_digests.append(old)
        chunks = [_REFPACK_MAGIC]
        offsets = []  # blob byte offset per item, aligned with items
        pos = len(_REFPACK_MAGIC)
        for record_id, blob in items:
            digest = hashlib.sha256(blob).hexdigest()
            new_digests.append(digest)
            encoded_id = record_id.encode("utf-8")
            chunks.append(len(encoded_id).to_bytes(4, "big"))
            chunks.append(encoded_id)
            chunks.append(digest.encode("ascii"))
            chunks.append(len(blob).to_bytes(4, "big"))
            pos += 4 + len(encoded_id) + 64 + 4
            offsets.append(pos)
            chunks.append(blob)
            pos += len(blob)
        tag = f"batch-{os.getpid()}"
        batch_tmp = os.path.join(str(blobs.tmp_dir), f"{tag}-refs")
        batch_path = self.refbatch_dir / f"{self._refbatch_seq:08d}"
        try:
            with open(batch_tmp, "wb") as handle:
                handle.write(b"".join(chunks))
            os.replace(batch_tmp, batch_path)
        except BaseException:
            if os.path.exists(batch_tmp):
                os.unlink(batch_tmp)
            raise
        self._refbatch_seq += 1
        self._refbatch_files.append(batch_path)
        for (record_id, blob), digest, offset in zip(items, new_digests,
                                                     offsets):
            self._set_ref(record_id, digest)
            blobs.register_packed(digest, batch_path, offset, len(blob))
            blobs._cache_put(digest, blob)
        for old, new in zip(old_digests, new_digests):
            if old != new:
                self._pending_collect.append(old)
        if durable:
            self.commit_replacements()
        return new_digests

    def commit_replacements(self) -> None:
        """Make deferred batch replacements durable; then collect.

        One ``os.sync()`` pushes every refpack rename of the deferred
        batches to disk, after which the old blobs those batches
        released are dead (their refs' repoints are durable). Their
        in-memory traces (cache and pack entries) drop here; the loose
        *unlinks* are deferred to :meth:`_reclaim_dead_blobs` at the
        next store mutation, GC or audit — dead-blob removal is
        reclamation, not durability, so it has no business in the
        acknowledgement path of a bulk sweep. A no-op when nothing is
        deferred. If the process dies first, the replaced records are
        still readable at old-or-new bytes; the un-collected old blobs
        are orphans that :meth:`gc` reclaims.
        """
        if not self._pending_collect:
            return
        os.sync()
        pending, self._pending_collect = self._pending_collect, []
        for digest in dict.fromkeys(pending):
            if digest not in self._refcounts:
                self.blobs._cache_drop(digest)
                self.blobs._packs.pop(digest, None)
                self._deferred_unlinks.append(digest)

    def _reclaim_dead_blobs(self) -> None:
        """Unlink loose blobs whose death :meth:`commit_replacements`
        deferred. Re-checks the refcounts — a digest re-referenced
        since it was scheduled is live again and must survive."""
        if not self._deferred_unlinks:
            return
        pending, self._deferred_unlinks = self._deferred_unlinks, []
        for digest in dict.fromkeys(pending):
            if digest not in self._refcounts:
                self.blobs.delete(digest)

    def delete(self, record_id: str) -> None:
        self._compact_refbatches()
        digest = self._refs.get(record_id)
        if digest is None:
            raise StorageError(f"no record {record_id!r}")
        self._unindex_record(self._decode(digest))
        self._drop_ref(record_id)
        self._ref_path(record_id).unlink(missing_ok=True)
        self._collect(digest)

    def replace_component(self, record_id: str,
                          component: StoredComponent) -> StoredRecord:
        """Swap one component and persist the updated record."""
        updated = self.get(record_id).with_component(component)
        self.put(updated, replace=True)
        return updated

    def record_ids(self) -> list:
        return sorted(self._refs)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._refs

    def __len__(self) -> int:
        return len(self._refs)

    def locate_ciphertext(self, ciphertext_id: str) -> tuple:
        """``(record id, component name)`` holding a ciphertext id."""
        try:
            return self._ciphertext_index[ciphertext_id]
        except KeyError:
            raise StorageError(f"no ciphertext {ciphertext_id!r}") from None

    def ciphertext_ids(self) -> frozenset:
        return frozenset(self._ciphertext_index)

    def storage_bytes(self) -> int:
        """Total stored payload — the Table III 'server' row, measured."""
        return sum(
            self._decode(digest).payload_size_bytes(self.group)
            for digest in self._refs.values()
        )

    # -- crash-recovery auditing ------------------------------------------

    def check(self) -> dict:
        """Audit every on-disk invariant after a crash or reopen.

        Returns a report mapping each invariant to its violations:
        refs whose blob is missing or fails digest verification, blobs
        no ref points at (the residue of a crash between blob write and
        ref repoint, or mid-GC), and ciphertext-index entries that
        disagree with the records on disk. ``report["ok"]`` is True iff
        everything holds. Pending deferred reclamation is flushed
        first — scheduled-but-not-yet-unlinked dead blobs are
        maintenance debt, not crash residue.
        """
        self._reclaim_dead_blobs()
        report = {
            "records": len(self._refs),
            "missing_blobs": [],
            "corrupt_blobs": [],
            "orphan_blobs": [],
            "index_mismatches": [],
        }
        index = {}
        for record_id, digest in sorted(self._refs.items()):
            if not self.blobs.contains(digest):
                report["missing_blobs"].append(record_id)
                continue
            try:
                record = self._decode(digest)
            except StorageError:
                report["corrupt_blobs"].append(record_id)
                continue
            for name, component in record.components.items():
                index[component.abe_ciphertext.ciphertext_id] = (
                    record_id, name
                )
        if index != self._ciphertext_index:
            report["index_mismatches"] = sorted(
                set(index.items()) ^ set(self._ciphertext_index.items())
            )
        referenced = set(self._refs.values())
        report["orphan_blobs"] = [
            digest for digest in self.blobs.digests()
            if digest not in referenced
        ]
        report["ok"] = not (report["missing_blobs"]
                            or report["corrupt_blobs"]
                            or report["orphan_blobs"]
                            or report["index_mismatches"])
        return report

    def gc(self) -> list:
        """Delete every unreferenced blob; returns the digests removed."""
        self._reclaim_dead_blobs()
        referenced = set(self._refs.values())
        removed = [digest for digest in self.blobs.digests()
                   if digest not in referenced]
        for digest in removed:
            self.blobs.delete(digest)
        return removed

    # -- authority key directory ------------------------------------------

    def put_authority_keys(self, aid: str, blob: bytes) -> None:
        _atomic_write(self.blobs.tmp_dir,
                      self.keys_dir / quote(aid, safe=""), blob)

    def get_authority_keys(self, aid: str) -> bytes:
        try:
            return (self.keys_dir / quote(aid, safe="")).read_bytes()
        except FileNotFoundError:
            raise StorageError(
                f"no published keys for authority {aid!r}"
            ) from None

    def authority_ids(self) -> list:
        return sorted(unquote(path.name) for path in self.keys_dir.iterdir())

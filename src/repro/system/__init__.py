"""The simulated cloud-storage deployment (Fig. 1) with byte metering."""

from repro.system.audit import AuditLog, TrafficSummary
from repro.system.entities import (
    AuthorityEntity,
    CaEntity,
    Entity,
    OwnerEntity,
    ServerEntity,
    UserEntity,
)
from repro.system.network import (
    ROLE_AA,
    ROLE_CA,
    ROLE_OWNER,
    ROLE_SERVER,
    ROLE_USER,
    Network,
)
from repro.system.records import StoredComponent, StoredRecord
from repro.system.sizes import measure
from repro.system.workflow import CloudStorageSystem

__all__ = [
    "CloudStorageSystem",
    "AuditLog",
    "TrafficSummary",
    "Network",
    "Entity",
    "CaEntity",
    "AuthorityEntity",
    "OwnerEntity",
    "UserEntity",
    "ServerEntity",
    "StoredRecord",
    "StoredComponent",
    "measure",
    "ROLE_CA",
    "ROLE_AA",
    "ROLE_OWNER",
    "ROLE_USER",
    "ROLE_SERVER",
]

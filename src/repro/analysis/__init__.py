"""Cost models and harness helpers regenerating the paper's tables/figures."""

from repro.analysis.costmodel import (
    Cost,
    OperationCounts,
    SystemShape,
    decrypt_ops_lewko,
    decrypt_ops_ours,
    encrypt_ops_lewko,
    encrypt_ops_ours,
    table2_lewko,
    table2_ours,
    table3_lewko,
    table3_ours,
    table4_lewko,
    table4_ours,
)
from repro.analysis.figures import (
    FIGURES,
    FigurePoint,
    FigureSeries,
    figure_series,
    render_ascii,
)
from repro.analysis.scalability import (
    TABLE1,
    SchemeScalability,
    render_table1,
    table1_rows,
)

__all__ = [
    "SystemShape",
    "Cost",
    "OperationCounts",
    "table2_ours",
    "table2_lewko",
    "table3_ours",
    "table3_lewko",
    "table4_ours",
    "table4_lewko",
    "encrypt_ops_ours",
    "encrypt_ops_lewko",
    "decrypt_ops_ours",
    "decrypt_ops_lewko",
    "TABLE1",
    "SchemeScalability",
    "table1_rows",
    "render_table1",
    "FIGURES",
    "FigurePoint",
    "FigureSeries",
    "figure_series",
    "render_ascii",
]

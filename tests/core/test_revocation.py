"""Attribute revocation: the paper's protocol, its efficiency claims,
its known vulnerability, and the hardened variant."""

import pytest

from repro.core.authority import apply_update_key
from repro.core.keys import UserSecretKey
from repro.core.reencrypt import reencrypt, rows_touched
from repro.core.revocation import rekey_hardened, rekey_standard, strip_uk2
from repro.errors import (
    PolicyNotSatisfiedError,
    RevocationError,
    SchemeError,
)


POLICY = "hospital:doctor AND trial:researcher"


def _setup(deployment):
    deployment.add_user("victim", hospital_attrs=["doctor", "nurse"],
                        trial_attrs=["researcher"])
    deployment.add_user("survivor", hospital_attrs=["doctor"],
                        trial_attrs=["researcher"])
    message = deployment.scheme.random_message()
    ciphertext = deployment.owner.encrypt(message, POLICY)
    return message, ciphertext


def _run_standard_revocation(deployment, ciphertext):
    """Revoke victim's doctor attribute; returns (result, new_ciphertext)."""
    result = rekey_standard(deployment.hospital, "victim", ["doctor"])
    update_key = result.update_key
    update_info = deployment.owner.update_info(ciphertext, update_key)
    deployment.owner.apply_update_key(update_key)
    new_ciphertext = reencrypt(
        deployment.scheme.group, ciphertext, update_key, update_info
    )
    deployment.owner.note_reencrypted(ciphertext.ciphertext_id, update_key)
    # Victim gets its reduced key; survivor applies the update key.
    if "alice" in result.revoked_user_keys:
        deployment.user_keys["victim"]["hospital"] = result.revoked_user_keys[
            "alice"
        ]
    deployment.user_keys["survivor"]["hospital"] = apply_update_key(
        deployment.user_keys["survivor"]["hospital"], update_key
    )
    return result, new_ciphertext


class TestStandardRevocation:
    def test_revoked_user_loses_access_to_reencrypted_data(self, deployment):
        message, ciphertext = _setup(deployment)
        _, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            deployment.decrypt(new_ciphertext, "victim")

    def test_survivor_keeps_access(self, deployment):
        message, ciphertext = _setup(deployment)
        _, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        assert deployment.decrypt(new_ciphertext, "survivor") == message

    def test_revoked_user_keeps_unrevoked_attributes(self, deployment):
        message, ciphertext = _setup(deployment)
        _run_standard_revocation(deployment, ciphertext)
        nurse_message = deployment.scheme.random_message()
        nurse_ciphertext = deployment.owner.encrypt(
            nurse_message, "hospital:nurse"
        )
        assert deployment.decrypt(nurse_ciphertext, "victim") == nurse_message

    def test_new_user_reads_reencrypted_old_data(self, deployment):
        """Backward compatibility: newly joined users decrypt pre-existing
        (re-encrypted) ciphertexts."""
        message, ciphertext = _setup(deployment)
        _, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        deployment.add_user("newbie", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        assert deployment.decrypt(new_ciphertext, "newbie") == message

    def test_new_encryptions_blocked_for_revoked(self, deployment):
        """Forward secrecy: data encrypted after revocation is unreadable
        with the victim's reduced key."""
        message, ciphertext = _setup(deployment)
        _run_standard_revocation(deployment, ciphertext)
        fresh = deployment.owner.encrypt(
            deployment.scheme.random_message(), POLICY
        )
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            deployment.decrypt(fresh, "victim")

    def test_stale_key_version_detected(self, deployment):
        message, ciphertext = _setup(deployment)
        result, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        # A user that never applied the update key gets a clear error.
        deployment.add_user("laggard", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        stale = deployment.user_keys["laggard"]["hospital"]
        stale_downgraded = UserSecretKey(
            uid=stale.uid, aid=stale.aid, owner_id=stale.owner_id,
            k=stale.k, attribute_keys=stale.attribute_keys, version=0,
        )
        deployment.user_keys["laggard"]["hospital"] = stale_downgraded
        with pytest.raises(SchemeError, match="version"):
            deployment.decrypt(new_ciphertext, "laggard")

    def test_sequential_revocations_chain(self, deployment):
        message, ciphertext = _setup(deployment)
        _, ciphertext_v1 = _run_standard_revocation(deployment, ciphertext)
        # Second revocation at the same authority: survivor loses doctor.
        result2 = rekey_standard(deployment.hospital, "survivor", ["doctor"])
        update_key2 = result2.update_key
        update_info2 = deployment.owner.update_info(ciphertext_v1, update_key2)
        deployment.owner.apply_update_key(update_key2)
        ciphertext_v2 = reencrypt(
            deployment.scheme.group, ciphertext_v1, update_key2, update_info2
        )
        deployment.owner.note_reencrypted(
            ciphertext_v1.ciphertext_id, update_key2
        )
        assert ciphertext_v2.version_of("hospital") == 2
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            deployment.decrypt(ciphertext_v2, "survivor")
        # A fresh doctor can still read.
        deployment.add_user("fresh", hospital_attrs=["doctor"],
                            trial_attrs=["researcher"])
        assert deployment.decrypt(ciphertext_v2, "fresh") == message

    def test_unaffected_authority_rows_untouched(self, deployment):
        message, ciphertext = _setup(deployment)
        _, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        labels = ciphertext.matrix.row_labels
        for index, label in enumerate(labels):
            if label.startswith("trial:"):
                assert new_ciphertext.c_rows[index] == ciphertext.c_rows[index]
            else:
                assert new_ciphertext.c_rows[index] != ciphertext.c_rows[index]
        assert new_ciphertext.c_prime == ciphertext.c_prime

    def test_rows_touched_counts_partial_update(self, deployment):
        _, ciphertext = _setup(deployment)
        assert rows_touched(ciphertext, "hospital") == 1
        assert rows_touched(ciphertext, "trial") == 1
        assert rows_touched(ciphertext, "nasa") == 0


class TestUpdateKeyHandling:
    def test_apply_update_key_wrong_aid(self, deployment):
        _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        trial_key = deployment.user_keys["survivor"]["trial"]
        with pytest.raises(RevocationError):
            apply_update_key(trial_key, result.update_key)

    def test_apply_update_key_wrong_version(self, deployment):
        _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        updated = apply_update_key(
            deployment.user_keys["survivor"]["hospital"], result.update_key
        )
        with pytest.raises(RevocationError):
            apply_update_key(updated, result.update_key)  # double-apply

    def test_update_info_version_discipline(self, deployment):
        message, ciphertext = _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        deployment.owner.apply_update_key(result.update_key)
        # After rolling forward, old-version UI can no longer be built.
        with pytest.raises(RevocationError):
            deployment.owner.update_info(ciphertext, result.update_key)

    def test_reencrypt_rejects_mismatched_inputs(self, deployment):
        message, ciphertext = _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        update_info = deployment.owner.update_info(ciphertext, result.update_key)
        group = deployment.scheme.group
        other = deployment.owner.encrypt(
            deployment.scheme.random_message(), POLICY
        )
        with pytest.raises(RevocationError, match="targets"):
            reencrypt(group, other, result.update_key, update_info)

    def test_reencrypt_is_idempotence_guarded(self, deployment):
        message, ciphertext = _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        update_info = deployment.owner.update_info(ciphertext, result.update_key)
        group = deployment.scheme.group
        updated = reencrypt(group, ciphertext, result.update_key, update_info)
        with pytest.raises(RevocationError, match="version"):
            reencrypt(group, updated, result.update_key, update_info)


class TestKnownVulnerability:
    def test_revoked_user_with_uk2_regains_capability(self, deployment):
        """Documents the published flaw: UK2 = α̃/α is broadcast to all
        non-revoked users; a revoked user who obtains it (collusion with
        any survivor or the server) can roll its *old* key forward and
        decrypt again. This test asserts the attack WORKS against the
        paper's protocol — it is reproduced, not fixed."""
        message, ciphertext = _setup(deployment)
        old_victim_key = deployment.user_keys["victim"]["hospital"]
        result, new_ciphertext = _run_standard_revocation(deployment, ciphertext)
        leaked_uk2 = result.update_key.uk2        # from any survivor
        leaked_uk1 = result.update_key.uk1["alice"]
        forged = UserSecretKey(
            uid=old_victim_key.uid,
            aid=old_victim_key.aid,
            owner_id=old_victim_key.owner_id,
            k=old_victim_key.k * leaked_uk1,
            attribute_keys={
                name: element ** leaked_uk2
                for name, element in old_victim_key.attribute_keys.items()
            },
            version=result.update_key.to_version,
        )
        deployment.user_keys["victim"]["hospital"] = forged
        assert deployment.decrypt(new_ciphertext, "victim") == message


class TestHardenedVariant:
    def test_survivors_get_reissued_keys(self, deployment):
        message, ciphertext = _setup(deployment)
        result = rekey_hardened(deployment.hospital, "victim", ["doctor"])
        assert result.is_hardened
        assert ("survivor", "alice") in result.reissued_keys
        assert ("victim", "alice") not in result.reissued_keys

    def test_hardened_end_to_end(self, deployment):
        message, ciphertext = _setup(deployment)
        result = rekey_hardened(deployment.hospital, "victim", ["doctor"])
        update_key = result.update_key
        update_info = deployment.owner.update_info(ciphertext, update_key)
        deployment.owner.apply_update_key(update_key)
        server_key = strip_uk2(update_key)
        new_ciphertext = reencrypt(
            deployment.scheme.group, ciphertext, server_key, update_info
        )
        deployment.user_keys["survivor"]["hospital"] = result.reissued_keys[
            ("survivor", "alice")
        ]
        deployment.user_keys["victim"]["hospital"] = result.revoked_user_keys[
            "alice"
        ]
        assert deployment.decrypt(new_ciphertext, "survivor") == message
        with pytest.raises((PolicyNotSatisfiedError, SchemeError)):
            deployment.decrypt(new_ciphertext, "victim")

    def test_hardened_variant_blocks_the_published_attack(self, deployment):
        """Replay of TestKnownVulnerability against the hardened flow:
        the revoked user's best leak is the server's view (UK1 only,
        UK2 stripped to 1), and the forged key no longer decrypts."""
        message, ciphertext = _setup(deployment)
        old_victim_key = deployment.user_keys["victim"]["hospital"]
        result = rekey_hardened(deployment.hospital, "victim", ["doctor"])
        update_key = result.update_key
        update_info = deployment.owner.update_info(ciphertext, update_key)
        deployment.owner.apply_update_key(update_key)
        server_view = strip_uk2(update_key)
        new_ciphertext = reencrypt(
            deployment.scheme.group, ciphertext, server_view, update_info
        )
        # The attacker colludes with the server: it gets UK1 and uk2=1.
        forged = UserSecretKey(
            uid=old_victim_key.uid,
            aid=old_victim_key.aid,
            owner_id=old_victim_key.owner_id,
            k=old_victim_key.k * server_view.uk1["alice"],
            attribute_keys={
                name: element ** server_view.uk2   # uk2 == 1: no-op
                for name, element in old_victim_key.attribute_keys.items()
            },
            version=server_view.to_version,
        )
        deployment.user_keys["victim"]["hospital"] = forged
        result_message = None
        try:
            result_message = deployment.decrypt(new_ciphertext, "victim")
        except (PolicyNotSatisfiedError, SchemeError):
            pass
        assert result_message != message

    def test_strip_uk2_neutralizes_ratio(self, deployment):
        _setup(deployment)
        result = rekey_standard(deployment.hospital, "victim", ["doctor"])
        stripped = strip_uk2(result.update_key)
        assert stripped.uk2 == 1
        assert stripped.uk1 == result.update_key.uk1
        # The attack of TestKnownVulnerability needs the real ratio.
        assert result.update_key.uk2 != 1

"""Table II: size of each component, ours vs Lewko-Waters.

Prints the closed-form model (in |p|/|G|/|GT| units resolved to bytes at
the active preset) next to the *measured* serialized sizes of real key
and ciphertext objects, for the paper's headline shape (5 authorities,
5 attributes each, all-AND policy → l = 25 rows).
"""

from benchmarks.conftest import (
    FIXED_ATTRS,
    FIXED_AUTHORITIES,
    PRESET,
    lewko_ciphertext,
    lewko_workload,
    ours_ciphertext,
    ours_workload,
)
from repro.analysis.costmodel import SystemShape, table2_lewko, table2_ours
from repro.pairing.serialize import element_sizes
from repro.system.sizes import measure

SHAPE = SystemShape(
    n_authorities=FIXED_AUTHORITIES,
    attrs_per_authority=FIXED_ATTRS,
    user_attrs_per_authority=FIXED_ATTRS,
    policy_rows=FIXED_AUTHORITIES * FIXED_ATTRS,
)


def _measured_ours():
    workload = ours_workload(FIXED_AUTHORITIES, FIXED_ATTRS)
    group = workload.group
    ciphertext = ours_ciphertext(FIXED_AUTHORITIES, FIXED_ATTRS)
    secret = sum(measure(k, group) for k in workload.secret_keys.values())
    public = FIXED_AUTHORITIES * (
        FIXED_ATTRS * group.g1_bytes + group.gt_bytes
    )
    return {
        "authority_key": group.scalar_bytes,
        "public_key": public,
        "secret_key": secret,
        "ciphertext": ciphertext.element_size_bytes(group),
    }


def _measured_lewko():
    workload = lewko_workload(FIXED_AUTHORITIES, FIXED_ATTRS)
    group = workload.group
    ciphertext = lewko_ciphertext(FIXED_AUTHORITIES, FIXED_ATTRS)
    secret = sum(measure(k, group) for k in workload.user_keys.values())
    public = sum(measure(pk, group) for pk in workload.public_keys.values())
    return {
        "authority_key": 2 * FIXED_AUTHORITIES * FIXED_ATTRS
        * group.scalar_bytes,
        "public_key": public,
        "secret_key": secret,
        "ciphertext": ciphertext.element_size_bytes(group),
    }


def test_table2(benchmark):
    sizes = element_sizes(PRESET)
    ours_model = table2_ours(SHAPE)
    lewko_model = table2_lewko(SHAPE)
    measured_ours = benchmark(_measured_ours)
    measured_lewko = _measured_lewko()

    print(f"\n=== Table II — Component sizes (bytes, preset {PRESET.name}, "
          f"n_A={SHAPE.n_authorities}, n_k={SHAPE.attrs_per_authority}, "
          f"l={SHAPE.policy_rows}) ===")
    header = (f"{'Component':<14} {'Ours(model)':>12} {'Ours(meas)':>11} "
              f"{'Lewko(model)':>13} {'Lewko(meas)':>12}")
    print(header)
    print("-" * len(header))
    for component in ("authority_key", "public_key", "secret_key",
                      "ciphertext"):
        om = ours_model[component].bytes(sizes)
        lm = lewko_model[component].bytes(sizes)
        print(f"{component:<14} {om:>12} {measured_ours[component]:>11} "
              f"{lm:>13} {measured_lewko[component]:>12}")
        assert om == measured_ours[component], component
        assert lm == measured_lewko[component], component

    # Paper claims that must hold in shape:
    assert ours_model["ciphertext"].bytes(sizes) < lewko_model[
        "ciphertext"
    ].bytes(sizes)
    assert ours_model["authority_key"].bytes(sizes) < lewko_model[
        "authority_key"
    ].bytes(sizes)

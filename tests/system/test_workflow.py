"""Integration tests: the full cloud-storage lifecycle of Fig. 1."""

import pytest

from repro.crypto import symmetric
from repro.errors import (
    AuthorizationError,
    IntegrityError,
    PolicyNotSatisfiedError,
    SchemeError,
    StorageError,
)
from repro.ec.params import TOY80
from repro.system.workflow import CloudStorageSystem

DENIED = (PolicyNotSatisfiedError, SchemeError, AuthorizationError)


@pytest.fixture()
def system():
    deployment = CloudStorageSystem(TOY80, seed=2024)
    deployment.add_authority("hospital", ["doctor", "nurse"])
    deployment.add_authority("trial", ["researcher"])
    deployment.add_owner("alice")
    deployment.add_user("bob")
    deployment.add_user("eve")
    deployment.issue_keys("bob", "hospital", ["doctor"], "alice")
    deployment.issue_keys("bob", "trial", ["researcher"], "alice")
    deployment.issue_keys("eve", "hospital", ["nurse"], "alice")
    deployment.issue_keys("eve", "trial", ["researcher"], "alice")
    deployment.upload(
        "alice",
        "patient-17",
        {
            "diagnosis": (
                b"stage II", "hospital:doctor AND trial:researcher",
            ),
            "name": (b"John Doe", "hospital:doctor OR hospital:nurse"),
        },
    )
    return deployment


class TestDataPath:
    def test_fine_grained_access(self, system):
        assert system.read("bob", "patient-17", "diagnosis") == b"stage II"
        assert system.read("bob", "patient-17", "name") == b"John Doe"
        assert system.read("eve", "patient-17", "name") == b"John Doe"
        with pytest.raises(PolicyNotSatisfiedError):
            system.read("eve", "patient-17", "diagnosis")

    def test_unknown_record_and_component(self, system):
        with pytest.raises(StorageError):
            system.read("bob", "nope", "diagnosis")
        with pytest.raises(StorageError):
            system.read("bob", "patient-17", "nope")

    def test_user_without_keys_denied(self, system):
        system.add_user("mallory")
        with pytest.raises(AuthorizationError):
            system.read("mallory", "patient-17", "name")

    def test_stored_data_is_not_plaintext(self, system):
        record = system.server.record("patient-17")
        body = record.component("diagnosis").data_ciphertext.body
        assert b"stage II" not in body

    def test_server_cannot_decrypt_with_guessed_key(self, system):
        record = system.server.record("patient-17")
        component = record.component("diagnosis")
        with pytest.raises(IntegrityError):
            symmetric.decrypt(b"\x00" * 32, component.data_ciphertext)

    def test_multiple_owners_are_isolated(self, system):
        system.add_owner("carol")
        system.issue_keys("bob", "hospital", ["doctor"], "carol")
        system.issue_keys("bob", "trial", ["researcher"], "carol")
        system.upload(
            "carol", "carol-rec",
            {"x": (b"carol data", "hospital:doctor AND trial:researcher")},
        )
        assert system.read("bob", "carol-rec", "x") == b"carol data"
        # eve has no carol-scoped keys at all.
        with pytest.raises(AuthorizationError):
            system.read("eve", "carol-rec", "x")


class TestRevocationLifecycle:
    def test_standard(self, system):
        system.revoke("hospital", "bob", ["doctor"])
        with pytest.raises(DENIED):
            system.read("bob", "patient-17", "diagnosis")
        with pytest.raises(DENIED):
            system.read("bob", "patient-17", "name")
        # Survivor unaffected.
        assert system.read("eve", "patient-17", "name") == b"John Doe"

    def test_new_user_reads_old_data_after_revocation(self, system):
        system.revoke("hospital", "bob", ["doctor"])
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        system.issue_keys("carol", "trial", ["researcher"], "alice")
        assert system.read("carol", "patient-17", "diagnosis") == b"stage II"

    def test_upload_after_revocation_uses_new_keys(self, system):
        system.revoke("hospital", "bob", ["doctor"])
        system.upload(
            "alice", "patient-18",
            {"note": (b"fresh", "hospital:nurse")},
        )
        assert system.read("eve", "patient-18", "note") == b"fresh"
        with pytest.raises(DENIED):
            system.read("bob", "patient-18", "note")

    def test_hardened(self, system):
        system.revoke("trial", "eve", ["researcher"], hardened=True)
        with pytest.raises(DENIED):
            system.read("eve", "patient-17", "diagnosis")
        # bob keeps reading: his trial key was re-issued by the AA.
        assert system.read("bob", "patient-17", "diagnosis") == b"stage II"

    def test_revocation_of_unused_attribute_keeps_everything_working(
        self, system
    ):
        system.issue_keys("eve", "hospital", ["doctor"], "alice")  # upgrade
        # Wait: eve now holds nurse+doctor? keygen replaces the key, so eve
        # holds doctor only... re-issue nurse+doctor to be precise.
        system.issue_keys("eve", "hospital", ["doctor", "nurse"], "alice")
        system.revoke("hospital", "eve", ["doctor"])
        assert system.read("eve", "patient-17", "name") == b"John Doe"
        assert system.read("bob", "patient-17", "diagnosis") == b"stage II"

    def test_sequential_revocations(self, system):
        system.add_user("carol")
        system.issue_keys("carol", "hospital", ["doctor"], "alice")
        system.issue_keys("carol", "trial", ["researcher"], "alice")
        system.revoke("hospital", "bob", ["doctor"])
        system.revoke("trial", "eve", ["researcher"])
        assert system.read("carol", "patient-17", "diagnosis") == b"stage II"
        with pytest.raises(DENIED):
            system.read("bob", "patient-17", "diagnosis")
        with pytest.raises(DENIED):
            system.read("eve", "patient-17", "diagnosis")


class TestMetering:
    def test_all_table4_channels_active(self, system):
        system.read("bob", "patient-17", "name")
        network = system.network
        assert network.bytes_between("aa", "user") > 0
        assert network.bytes_between("aa", "owner") > 0
        assert network.bytes_between("owner", "server") > 0
        assert network.bytes_between("server", "user") > 0

    def test_server_storage_accounting(self, system):
        stored = system.server.storage_bytes()
        record = system.server.record("patient-17")
        assert stored == record.payload_size_bytes(system.group)
        assert stored > 0


class TestSetupOrdering:
    def test_authority_added_after_owner(self):
        deployment = CloudStorageSystem(TOY80, seed=9)
        deployment.add_owner("alice")
        deployment.add_authority("late", ["x"])
        deployment.add_user("bob")
        deployment.issue_keys("bob", "late", ["x"], "alice")
        deployment.upload("alice", "r", {"c": (b"data", "late:x")})
        assert deployment.read("bob", "r", "c") == b"data"

    def test_unknown_entities_rejected(self, system):
        with pytest.raises(SchemeError):
            system.issue_keys("ghost", "hospital", ["doctor"], "alice")
        with pytest.raises(SchemeError):
            system.issue_keys("bob", "ghost", ["doctor"], "alice")
        with pytest.raises(SchemeError):
            system.issue_keys("bob", "hospital", ["doctor"], "ghost")
        with pytest.raises(SchemeError):
            system.upload("ghost", "r", {})
        with pytest.raises(SchemeError):
            system.read("ghost", "patient-17", "name")

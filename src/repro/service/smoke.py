"""The end-to-end smoke cycle against a live server.

Drives the full lifecycle of the paper over a real socket: an authority
publishes keys into the server's directory, an owner learns them from
the server and uploads a multi-component record, users download and
decrypt, an attribute is revoked, the owner pushes update keys so the
server proxy-re-encrypts, and finally the revoked user's read fails
while a surviving user still decrypts bit-identical plaintext.

Used by ``repro client smoke`` and by the CI service-integration job;
returns a process exit code (0 = every step behaved).
"""

from __future__ import annotations

import sys

from repro.core.authority import AttributeAuthority
from repro.core.ca import CertificateAuthority
from repro.core.owner import DataOwner
from repro.core.revocation import rekey_standard
from repro.errors import ReproError
from repro.pairing.group import PairingGroup
from repro.service.client import (
    AuthorityClient,
    OwnerClient,
    ServiceConnection,
    UserClient,
)


class SmokeFailure(ReproError):
    """A smoke step did not behave as the protocol requires."""


async def run_smoke(params, host: str, port: int, *, out=None,
                    seed=None) -> int:
    """Run upload → read → revoke → re-encrypt → revoked-read-fails."""
    out = out or sys.stdout
    group = PairingGroup(params, seed=seed)

    def step(label: str) -> None:
        print(f"ok: {label}", file=out, flush=True)

    # Local trust fabric: CA, one AA, one owner, two users. Only the
    # cloud-server role lives across the socket.
    ca = CertificateAuthority(group)
    aa = AttributeAuthority(group, "hospital", ["doctor", "nurse"])
    ca.register_authority("hospital")
    owner_core = DataOwner(group, "alice")
    ca.register_owner("alice")
    aa.register_owner(owner_core.secret_key)
    bob_pk = ca.register_user("bob")
    carol_pk = ca.register_user("carol")

    def connection(role, name):
        return ServiceConnection(group, host, port, role=role, name=name)

    aa_client = AuthorityClient(
        await connection("aa", "AA:hospital").connect(), aa
    )
    owner_client = OwnerClient(
        await connection("owner", "owner:alice").connect(), owner_core
    )
    bob = UserClient(await connection("user", "user:bob").connect(), "bob")
    carol = UserClient(
        await connection("user", "user:carol").connect(), "carol"
    )
    try:
        if not await owner_client.ping():
            raise SmokeFailure("server did not answer the ping")
        step(f"connected to {owner_client.connection.server_name} "
             f"at {host}:{port}")

        await aa_client.publish_keys()
        await owner_client.learn_authorities("hospital")
        step("authority keys published and fetched via the server")

        bob.receive_public_key(bob_pk)
        carol.receive_public_key(carol_pk)
        bob.receive_secret_key(aa.keygen(bob_pk, ["doctor"], "alice"))
        carol.receive_secret_key(
            aa.keygen(carol_pk, ["doctor", "nurse"], "alice")
        )
        step("user keys issued (out-of-band, as in the paper)")

        note = b"MRI shows nothing acute."
        plan = b"Rest, fluids, follow-up in two weeks."
        await owner_client.upload("record", {
            "doctor-note": (note, "hospital:doctor"),
            "care-plan": (plan, "hospital:doctor OR hospital:nurse"),
        })
        step("owner uploaded a 2-component record")

        if await bob.read("record", "doctor-note") != note:
            raise SmokeFailure("bob's decryption is not bit-identical")
        if await carol.read("record", "care-plan") != plan:
            raise SmokeFailure("carol's decryption is not bit-identical")
        if await owner_client.read_own("record", "care-plan") != plan:
            raise SmokeFailure("owner self-read failed")
        step("authorized reads recovered bit-identical plaintext")

        result = rekey_standard(aa, "bob", ["doctor"])
        update_key = result.update_key
        for new_key in result.revoked_user_keys.values():
            bob.receive_secret_key(new_key)
        if "alice" not in result.revoked_user_keys:
            bob.drop_keys("hospital", "alice")
        carol.apply_update_key(update_key)
        updated = await owner_client.push_revocation_updates(update_key)
        if not updated:
            raise SmokeFailure("no ciphertexts were re-encrypted")
        step(f"revoked bob's 'doctor'; server re-encrypted "
             f"{len(updated)} ciphertexts")

        try:
            await bob.read("record", "doctor-note")
            raise SmokeFailure("revoked user still decrypts")
        except (ReproError) as exc:
            if isinstance(exc, SmokeFailure):
                raise
        step("revoked user's read now fails")

        if await carol.read("record", "doctor-note") != note:
            raise SmokeFailure("surviving user lost access after ReEncrypt")
        step("surviving user still decrypts bit-identical plaintext")

        stats = await owner_client.stats()
        step(f"server stats: {stats['records']} records, "
             f"{stats['storage_bytes']} payload bytes, "
             f"{stats['wire_bytes']} wire bytes")
    except SmokeFailure as exc:
        print(f"FAIL: {exc}", file=out, flush=True)
        return 1
    finally:
        for client in (aa_client, owner_client, bob, carol):
            await client.close()
    print("smoke cycle passed", file=out, flush=True)
    return 0

"""Data owners: OwnerGen, Encrypt, and revocation update information.

An owner holds the master key ``MK_o = {β, r}``, publishes nothing, and
hands ``SK_o = {g^{1/β}, r/β}`` to each authority so that KeyGen can bind
user keys to this owner without the owner staying online.

Encryption (Phase 3) shares the exponent ``s`` over the policy's LSSS
matrix and produces the ciphertext of :mod:`repro.core.ciphertext`.

For revocation, the paper has the owner compute per-ciphertext update
information ``UI_x = (PK_x / PK̃_x)^{βs}``; that requires remembering the
encryption exponent ``s`` of every ciphertext, which the paper leaves
implicit — :class:`DataOwner` keeps an explicit ``EncryptionRecord``
ledger (see DESIGN.md §3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.attributes import authority_of, involved_authorities
from repro.core.authority import (
    apply_update_to_authority_public_key,
    apply_update_to_public_keys,
)
from repro.core.ciphertext import Ciphertext
from repro.core.keys import (
    AuthorityPublicKey,
    CiphertextUpdateInfo,
    OwnerMasterKey,
    OwnerSecretKey,
    PublicAttributeKeys,
    UpdateKey,
)
from repro.ec.batch_affine import batch_affine_sums, table_entries
from repro.errors import PolicyError, RevocationError, SchemeError
from repro.math.integers import invmod
from repro.pairing.group import G1Element, GTElement, PairingGroup
from repro.policy.lsss import lsss_from_policy


@dataclass(frozen=True)
class EncryptionRecord:
    """Owner-side ledger entry for one ciphertext (needed by revocation)."""

    ciphertext_id: str
    s: int                 # the encryption exponent
    policy: str
    versions: dict         # aid -> version used at encryption time


class DataOwner:
    """One data owner: master key, cached authority keys, ciphertext ledger."""

    def __init__(self, group: PairingGroup, owner_id: str):
        self.group = group
        self.owner_id = owner_id
        beta = group.random_scalar()
        r_exp = group.random_scalar()
        self._master = OwnerMasterKey(owner_id=owner_id, beta=beta, r_exp=r_exp)
        inv_beta = invmod(beta, group.order)
        self._secret = OwnerSecretKey(
            owner_id=owner_id,
            g_inv_beta=group.g ** inv_beta,
            r_over_beta=r_exp * inv_beta % group.order,
        )
        self._authority_keys = {}   # aid -> AuthorityPublicKey
        self._attribute_keys = {}   # aid -> PublicAttributeKeys
        self._blinding_cache = {}   # ((aid, version), ...) -> GTElement
        self._ui_ratio_cache = {}   # (aid, from, to) -> (update_key, ratios)
        self._policy_label_cache = {}  # policy string -> frozenset(labels)
        self._sessions = {}         # (policy, method, injective) -> session
        self._records = {}          # ciphertext id -> EncryptionRecord
        self._retired = set()       # ciphertext ids no longer stored
        self._counter = itertools.count()

    # -- key material -------------------------------------------------------------

    @property
    def master_key(self) -> OwnerMasterKey:
        return self._master

    @property
    def secret_key(self) -> OwnerSecretKey:
        """``SK_o`` — what gets sent to each AA over a secure channel."""
        return self._secret

    def learn_authority(self, authority_public_key: AuthorityPublicKey,
                        public_attribute_keys: PublicAttributeKeys) -> None:
        """Cache an authority's current public key material."""
        if authority_public_key.aid != public_attribute_keys.aid:
            raise SchemeError("authority key bundle has mismatched AIDs")
        if authority_public_key.version != public_attribute_keys.version:
            raise SchemeError("authority key bundle has mismatched versions")
        self._authority_keys[authority_public_key.aid] = authority_public_key
        self._attribute_keys[public_attribute_keys.aid] = public_attribute_keys
        # Every Encrypt exponentiates each policy attribute's PK_x; a
        # fixed-base table per public attribute key amortizes that across
        # this owner's lifetime of ciphertexts.
        for element in public_attribute_keys.elements.values():
            self.group.register_g1_base(element)

    def known_authorities(self) -> frozenset:
        return frozenset(self._authority_keys)

    def authority_version(self, aid: str) -> int:
        """The version of this owner's cached public key for ``aid``."""
        if aid not in self._authority_keys:
            raise RevocationError(
                f"owner {self.owner_id!r} knows no authority {aid!r}"
            )
        return self._authority_keys[aid].version

    def _blinding_for(self, involved) -> GTElement:
        """``∏_k e(g,g)^{α_k}`` over the involved authorities, cached per
        (authority, version) set with a GT fixed-base table — the product
        and its table survive across every Encrypt under the same policy
        authorities until one of them re-keys."""
        cache_key = tuple(sorted(
            (aid, self._authority_keys[aid].version) for aid in involved
        ))
        blinding = self._blinding_cache.get(cache_key)
        if blinding is None:
            blinding = self.group.identity_gt()
            for aid, _ in cache_key:
                blinding = blinding * self._authority_keys[aid].value
            self.group.register_gt_base(blinding)
            if len(self._blinding_cache) >= 64:
                self._blinding_cache.pop(next(iter(self._blinding_cache)))
            self._blinding_cache[cache_key] = blinding
        return blinding

    def authority_blinding(self, involved) -> GTElement:
        """``∏_k e(g,g)^{α_k}`` at the current key versions (cached)."""
        missing = set(involved) - set(self._authority_keys)
        if missing:
            raise SchemeError(
                f"owner {self.owner_id!r} has no public keys for authorities "
                f"{sorted(missing)}"
            )
        return self._blinding_for(involved)

    def public_attribute_key(self, label: str):
        """The cached ``PK_x`` for one qualified attribute label."""
        aid = authority_of(label)
        keys = self._attribute_keys.get(aid)
        if keys is None:
            raise SchemeError(
                f"owner {self.owner_id!r} has no public keys for "
                f"authority {aid!r}"
            )
        return keys[label]

    # -- Encrypt (Phase 3) ------------------------------------------------------------

    def encrypt(self, message: GTElement, policy, *,
                ciphertext_id: str = None,
                require_injective_rho: bool = True,
                threshold_method: str = "expand") -> Ciphertext:
        """Encrypt a GT message (a content key) under an access policy.

        The policy's attributes must be fully qualified (``aid:attr``)
        and every referenced authority must have been cached via
        :meth:`learn_authority`. ``require_injective_rho`` enforces the
        paper's "we limit ρ to be an injective function"; pass False to
        allow attribute reuse (the algebra still works, only the security
        proof's hypothesis changes). ``threshold_method="insert"`` embeds
        k-of-n gates via the Vandermonde construction (n rows instead of
        C(n, k)·k, and ρ stays injective for distinct attributes) — see
        :func:`repro.policy.lsss.lsss_from_policy`.
        """
        matrix = lsss_from_policy(policy, threshold_method=threshold_method)
        if require_injective_rho and not matrix.is_injective():
            raise PolicyError(
                "policy maps one attribute to several LSSS rows; the paper "
                "limits rho to be injective (pass require_injective_rho=False "
                "to override)"
            )
        involved = involved_authorities(matrix.row_labels)
        missing = involved - set(self._authority_keys)
        if missing:
            raise SchemeError(
                f"owner {self.owner_id!r} has no public keys for authorities "
                f"{sorted(missing)}"
            )
        group = self.group
        order = group.order
        s = group.random_scalar()
        shares = matrix.share(s, order, group.rng)

        # C = m · (∏_k e(g,g)^{α_k})^s — the product is cached with a GT
        # fixed-base table across ciphertexts (same involved authorities).
        blinding = self._blinding_for(involved)
        c = message * (blinding ** s)
        # C' = g^{βs}
        beta_s = self._master.beta * s % order
        c_prime = group.g ** beta_s
        # C_i = g^{r·λ_i} · PK_{ρ(i)}^{-βs} as one two-term multiexp per
        # row: the shared doubling chain plus the fixed-base tables for g
        # and PK_x replace two full scalar multiplications and a point
        # addition. Still counted as 2 G exponentiations per row.
        neg_beta_s = -beta_s % order
        rows = []
        for index, label in enumerate(matrix.row_labels):
            aid = authority_of(label)
            pk_x = self._attribute_keys[aid][label]
            rows.append(group.multiexp_g1(
                (group.g, pk_x),
                (self._master.r_exp * shares[index] % order, neg_beta_s),
            ))

        versions = {aid: self._authority_keys[aid].version for aid in involved}
        ciphertext_id = self.note_encryption(
            ciphertext_id, s, str(matrix.policy), dict(versions)
        )
        return Ciphertext(
            ciphertext_id=ciphertext_id,
            owner_id=self.owner_id,
            c=c,
            c_prime=c_prime,
            c_rows=tuple(rows),
            matrix=matrix,
            involved_aids=involved,
            versions=versions,
        )

    def note_encryption(self, ciphertext_id, s: int, policy: str,
                        versions: dict) -> str:
        """Reserve a ciphertext id and ledger one encryption exponent.

        The single ledger entry point shared by the cold
        :meth:`encrypt` path and :class:`repro.fastpath.session.
        EncryptionSession` — revocation (which replays ``s`` from the
        ledger) sees identical records whichever path produced the
        ciphertext. Returns the (possibly auto-assigned) id.
        """
        if ciphertext_id is None:
            ciphertext_id = f"{self.owner_id}/ct{next(self._counter)}"
        if ciphertext_id in self._records:
            raise SchemeError(f"ciphertext id {ciphertext_id!r} already used")
        self._records[ciphertext_id] = EncryptionRecord(
            ciphertext_id=ciphertext_id,
            s=s,
            policy=policy,
            versions=dict(versions),
        )
        return ciphertext_id

    def session_for(self, policy, *, threshold_method: str = "expand",
                    require_injective_rho: bool = True, pool=None):
        """An :class:`~repro.fastpath.session.EncryptionSession` for a
        policy, cached per (policy, threshold method, injectivity) and
        keyed to the involved authorities' key versions.

        Repeated calls under one policy return the same live session
        (its offline pool included). The moment revocation rolls any
        involved authority's key version forward the cached session
        goes stale and is rebuilt here against the new public keys —
        the cache can never hand back a session that would encrypt
        under a revoked version (the session itself re-checks on every
        ``encrypt`` as a second line of defense).
        """
        from repro.fastpath.session import EncryptionSession

        matrix = lsss_from_policy(policy, threshold_method=threshold_method)
        cache_key = (
            str(matrix.policy), threshold_method, require_injective_rho
        )
        session = self._sessions.get(cache_key)
        if session is not None and session.is_current():
            if pool is not None:
                session.pool = pool
            return session
        session = EncryptionSession(
            self, policy, threshold_method=threshold_method,
            require_injective_rho=require_injective_rho, pool=pool,
            matrix=matrix,
        )
        if len(self._sessions) >= 32:
            self._sessions.pop(next(iter(self._sessions)))
        self._sessions[cache_key] = session
        return session

    def record(self, ciphertext_id: str) -> EncryptionRecord:
        try:
            return self._records[ciphertext_id]
        except KeyError:
            raise SchemeError(
                f"owner {self.owner_id!r} has no record of ciphertext "
                f"{ciphertext_id!r}"
            ) from None

    @property
    def ciphertext_ids(self) -> frozenset:
        return frozenset(self._records)

    # -- revocation (Section V-C, owner side) ---------------------------------------

    def apply_update_key(self, update_key: UpdateKey) -> None:
        """Roll this owner's cached public keys forward by one version.

        Must be called *after* any :meth:`update_info` computations for
        ciphertexts encrypted under the old version — the old keys are
        needed to form ``PK_x / PK̃_x``. :meth:`update_info` therefore
        accepts the update key itself and does both sides internally; this
        method only advances the cache.
        """
        aid = update_key.aid
        if aid not in self._authority_keys:
            raise RevocationError(
                f"owner {self.owner_id!r} knows no authority {aid!r}"
            )
        self._authority_keys[aid] = apply_update_to_authority_public_key(
            self._authority_keys[aid], update_key
        )
        self._attribute_keys[aid] = apply_update_to_public_keys(
            self._attribute_keys[aid], update_key
        )

    def update_info(self, ciphertext: Ciphertext,
                    update_key: UpdateKey) -> CiphertextUpdateInfo:
        """``UI_x = (PK_x / PK̃_x)^{βs}`` for each affected attribute.

        Uses the ledger entry for the ciphertext's encryption exponent.
        Only attributes managed by the re-keyed authority *and* appearing
        in the ciphertext's policy get an entry — the partial-update
        property the paper credits for revocation efficiency.
        """
        if ciphertext.owner_id != self.owner_id:
            raise RevocationError("ciphertext belongs to a different owner")
        return self.update_info_for_record(ciphertext.ciphertext_id, update_key)

    def update_info_for_record(self, ciphertext_id: str,
                               update_key: UpdateKey) -> CiphertextUpdateInfo:
        """:meth:`update_info` from the ledger alone — no ciphertext needed.

        The ledger stores the policy string and encryption exponent, which
        determine the affected attribute labels; the owner never has to
        download its ciphertexts back from the server to revoke.
        """
        ratios, beta_s, labels = self._ui_plan(ciphertext_id, update_key)
        elements = {label: ratios[label] ** beta_s for label in labels}
        return CiphertextUpdateInfo(
            aid=update_key.aid,
            ciphertext_id=ciphertext_id,
            elements=elements,
            from_version=update_key.from_version,
            to_version=update_key.to_version,
        )

    def update_infos_for_records(self, ciphertext_ids,
                                 update_key: UpdateKey) -> list:
        """Bulk :meth:`update_info_for_record` with shared inversions.

        Element-identical to the per-record method (same validation,
        same points), but the fixed-base walks of every
        ``UI_x = (PK_x / PK̃_x)^{βs}`` across the batch advance
        level-synchronized through
        :func:`repro.ec.batch_affine.batch_affine_sums`, so each affine
        addition round shares ONE modular inversion across the whole
        revocation sweep instead of paying it per element.
        """
        ciphertext_ids = list(ciphertext_ids)
        plans = [
            self._ui_plan(ciphertext_id, update_key)
            for ciphertext_id in ciphertext_ids
        ]
        group = self.group
        element_maps = [{} for _ in plans]
        entry_lists = []
        slots = []  # (plan index, label) aligned with entry_lists
        for index, (ratios, beta_s, labels) in enumerate(plans):
            for label in labels:
                ratio = ratios[label]
                table = group._g1_table_for(ratio.point)
                if table is None:  # table evicted: per-element fallback
                    element_maps[index][label] = ratio ** beta_s
                    continue
                entry_lists.append(table_entries(table, beta_s))
                slots.append((index, label))
        if entry_lists:
            points = batch_affine_sums(group.curve, entry_lists)
            group.counter.g1_exponentiations += len(entry_lists)
            for (index, label), point in zip(slots, points):
                element_maps[index][label] = G1Element(group, point)
        return [
            CiphertextUpdateInfo(
                aid=update_key.aid,
                ciphertext_id=ciphertext_id,
                elements=elements,
                from_version=update_key.from_version,
                to_version=update_key.to_version,
            )
            for ciphertext_id, elements in zip(ciphertext_ids, element_maps)
        ]

    def _ui_plan(self, ciphertext_id: str, update_key: UpdateKey):
        """Validate one record against an update key; returns the
        ``(ratios, βs, affected labels)`` its update information needs."""
        aid = update_key.aid
        record = self.record(ciphertext_id)
        if aid not in record.versions:
            raise RevocationError(
                f"authority {aid!r} is not involved in ciphertext "
                f"{ciphertext_id!r}"
            )
        if record.versions[aid] != update_key.from_version:
            raise RevocationError(
                f"ciphertext at version {record.versions[aid]} for "
                f"{aid!r}; update key expects {update_key.from_version}"
            )
        old_keys = self._attribute_keys[aid]
        if old_keys.version != update_key.from_version:
            raise RevocationError(
                "owner's cached public keys are not at the update key's "
                "source version; apply updates in order"
            )
        ratios = self._ui_ratios(aid, update_key, old_keys)
        beta_s = self._master.beta * record.s % self.group.order
        labels = self._policy_label_cache.get(record.policy)
        if labels is None:
            labels = frozenset(lsss_from_policy(record.policy).row_labels)
            self._policy_label_cache[record.policy] = labels
        affected = [
            label for label in labels if authority_of(label) == aid
        ]
        return ratios, beta_s, affected

    def _ui_ratios(self, aid: str, update_key: UpdateKey,
                   old_keys) -> dict:
        """``{x: PK_x / PK̃_x}`` for one update key, computed once.

        A bulk revocation calls :meth:`update_info_for_record` for every
        ciphertext under the same update key; the ratio bases depend only
        on the key epoch, so they (and their fixed-base tables — each
        ciphertext exponentiates the same bases by its own ``βs``) are
        shared across the whole sweep instead of being rebuilt per
        ciphertext.
        """
        cache_key = (aid, update_key.from_version, update_key.to_version)
        cached = self._ui_ratio_cache.get(cache_key)
        if cached is not None and cached[0] is update_key:
            return cached[1]
        new_keys = apply_update_to_public_keys(old_keys, update_key)
        ratios = {}
        for label in old_keys.elements:
            ratio = old_keys[label] / new_keys[label]
            self.group.register_g1_base(ratio)
            ratios[label] = ratio
        self._ui_ratio_cache[cache_key] = (update_key, ratios)
        return ratios

    def records_involving(self, aid: str) -> list:
        """Ids of this owner's *live* ciphertexts involving the authority."""
        return [
            record.ciphertext_id
            for record in self._records.values()
            if aid in record.versions
            and record.ciphertext_id not in self._retired
        ]

    def recover_session(self, ciphertext_id: str) -> GTElement:
        """Recompute the encrypted GT session element from the ledger.

        Owners never need ABE keys for their own data: the ledger holds
        the encryption exponent ``s``, and the blinding factor is
        ``(∏_k e(g,g)^{α_k})^s`` — recomputable from the cached authority
        public keys, provided they are still at the ciphertext's version
        (a version mismatch raises; re-fetch the ciphertext's C component
        after re-encryption instead of relying on stale cache).

        Returns the *blinding* complement: callers divide the stored
        ``C`` by nothing — this returns ``(∏ PK_{o,AID})^s`` so that
        ``session = C / recover_session(...)``.
        """
        record = self.record(ciphertext_id)
        blinding = self.group.identity_gt()
        for aid, version in record.versions.items():
            cached = self._authority_keys.get(aid)
            if cached is None:
                raise SchemeError(
                    f"owner {self.owner_id!r} no longer knows authority {aid!r}"
                )
            if cached.version != version:
                raise RevocationError(
                    f"cached key for {aid!r} is at version {cached.version}, "
                    f"ciphertext {ciphertext_id!r} is at {version}"
                )
            blinding = blinding * cached.value
        return blinding ** record.s

    def retire_record(self, ciphertext_id: str) -> None:
        """Mark a ciphertext as no longer stored (replaced or deleted).

        The ledger entry survives for audit, but revocation updates stop
        targeting it. The id stays reserved — it cannot be reused.
        """
        self.record(ciphertext_id)  # raises for unknown ids
        self._retired.add(ciphertext_id)

    def is_retired(self, ciphertext_id: str) -> bool:
        return ciphertext_id in self._retired

    def note_reencrypted(self, ciphertext_id: str, update_key: UpdateKey) -> None:
        """Record that the server re-encrypted a ciphertext to a new version."""
        record = self.record(ciphertext_id)
        versions = dict(record.versions)
        if versions.get(update_key.aid) != update_key.from_version:
            raise RevocationError("ledger version mismatch during re-encryption")
        versions[update_key.aid] = update_key.to_version
        self._records[ciphertext_id] = EncryptionRecord(
            ciphertext_id=record.ciphertext_id,
            s=record.s,
            policy=record.policy,
            versions=versions,
        )

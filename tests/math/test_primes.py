"""Tests for repro.math.primes."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MathError
from repro.math.primes import is_prime, next_prime, random_prime


def _sieve(limit):
    flags = [True] * limit
    flags[0] = flags[1] = False
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            for j in range(i * i, limit, i):
                flags[j] = False
    return [i for i, is_p in enumerate(flags) if is_p]


class TestIsPrime:
    def test_matches_sieve_below_10000(self):
        primes = set(_sieve(10000))
        for n in range(10000):
            assert is_prime(n) == (n in primes), n

    def test_known_large_primes(self):
        assert is_prime(2**127 - 1)          # Mersenne prime M127
        assert is_prime(2**255 - 19)          # curve25519 prime
        assert not is_prime(2**128 + 1)       # F7 is composite
        assert not is_prime(2**127 - 3)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 825265):
            assert not is_prime(n)

    def test_strong_pseudoprimes_rejected(self):
        # 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7.
        assert not is_prime(3215031751)

    @given(st.integers(2, 10**6), st.integers(2, 10**6))
    def test_products_are_composite(self, a, b):
        assert not is_prime(a * b)


class TestRandomPrime:
    def test_bit_length_exact(self):
        rng = random.Random(1)
        for bits in (8, 16, 32, 64):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_deterministic_with_seed(self):
        assert random_prime(32, random.Random(7)) == random_prime(
            32, random.Random(7)
        )

    def test_too_small_raises(self):
        with pytest.raises(MathError):
            random_prime(1, random.Random(0))


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17

    @given(st.integers(0, 10**6))
    def test_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_prime(p)

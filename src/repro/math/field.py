"""Prime field F_p.

A :class:`PrimeField` is a *context object*: elements are plain Python
integers in ``[0, p)`` and the field provides the operations. This keeps
the hot paths (elliptic-curve and pairing arithmetic) free of wrapper
allocation while still centralizing the modulus and the derived
constants.

Two acceleration hooks live here (see :mod:`repro.math.backend`):

* the modulus is stored *wrapped* by the active arithmetic backend —
  with gmpy2 that makes ``self.p`` an ``mpz``, so every ``x % p`` and
  ``a * b % p`` downstream (curve, Miller loop, extension tower)
  promotes to GMP arithmetic with zero call-site changes. Results that
  reach a serialize boundary pass through ``int(...)`` here, keeping
  encodings byte-identical across backends.
* when Montgomery form is enabled, ``self.mont`` carries the
  precomputed REDC constants (:class:`repro.math.montgomery.
  MontgomeryContext`); the pairing layer uses it for domain-converted
  line evaluation. ``None`` when disabled (the default).
"""

from __future__ import annotations

import random

from repro.errors import MathError
from repro.math import backend as arith_backend
from repro.math.integers import invmod, jacobi, sqrt_mod
from repro.math.montgomery import MontgomeryContext
from repro.math.primes import is_prime


class PrimeField:
    """The field of integers modulo an odd prime ``p``."""

    __slots__ = ("p", "byte_length", "backend_name", "mont", "counter")

    def __init__(self, p: int, check_prime: bool = True, *,
                 backend=None, montgomery=None):
        p = int(p)
        if p < 3 or p % 2 == 0:
            raise MathError("PrimeField requires an odd prime modulus")
        if check_prime and not is_prime(p):
            raise MathError(f"{p} is not prime")
        resolved = arith_backend.resolve_backend(backend)
        self.backend_name = resolved.name
        # Wrapped modulus: the single promotion point for the backend.
        self.p = resolved.wrap(p)
        self.byte_length = (p.bit_length() + 7) // 8
        if montgomery is None:
            montgomery = arith_backend.montgomery_requested()
        self.mont = MontgomeryContext(p) if montgomery else None
        # Optional OperationCounter (fp_muls/fp_invs); None = no tracing.
        self.counter = None

    # -- basic arithmetic -------------------------------------------------

    def normalize(self, a: int) -> int:
        """Reduce an integer into the canonical range [0, p)."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        if self.counter is not None:
            self.counter.fp_muls += 1
        return a * b % self.p

    def neg(self, a: int) -> int:
        return -a % self.p

    def inv(self, a: int) -> int:
        if self.counter is not None:
            self.counter.fp_invs += 1
        return invmod(a, self.p)

    def div(self, a: int, b: int) -> int:
        if self.counter is not None:
            self.counter.fp_muls += 1
            self.counter.fp_invs += 1
        return a * invmod(b, self.p) % self.p

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.p)

    def square(self, a: int) -> int:
        if self.counter is not None:
            self.counter.fp_muls += 1
        return a * a % self.p

    # -- square roots ------------------------------------------------------

    def is_square(self, a: int) -> bool:
        """True iff ``a`` is a quadratic residue (0 counts as a square)."""
        a %= self.p
        return a == 0 or jacobi(a, self.p) == 1

    def sqrt(self, a: int) -> int:
        """A square root of ``a``; raises :class:`MathError` for non-residues."""
        return sqrt_mod(a, self.p)

    # -- sampling and encoding ----------------------------------------------

    def random(self, rng: random.Random) -> int:
        """Uniform element of F_p."""
        return rng.randrange(self.p)

    def random_nonzero(self, rng: random.Random) -> int:
        """Uniform element of F_p^*."""
        return rng.randrange(1, self.p)

    def to_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding (``byte_length`` bytes).

        ``int(...)`` is the backend unwrap point: gmpy2 values leave
        the accelerated domain here, so encodings never depend on the
        backend in use.
        """
        return int(a % self.p).to_bytes(self.byte_length, "big")

    def from_bytes(self, data: bytes) -> int:
        value = int.from_bytes(data, "big")
        if value >= self.p:
            raise MathError("encoded value is not a canonical field element")
        return value

    # -- dunder conveniences -------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("PrimeField", int(self.p)))

    def __repr__(self) -> str:
        return (f"PrimeField(p~2^{int(self.p).bit_length()}, "
                f"backend={self.backend_name})")

"""Miller's algorithm for the reduced Tate pairing on type-A curves.

We compute ``f_{r,P}(φ(Q))`` where ``φ(x, y) = (-x, i·y)`` is the
distortion map into E(F_p²). Two structural facts make the loop cheap:

* the second argument's x-coordinate ``-x_Q`` lies in the *base* field, so
  every vertical-line evaluation lands in F_p^* and is annihilated by the
  final exponentiation ``(p² - 1)/r = (p - 1)·(p + 1)/r`` — this is the
  classic *denominator elimination* for even embedding degree;
* all slope computations happen on F_p-rational points, so the only F_p²
  work is accumulating the running Miller value.

Points of the order-``r`` subgroup never hit 2-torsion inside the loop
(``r`` is an odd prime), so the doubling step needs no special cases; the
only degenerate line is the final vertical when the addition step lands on
infinity, which we simply skip (it is a vertical, hence eliminated).
"""

from __future__ import annotations

from repro.ec.curve import INFINITY, SupersingularCurve
from repro.math.field_ext import QuadraticExtension


def miller_loop(curve: SupersingularCurve, ext: QuadraticExtension,
                point: tuple, q_point: tuple, order: int) -> tuple:
    """Evaluate f_{order,point} at φ(q_point); returns an F_p² element.

    ``point`` and ``q_point`` are affine points in E(F_p)[r]; the
    distortion map is applied internally to ``q_point``.
    """
    if point is INFINITY or q_point is INFINITY:
        return ext.one
    p = curve.p
    xq, yq = q_point
    x_eval = -xq % p  # x-coordinate of φ(Q), in F_p

    f = ext.one
    tx, ty = point
    px, py = point

    # Process bits of `order` from the second-most-significant down.
    for bit_index in range(order.bit_length() - 2, -1, -1):
        # Doubling step: line tangent at T, evaluated at φ(Q).
        slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
        # l(X, Y) = Y - ty - slope*(X - tx) at (x_eval, yq*i):
        real = (-ty - slope * (x_eval - tx)) % p
        f = ext.mul(ext.square(f), (real, yq))
        # T = 2T (affine doubling reusing the slope).
        new_x = (slope * slope - 2 * tx) % p
        ty = (slope * (tx - new_x) - ty) % p
        tx = new_x

        if (order >> bit_index) & 1:
            if tx == px and (ty + py) % p == 0:
                # T + P = O: the line is the vertical x - px, eliminated.
                tx, ty = None, None  # pragma: no cover - only at loop end
                break
            if tx == px and ty == py:
                slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
            else:
                slope = (py - ty) * pow(px - tx, -1, p) % p
            real = (-ty - slope * (x_eval - tx)) % p
            f = ext.mul(f, (real, yq))
            new_x = (slope * slope - tx - px) % p
            ty = (slope * (tx - new_x) - ty) % p
            tx = new_x
    return f


def final_exponentiation(ext: QuadraticExtension, value: tuple, order: int) -> tuple:
    """Raise a Miller value to ``(p² - 1)/r``, landing in the order-r subgroup.

    Uses the factorization ``(p² - 1)/r = (p - 1) · ((p + 1)/r)``; the
    first factor is a cheap Frobenius-and-divide (``x^p = conj(x)``), the
    second a short exponentiation (``(p + 1)/r`` is the cofactor ``h``).
    """
    p = ext.p
    # value^(p-1) = conj(value) / value.
    powered = ext.mul(ext.conjugate(value), ext.inv(value))
    return ext.pow(powered, (p + 1) // order)

"""Parser for the textual access-policy language.

Grammar (keywords case-insensitive)::

    policy    := or_expr
    or_expr   := and_expr ( "OR" and_expr )*
    and_expr  := primary ( "AND" primary )*
    primary   := ATTRIBUTE
               | "(" policy ")"
               | INT "of" "(" policy ( "," policy )* ")"

Attribute tokens may contain letters, digits and ``_ . : @ + / -``; the
colon is conventionally used to prefix the issuing authority, e.g.
``"hospital:doctor AND trial:researcher"``.

Examples::

    parse("a AND (b OR c)")
    parse("2 of (hospital:doctor, trial:researcher, uni:professor)")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policy.ast import And, Attribute, Or, PolicyNode, Threshold

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)"
    r"|(?P<word>[A-Za-z0-9_.:@+/-]+))"
)
_KEYWORDS = {"and", "or", "of"}


@dataclass(frozen=True)
class _Token:
    kind: str   # 'lparen' | 'rparen' | 'comma' | 'and' | 'or' | 'of' | 'int' | 'attr'
    text: str
    position: int


def _tokenize(source: str):
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            remainder = source[position:].strip()
            if not remainder:
                break
            raise PolicyError(
                f"unexpected character {remainder[0]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "word":
            word = match.group("word")
            lowered = word.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token(lowered, word, match.start()))
            elif word.isdigit():
                tokens.append(_Token("int", word, match.start()))
            else:
                tokens.append(_Token("attr", word, match.start()))
        else:
            tokens.append(_Token(match.lastgroup, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens, source: str):
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self):
        token = self.peek()
        if token is None:
            raise PolicyError(f"unexpected end of policy: {self.source!r}")
        self.index += 1
        return token

    def expect(self, kind: str):
        token = self.advance()
        if token.kind != kind:
            raise PolicyError(
                f"expected {kind} but found {token.text!r} "
                f"at offset {token.position} in {self.source!r}"
            )
        return token

    def parse_policy(self) -> PolicyNode:
        node = self.parse_or()
        leftover = self.peek()
        if leftover is not None:
            raise PolicyError(
                f"trailing input {leftover.text!r} at offset {leftover.position}"
            )
        return node

    def parse_or(self) -> PolicyNode:
        children = [self.parse_and()]
        while self.peek() is not None and self.peek().kind == "or":
            self.advance()
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(children)

    def parse_and(self) -> PolicyNode:
        children = [self.parse_primary()]
        while self.peek() is not None and self.peek().kind == "and":
            self.advance()
            children.append(self.parse_primary())
        return children[0] if len(children) == 1 else And(children)

    def parse_primary(self) -> PolicyNode:
        token = self.advance()
        if token.kind == "attr":
            return Attribute(token.text)
        if token.kind == "lparen":
            node = self.parse_or()
            self.expect("rparen")
            return node
        if token.kind == "int":
            k = int(token.text)
            self.expect("of")
            self.expect("lparen")
            children = [self.parse_or()]
            while self.peek() is not None and self.peek().kind == "comma":
                self.advance()
                children.append(self.parse_or())
            self.expect("rparen")
            return Threshold(k, children)
        raise PolicyError(
            f"unexpected token {token.text!r} at offset {token.position} "
            f"in {self.source!r}"
        )


# Bounded memo of successful parses. Policy nodes are immutable (frozen
# dataclasses over tuples), so returning the same AST object to every
# caller is safe; an owner encrypting a stream of data items under one
# policy string tokenizes it exactly once. Eviction is oldest-first,
# matching the group-level precomputation caches.
MAX_PARSE_CACHE = 256
_parse_cache = {}
_parse_stats = {"hits": 0, "misses": 0}


def parse_cache_stats() -> dict:
    """Hit/miss counters of the string-policy parse memo (a copy)."""
    return dict(_parse_stats)


def clear_parse_cache() -> None:
    """Drop the parse memo and zero its counters (test isolation)."""
    _parse_cache.clear()
    _parse_stats["hits"] = 0
    _parse_stats["misses"] = 0


def parse(source) -> PolicyNode:
    """Parse a policy string into an AST (idempotent on AST input).

    String parses are memoized in a bounded cache — see
    :func:`parse_cache_stats`. Failures are not cached.
    """
    if isinstance(source, PolicyNode):
        return source
    if not isinstance(source, str):
        raise PolicyError(f"cannot parse policy of type {type(source).__name__}")
    node = _parse_cache.get(source)
    if node is not None:
        _parse_stats["hits"] += 1
        return node
    _parse_stats["misses"] += 1
    tokens = _tokenize(source)
    if not tokens:
        raise PolicyError("empty policy")
    node = _Parser(tokens, source).parse_policy()
    if len(_parse_cache) >= MAX_PARSE_CACHE:
        _parse_cache.pop(next(iter(_parse_cache)))
    _parse_cache[source] = node
    return node

"""Outsourced decryption (extension; Green-Hohenberger-Waters style).

The paper's decryption costs ``2l + n_A`` pairings at the *user* —
painful on constrained devices, which is exactly the population cloud
storage serves. The standard remedy (GHW, USENIX Security 2011) adapts
cleanly to this scheme because every key-dependent term of Eq. (1) is
linear in the key exponents:

* the user picks a random ``z`` and hands the server a *transform key*:
  every secret-key component and its own ``PK_UID`` raised to ``1/z``;
* the server runs the full Eq. (1) computation with the transformed
  material, obtaining the blinding factor to the power ``1/z`` — it
  learns nothing, because recovering the message requires ``z``;
* the user finishes with a single GT exponentiation (and zero pairings),
  verified by the operation-counter tests.

Why it is safe to hand over: the transform key is a valid-looking key
for the "user" ``PK_UID^{1/z}``, which corresponds to the CA secret
``u/z`` — a uniformly random value the server cannot relate to ``u``
without ``z``. (As with GHW, this provides *recovery* security, not
verifiability: a malicious server can return garbage, which the hybrid
layer's MAC then rejects.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import authority_of
from repro.core.ciphertext import Ciphertext
from repro.core.decrypt import _held_attributes, _validate_inputs
from repro.core.keys import UserPublicKey, UserSecretKey
from repro.errors import SchemeError
from repro.math.integers import invmod
from repro.pairing.group import GTElement, PairingGroup


@dataclass(frozen=True)
class TransformKey:
    """The server's view: all key material blinded by ``1/z``."""

    uid: str
    owner_id: str
    transformed_public: UserPublicKey       # PK_UID^{1/z}
    transformed_secret: dict                # aid -> UserSecretKey^{1/z}


@dataclass(frozen=True)
class RetrievalKey:
    """The user's private ``z`` (plus identifiers for sanity checks)."""

    uid: str
    z: int


def make_transform_key(group: PairingGroup, user_public_key: UserPublicKey,
                       secret_keys: dict) -> tuple:
    """Split decryption capability into (TransformKey, RetrievalKey)."""
    if not secret_keys:
        raise SchemeError("cannot outsource with no secret keys")
    owner_ids = {key.owner_id for key in secret_keys.values()}
    if len(owner_ids) != 1:
        raise SchemeError("all secret keys must be scoped to one owner")
    z = group.random_scalar()
    z_inv = invmod(z, group.order)
    transformed_secret = {}
    for aid, key in secret_keys.items():
        if key.uid != user_public_key.uid:
            raise SchemeError(f"key from {aid!r} belongs to another user")
        transformed_secret[aid] = UserSecretKey(
            uid=key.uid,
            aid=key.aid,
            owner_id=key.owner_id,
            k=key.k ** z_inv,
            attribute_keys={
                name: element ** z_inv
                for name, element in key.attribute_keys.items()
            },
            version=key.version,
        )
    transform = TransformKey(
        uid=user_public_key.uid,
        owner_id=next(iter(owner_ids)),
        transformed_public=UserPublicKey(
            uid=user_public_key.uid,
            element=user_public_key.element ** z_inv,
        ),
        transformed_secret=transformed_secret,
    )
    return transform, RetrievalKey(uid=user_public_key.uid, z=z)


def server_transform(group: PairingGroup, ciphertext: Ciphertext,
                     transform_key: TransformKey) -> GTElement:
    """Server side: all the pairings, none of the plaintext.

    Returns the Eq. (1) blinding factor raised to ``1/z``.
    """
    public = transform_key.transformed_public
    keys = transform_key.transformed_secret
    _validate_inputs(ciphertext, public, keys)
    order = group.order
    matrix = ciphertext.matrix
    coefficients = matrix.reconstruction_coefficients(
        _held_attributes(ciphertext, keys), order
    )
    n_involved = len(ciphertext.involved_aids)
    # Same Eq. (1) structure as repro.core.decrypt.decrypt: prepare the
    # two arguments that repeat across every pairing, batch the
    # numerator, and share each row's final exponentiation.
    group.prepare_pairing(ciphertext.c_prime)
    group.prepare_pairing(public.element)
    numerator = group.pair_prod(
        [(ciphertext.c_prime, keys[aid].k)
         for aid in ciphertext.involved_aids]
    )
    denominator = group.identity_gt()
    for index, w in coefficients.items():
        label = matrix.row_labels[index]
        key = keys[authority_of(label)]
        term = group.pair_prod(
            [
                (ciphertext.c_rows[index], public.element),
                (ciphertext.c_prime, key.attribute_keys[label]),
            ]
        )
        denominator = denominator * (term ** (w * n_involved % order))
    return numerator / denominator


def server_transform_many(group: PairingGroup, ciphertexts,
                          transform_key: TransformKey) -> list:
    """Batch :func:`server_transform` with amortized pairing work.

    The service's ``TRANSFORM_FETCH`` path funnels pipelined in-flight
    transforms through this: per batch the transformed key products and
    their :class:`~repro.pairing.prepared.PreparedPairing` line
    coefficients are built once per policy shape (the collapsed
    3-pairing form of :func:`repro.core.decrypt.decrypt_fast`, valid
    here because every Eq. (1) term is linear in the key exponents),
    and all N final exponentiations share one modular inversion via
    :func:`repro.pairing.miller.final_exponentiation_many`.

    Each returned partial is the same GT group element
    :func:`server_transform` computes — GT elements have one canonical
    F_p² representation, so the bytes are identical — and each
    ciphertext is validated exactly like the per-ciphertext path
    (stale versions raise :class:`SchemeError` before any pairing
    runs).
    """
    from repro.fastpath.decrypt import DecryptionSession
    from repro.pairing.miller import final_exponentiation_many

    ciphertexts = list(ciphertexts)
    public = transform_key.transformed_public
    keys = transform_key.transformed_secret
    for ciphertext in ciphertexts:
        _validate_inputs(ciphertext, public, keys)
    # One session per policy shape within the batch; the transformed
    # key bundle plays the role of the user's keys.
    sessions = {}
    raws = []
    for ciphertext in ciphertexts:
        shape = (ciphertext.owner_id, id(ciphertext.matrix))
        session = sessions.get(shape)
        if session is None:
            session = DecryptionSession(group, ciphertext, public, keys)
            sessions[shape] = session
        raws.append(session._miller_raw(ciphertext))
    slots = [index for index, raw in enumerate(raws) if raw is not None]
    reduced = final_exponentiation_many(
        group.ext, [raws[index] for index in slots], group.order
    )
    partials = [group.identity_gt()] * len(ciphertexts)
    for index, value in zip(slots, reduced):
        partials[index] = GTElement(group, value)
    return partials


def user_finalize(ciphertext: Ciphertext, partial: GTElement,
                  retrieval_key: RetrievalKey) -> GTElement:
    """User side: one GT exponentiation, zero pairings."""
    return user_finalize_value(ciphertext.c, partial, retrieval_key)


def user_finalize_value(c: GTElement, partial: GTElement,
                        retrieval_key: RetrievalKey) -> GTElement:
    """:func:`user_finalize` from the ``C`` component alone.

    The ``TRANSFORM_FETCH`` reply carries only ``C`` and the partial —
    never the LSSS rows the server already consumed — so the wire
    client finalizes without re-decoding a full ciphertext.
    """
    return c / (partial ** retrieval_key.z)

"""The service reproduces the simulation's Table IV byte counters.

The same workload — upload a 2-component record, three authorized
reads, revoke one attribute with server-side ReEncrypt, one surviving
read — runs once through the in-process :class:`CloudStorageSystem`
and once over a real socket. Every payload that touches the server
role must be metered identically: same sender/recipient, same kind,
same size, same order.
"""

from repro.core.revocation import rekey_standard
from repro.ec.params import TOY80
from repro.service.client import OwnerClient, ServiceConnection, UserClient
from repro.system.meter import ROLE_SERVER, Meter
from repro.system.workflow import CloudStorageSystem

from .conftest import run, start_service

NOTE = b"MRI shows nothing acute."
PLAN = b"Rest, fluids, follow-up in two weeks."
COMPONENTS = {
    "note": (NOTE, "hospital:doctor"),
    "plan": (PLAN, "hospital:doctor OR hospital:nurse"),
}


def run_simulation():
    sim = CloudStorageSystem(TOY80, seed=0xBEEF)
    sim.add_authority("hospital", ["doctor", "nurse"])
    sim.add_owner("alice")
    sim.add_user("bob")
    sim.add_user("carol")
    sim.issue_keys("bob", "hospital", ["doctor"], "alice")
    sim.issue_keys("carol", "hospital", ["doctor", "nurse"], "alice")

    sim.upload("alice", "record", COMPONENTS)
    assert sim.read("bob", "record", "note") == NOTE
    assert sim.read("carol", "record", "plan") == PLAN
    assert sim.read_own("alice", "record", "plan") == PLAN
    sim.revoke("hospital", "bob", ["doctor"])
    assert sim.read("carol", "record", "note") == NOTE
    return sim


async def run_service(scenario, store_root):
    group = scenario.group
    client_meter = Meter(group)  # one meter shared by every client
    service = await start_service(group, store_root)

    def connection(role, name):
        return ServiceConnection(group, service.host, service.port,
                                 role=role, name=name, meter=client_meter)

    owner = OwnerClient(
        await connection("owner", "owner:alice").connect(),
        scenario.owner_core,
    )
    bob = UserClient(await connection("user", "user:bob").connect(), "bob")
    bob.receive_public_key(scenario.bob_pk)
    bob.receive_secret_key(scenario.bob_sk)
    carol = UserClient(
        await connection("user", "user:carol").connect(), "carol"
    )
    carol.receive_public_key(scenario.carol_pk)
    carol.receive_secret_key(scenario.carol_sk)

    try:
        await owner.upload("record", COMPONENTS)
        assert await bob.read("record", "note") == NOTE
        assert await carol.read("record", "plan") == PLAN
        assert await owner.read_own("record", "plan") == PLAN
        result = rekey_standard(scenario.aa, "bob", ["doctor"])
        bob.drop_keys("hospital", "alice")
        carol.apply_update_key(result.update_key)
        updated = await owner.push_revocation_updates(result.update_key)
        assert len(updated) == 2
        assert await carol.read("record", "note") == NOTE
    finally:
        for client in (owner, bob, carol):
            await client.close()
        await service.stop()
    return client_meter, service.meter


def server_log(meter):
    """Only the transfers that touch the server role."""
    return [entry for entry in meter.log
            if ROLE_SERVER in (entry.sender_role, entry.recipient_role)]


def test_service_counters_match_the_simulation(scenario, store_root):
    sim = run_simulation()
    client_meter, server_meter = run(run_service(scenario, store_root))

    # The strongest form of parity: the metered transfer logs are
    # identical entry-for-entry (sender, roles, kind, measured size).
    assert client_meter.log == server_log(sim.network.meter)

    # Both ends of the socket tell the same story.
    assert server_meter.log == client_meter.log

    # And the Table IV aggregates line up per role-pair channel.
    for role in ("owner", "user"):
        assert client_meter.bytes_between(role, "server") == \
            sim.network.bytes_between(role, "server")
        assert client_meter.messages_between(role, "server") == \
            sim.network.messages_between(role, "server")

    # Per-kind totals for the kinds that only travel via the server.
    sim_kinds = sim.network.bytes_by_kind()
    service_kinds = client_meter.bytes_by_kind()
    for kind in ("store-record", "read-request", "component-download",
                 "update-info"):
        assert service_kinds[kind] == sim_kinds[kind], kind

    # The service additionally accounts raw transport bytes, which the
    # in-process simulation has no notion of.
    assert client_meter.wire_bytes > client_meter.total_bytes()
    assert sim.network.meter.wire_bytes == 0

"""The KEM/DEM glue: GT session element → content key → sealed payload.

Both deployments (the reproduced scheme's and the Lewko baseline's)
store data as ``(ABE-encrypted session, sealed body)``; this module owns
the two steps every reader/writer shares so the derivation logic exists
exactly once:

* ``seal(session, context, plaintext)`` — derive the content key from
  the serialized session element bound to ``context`` (the ciphertext
  id) and produce the authenticated body;
* ``open(session, context, body)`` — the reverse; raises
  :class:`repro.errors.IntegrityError` on any mismatch, which is also
  what a wrong session element (wrong ABE decryption) produces.
"""

from __future__ import annotations

from repro.crypto import symmetric
from repro.crypto.kdf import derive_content_key
from repro.pairing.group import GTElement


def content_key_for(session: GTElement, context: str) -> bytes:
    """The symmetric content key for one (session, ciphertext id) pair."""
    return derive_content_key(
        session.to_bytes(), context=context.encode("utf-8")
    )


def seal(session: GTElement, context: str,
         plaintext: bytes) -> symmetric.SymmetricCiphertext:
    """Encrypt one data component under a session element."""
    return symmetric.encrypt(content_key_for(session, context), plaintext)


def encrypt_with_session(encryption_session, ciphertext_id: str,
                         plaintext: bytes) -> tuple:
    """The full KEM/DEM write path through one encryption session.

    Draws a fresh GT session element, ABE-encrypts it via the
    per-policy :class:`repro.fastpath.session.EncryptionSession` (no
    re-parse, no per-call LSSS conversion — the historical hybrid path
    re-parsed the policy string on every component), and seals the
    plaintext under the derived content key. Returns
    ``(abe_ciphertext, sealed_body)``.
    """
    session_element = encryption_session.group.random_gt()
    abe_ciphertext = encryption_session.encrypt(
        session_element, ciphertext_id=ciphertext_id
    )
    return abe_ciphertext, seal(session_element, ciphertext_id, plaintext)


def open_sealed(session: GTElement, context: str,
                body: symmetric.SymmetricCiphertext) -> bytes:
    """Decrypt one data component; IntegrityError on any mismatch."""
    return symmetric.decrypt(content_key_for(session, context), body)

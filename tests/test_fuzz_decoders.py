"""Fuzzing every deserializer: hostile bytes must raise library errors.

A decoder fed attacker-controlled bytes (the server, the network) must
either succeed on well-formed input or raise a *library* exception —
never IndexError, KeyError, struct errors or the like, which would make
error handling at call sites unreliable.
"""

import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro.core import serialize
from repro.core.ciphertext import Ciphertext
from repro.crypto.symmetric import SymmetricCiphertext
from repro.errors import ReproError
from repro.policy.parser import parse
from repro.system.records import StoredComponent, StoredRecord

LIBRARY_ERRORS = ReproError

junk = st.binary(max_size=300)


def _assert_decodes_or_raises_cleanly(decoder, data):
    try:
        decoder(data)
    except LIBRARY_ERRORS:
        pass
    except (ValueError, UnicodeDecodeError) as exc:
        # JSON headers may surface ValueError subclasses from json — those
        # must have been converted; reaching here is a bug.
        pytest.fail(f"leaked non-library exception: {exc!r}")


class TestKeyDecoders:
    @pytest.mark.parametrize(
        "decoder_name",
        [
            "decode_user_public_key",
            "decode_user_secret_key",
            "decode_owner_secret_key",
            "decode_authority_public_key",
            "decode_public_attribute_keys",
            "decode_update_key",
            "decode_update_info",
        ],
    )
    @given(data=junk)
    @example(data=b"")
    @example(data=b"\x00\x00\x00\x02{}")
    @example(data=(10).to_bytes(4, "big") + b'{"kind":"x"}')
    def test_junk_never_crashes(self, group, decoder_name, data):
        decoder = getattr(serialize, decoder_name)
        _assert_decodes_or_raises_cleanly(lambda d: decoder(group, d), data)

    @given(data=junk)
    def test_valid_prefix_with_corruption(self, group, data):
        """A well-formed header with a corrupted body must be rejected."""
        from repro.core.keys import UserPublicKey

        valid = serialize.encode_user_public_key(
            UserPublicKey(uid="u", element=group.g)
        )
        _assert_decodes_or_raises_cleanly(
            lambda d: serialize.decode_user_public_key(group, d),
            valid[: max(4, len(valid) - len(data) % len(valid))] + data,
        )


class TestCiphertextDecoder:
    @given(data=junk)
    @example(data=b"")
    @example(data=b"\x00\x00\x00\x00")
    def test_junk_never_crashes(self, group, data):
        _assert_decodes_or_raises_cleanly(
            lambda d: Ciphertext.from_bytes(group, d), data
        )

    @given(data=junk)
    def test_header_with_evil_policy(self, group, data):
        import json

        header = json.dumps(
            {"id": "x", "owner": "o", "policy": data.decode("latin-1"),
             "versions": {}},
        ).encode("utf-8")
        blob = len(header).to_bytes(4, "big") + header
        _assert_decodes_or_raises_cleanly(
            lambda d: Ciphertext.from_bytes(group, d), blob
        )


class TestStorageDecoders:
    @given(data=junk)
    def test_component_junk(self, group, data):
        _assert_decodes_or_raises_cleanly(
            lambda d: StoredComponent.from_bytes(group, d), data
        )

    @given(data=junk)
    def test_record_junk(self, group, data):
        _assert_decodes_or_raises_cleanly(
            lambda d: StoredRecord.from_bytes(group, d), data
        )

    @given(data=junk)
    def test_symmetric_junk(self, data):
        _assert_decodes_or_raises_cleanly(
            SymmetricCiphertext.from_bytes, data
        )


class TestPolicyParserFuzz:
    @given(text=st.text(max_size=80))
    def test_random_text_never_crashes(self, text):
        try:
            parse(text)
        except LIBRARY_ERRORS:
            pass

    @given(
        text=st.text(
            alphabet="ab ()ANDORof0123,:", max_size=60
        )
    )
    def test_near_grammar_text(self, text):
        try:
            parse(text)
        except LIBRARY_ERRORS:
            pass
